//! Integration test: measured stationary behavior respects Theorem 2 and
//! the Section-V envelopes, at moderate scale.

use infinite_balanced_allocation::analysis::{bounds, fits, verify};
use infinite_balanced_allocation::prelude::*;
use infinite_balanced_allocation::sim::engine::MultiObserver;

/// Runs one configuration to stationarity and returns
/// (mean pool, max pool, mean wait, max wait).
fn stationary(n: usize, c: u32, lambda: f64, seed: u64) -> (f64, f64, f64, f64) {
    let config = CappedConfig::new(n, c, lambda).expect("valid");
    let mut process = CappedProcess::new(config);
    process.warm_start();
    let mut sim = Simulation::new(process, SimRng::seed_from(seed));
    run_burn_in(&mut sim, &BurnIn::default_adaptive(lambda));
    let mut stats = RoundStats::new();
    let mut waits = WaitingTimes::new();
    let mut obs = MultiObserver::new().with(&mut stats).with(&mut waits);
    sim.run_observed(500, &mut obs);
    (
        stats.pool.mean(),
        stats.pool.max().unwrap_or(0.0),
        waits.mean(),
        waits.max().unwrap_or(0) as f64,
    )
}

#[test]
fn pool_respects_theorem2_bound() {
    let n = 1 << 11;
    for &(c, lambda) in &[(1u32, 0.75), (2, 0.75), (3, 0.9375), (1, 1.0 - 1.0 / 128.0)] {
        let (_, pool_max, _, _) = stationary(n, c, lambda, 42);
        let check = verify::pool_check(n, c, lambda, pool_max);
        assert!(check.within_bound(), "{check}");
    }
}

#[test]
fn pool_respects_section5_envelope() {
    // Section V: the measured pool is *bounded by* n·(ln(1/(1−λ))/c + 1).
    let n = 1 << 11;
    for &(c, lambda) in &[(1u32, 0.75), (2, 0.75), (3, 0.75), (1, 0.9375), (2, 0.9375)] {
        let (pool_mean, pool_max, _, _) = stationary(n, c, lambda, 7);
        let envelope = fits::pool_size_fit(n, c, lambda);
        assert!(
            pool_mean <= envelope,
            "mean pool {pool_mean} above envelope {envelope} (c={c}, lambda={lambda})"
        );
        // The max over the window gets a small fluctuation allowance.
        assert!(
            pool_max <= 1.2 * envelope,
            "max pool {pool_max} far above envelope {envelope} (c={c}, lambda={lambda})"
        );
    }
}

#[test]
fn waiting_respects_theorem2_bound() {
    let n = 1 << 11;
    for &(c, lambda) in &[(1u32, 0.75), (2, 0.75), (3, 0.9375), (2, 1.0 - 1.0 / 128.0)] {
        let (_, _, _, wait_max) = stationary(n, c, lambda, 11);
        let bound = bounds::theorem2_waiting_bound(n, c, lambda);
        assert!(
            wait_max <= bound,
            "max wait {wait_max} above Theorem-2 bound {bound} (c={c}, lambda={lambda})"
        );
    }
}

#[test]
fn waiting_respects_section5_envelope() {
    let n = 1 << 11;
    for &(c, lambda) in &[(1u32, 0.75), (2, 0.75), (1, 0.9375), (3, 0.9375)] {
        let (_, _, wait_mean, wait_max) = stationary(n, c, lambda, 13);
        let envelope = fits::waiting_time_fit(n, c, lambda);
        assert!(
            wait_mean <= envelope,
            "mean wait {wait_mean} above envelope {envelope} (c={c}, lambda={lambda})"
        );
        // The paper's Figure 5 shows even max waits at or below the line.
        assert!(
            wait_max <= 1.5 * envelope,
            "max wait {wait_max} far above envelope {envelope} (c={c}, lambda={lambda})"
        );
    }
}

#[test]
fn capacity_reduces_pool_by_roughly_c() {
    // Section I-B: "both the number of balls in the pool and the waiting
    // time decrease by a factor of essentially c" (for large λ, c small).
    let n = 1 << 11;
    let lambda = 1.0 - 1.0 / 128.0; // ln term ≈ 4.85 dominates
    let (pool1, _, _, _) = stationary(n, 1, lambda, 3);
    let (pool3, _, _, _) = stationary(n, 3, lambda, 3);
    let ratio = pool1 / pool3;
    assert!(
        (2.0..5.5).contains(&ratio),
        "pool reduction factor {ratio} not ≈ c = 3"
    );
}

#[test]
fn waiting_grows_like_loglog_not_log() {
    // CMP shape at test scale: max wait across n must grow sub-log.
    let lambda = 0.75;
    let c = 2;
    let mut maxima = Vec::new();
    for e in [8u32, 10, 12] {
        let (_, _, _, wmax) = stationary(1 << e, c, lambda, 21);
        maxima.push(wmax);
    }
    // Quadrupling n (2^8 → 2^12) must not add more than a few rounds.
    let growth = maxima[2] - maxima[0];
    assert!(
        growth <= 3.0,
        "max wait grew by {growth} from n=2^8 to n=2^12: {maxima:?}"
    );
}
