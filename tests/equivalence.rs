//! Integration test: CAPPED(∞, λ) is the parallel GREEDY[1] process
//! (paper, Section II: "c = ∞ implies no capacity limit and therefore
//! CAPPED(∞, λ) is identical to GREEDY[1]").
//!
//! The two implementations live in different crates and share no code, so
//! driving them with identical bin choices and asserting identical
//! trajectories is a strong differential test of both.

use infinite_balanced_allocation::prelude::*;

/// Drives both processes with the same per-round choice vectors and
/// asserts the full reports coincide.
#[test]
fn capped_infinity_equals_greedy_one_trajectorywise() {
    let n = 64;
    let lambda = 0.75;
    let batch = (lambda * n as f64) as usize;

    let mut capped = CappedProcess::new(CappedConfig::unbounded(n, lambda).expect("valid"));
    let mut greedy = GreedyBatchProcess::new(n, 1, lambda).expect("valid");
    let mut rng = SimRng::seed_from(1234);

    for round in 1..=300u64 {
        let choices: Vec<usize> = (0..batch).map(|_| rng.uniform_bin(n)).collect();
        let rc = capped.step_with_choices(&choices);
        let rg = greedy.step_with_choices(&choices);
        assert_eq!(rc.round, round);
        assert_eq!(rc.generated, rg.generated, "round {round}");
        assert_eq!(rc.accepted, rg.accepted, "round {round}");
        assert_eq!(rc.deleted, rg.deleted, "round {round}");
        assert_eq!(rc.pool_size, 0, "unbounded CAPPED never pools");
        assert_eq!(rg.pool_size, 0);
        assert_eq!(rc.buffered, rg.buffered, "round {round}");
        assert_eq!(rc.max_load, rg.max_load, "round {round}");
        assert_eq!(rc.failed_deletions, rg.failed_deletions, "round {round}");
        let mut wc = rc.waiting_times.clone();
        let mut wg = rg.waiting_times.clone();
        wc.sort_unstable();
        wg.sort_unstable();
        assert_eq!(wc, wg, "round {round}");
    }
}

/// With finite capacity the processes genuinely differ (CAPPED rejects),
/// so the equivalence above is not vacuous.
#[test]
fn finite_capacity_differs_from_greedy_one() {
    let n = 64;
    let lambda = 0.75;
    let batch = (lambda * n as f64) as usize;
    let mut capped = CappedProcess::new(CappedConfig::new(n, 1, lambda).expect("valid"));
    let mut greedy = GreedyBatchProcess::new(n, 1, lambda).expect("valid");
    let mut rng = SimRng::seed_from(1234);
    let mut saw_difference = false;
    let mut pooled = 0usize;
    for _ in 0..100 {
        let choices: Vec<usize> = (0..pooled + batch).map(|_| rng.uniform_bin(n)).collect();
        let rc = capped.step_with_choices(&choices);
        let rg = greedy.step_with_choices(&choices[..batch]);
        pooled = rc.pool_size as usize;
        if rc.pool_size > 0 || rc.buffered != rg.buffered {
            saw_difference = true;
        }
    }
    assert!(saw_difference, "finite capacity must reject sometimes");
}

/// The unbounded process's system load matches GREEDY[1]'s under
/// independent randomness too (distributional sanity, not pathwise).
#[test]
fn unbounded_and_greedy_agree_statistically() {
    let n = 256;
    let lambda = 0.75;
    let mut capped = CappedProcess::new(CappedConfig::unbounded(n, lambda).expect("valid"));
    let mut greedy = GreedyBatchProcess::new(n, 1, lambda).expect("valid");
    let mut rng_a = SimRng::seed_from(1);
    let mut rng_b = SimRng::seed_from(2);
    let mut load_a = 0.0;
    let mut load_b = 0.0;
    let rounds = 600;
    for i in 0..rounds {
        let ra = capped.step(&mut rng_a);
        let rb = greedy.step(&mut rng_b);
        if i >= rounds / 2 {
            load_a += ra.buffered as f64;
            load_b += rb.buffered as f64;
        }
    }
    let mean_a = load_a / (rounds / 2) as f64;
    let mean_b = load_b / (rounds / 2) as f64;
    let rel = (mean_a - mean_b).abs() / mean_a.max(1.0);
    assert!(rel < 0.15, "system loads diverge: {mean_a} vs {mean_b}");
}
