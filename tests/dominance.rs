//! Integration test for experiment `DOM`: the Lemma-1/6 stochastic
//! dominance is *pathwise* under the paper's coupling, so it must hold on
//! every round of every run — not just in expectation.

use infinite_balanced_allocation::prelude::*;

#[test]
fn dominance_holds_across_parameter_grid() {
    for &n in &[32usize, 100, 256] {
        for &c in &[1u32, 2, 4] {
            for &lambda in &[0.0, 0.5, 0.75] {
                let config = CappedConfig::new(n, c, lambda).expect("valid");
                let mut run = CoupledRun::new(config).expect("valid");
                let mut rng = SimRng::seed_from((n as u64) << 8 | u64::from(c));
                let violations = run.run_checked(150, &mut rng);
                assert_eq!(violations, 0, "n={n}, c={c}, lambda={lambda}");
            }
        }
    }
}

#[test]
fn dominance_holds_long_run_at_heavy_traffic() {
    let n = 64;
    let lambda = 1.0 - 1.0 / n as f64;
    for c in [1u32, 3] {
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut run = CoupledRun::new(config).expect("valid");
        let mut rng = SimRng::seed_from(u64::from(c) + 99);
        assert_eq!(run.run_checked(2_000, &mut rng), 0, "c={c}");
    }
}

#[test]
fn modcapped_pool_stays_near_m_star() {
    // The modified process tops its pool up to m* every round and, by
    // Lemma 7, exceeds 2m* only with exponentially small probability.
    let n = 128;
    let mut p = ModCappedProcess::new(n, 2, 0.75).expect("valid");
    let m_star = p.m_star() as u64;
    let mut rng = SimRng::seed_from(5);
    let mut max_pool = 0u64;
    for _ in 0..1_000 {
        let r = p.step(&mut rng);
        max_pool = max_pool.max(r.pool_size);
    }
    assert!(
        max_pool < 2 * m_star,
        "max pool {max_pool} vs 2m* {}",
        2 * m_star
    );
    // And the coupling is not vacuous: the pool does hover near m*.
    assert!(max_pool > m_star / 2, "max pool {max_pool} vs m*/2");
}

#[test]
fn capped_pool_far_below_modcapped_in_stationarity() {
    // The dominance is loose in practice — CAPPED's stationary pool is far
    // below MODCAPPED's inflated one. Quantify the slack once so a
    // regression toward equality (a coupling bug) would be caught.
    let config = CappedConfig::new(128, 2, 0.75).expect("valid");
    let mut run = CoupledRun::new(config).expect("valid");
    let mut rng = SimRng::seed_from(17);
    let mut last = None;
    for _ in 0..500 {
        last = Some(run.step(&mut rng));
    }
    let report = last.expect("ran rounds");
    assert!(report.capped.pool_size * 2 < report.modcapped.pool_size);
}
