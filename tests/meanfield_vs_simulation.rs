//! Cross-validation: the mean-field model (`iba-analysis`, no shared code
//! with the simulator) must agree with the simulated CAPPED(c, λ) on the
//! stationary pool size, load distribution, and mean waiting time.
//!
//! Agreement between two independent implementations of the same
//! mathematical object is the strongest correctness evidence this
//! reproduction can offer without the authors' artifacts.

use infinite_balanced_allocation::analysis::meanfield;
use infinite_balanced_allocation::prelude::*;
use infinite_balanced_allocation::sim::engine::MultiObserver;

struct Measured {
    pool_per_bin: f64,
    load_distribution: Vec<f64>,
    mean_wait: f64,
}

fn simulate(n: usize, c: u32, lambda: f64, seed: u64) -> Measured {
    let config = CappedConfig::new(n, c, lambda).expect("valid");
    let mut process = CappedProcess::new(config);
    process.warm_start();
    let mut sim = Simulation::new(process, SimRng::seed_from(seed));
    run_burn_in(&mut sim, &BurnIn::default_adaptive(lambda));
    let mut stats = RoundStats::new();
    let mut waits = WaitingTimes::new();
    let mut obs = MultiObserver::new().with(&mut stats).with(&mut waits);
    sim.run_observed(800, &mut obs);

    // Load distribution time-averaged over a few snapshots.
    let mut dist = vec![0.0f64; c as usize];
    let snapshots = 50;
    for _ in 0..snapshots {
        sim.run_rounds(5);
        let h = sim.process().load_histogram();
        for (l, slot) in dist.iter_mut().enumerate() {
            *slot += h.count_at(l as u64) as f64 / n as f64;
        }
    }
    for slot in &mut dist {
        *slot /= snapshots as f64;
    }
    Measured {
        pool_per_bin: stats.pool.mean() / n as f64,
        load_distribution: dist,
        mean_wait: waits.mean(),
    }
}

#[test]
fn pool_size_agrees_with_mean_field() {
    let n = 1 << 12;
    for &(c, lambda) in &[(1u32, 0.75), (2, 0.75), (3, 0.9375), (2, 1.0 - 1.0 / 256.0)] {
        let sim = simulate(n, c, lambda, 77);
        let mf = meanfield::solve(c, lambda);
        assert!(mf.converged);
        let rel = (sim.pool_per_bin - mf.pool_per_bin).abs() / mf.pool_per_bin.max(0.05);
        assert!(
            rel < 0.12,
            "c={c}, lambda={lambda}: simulated {:.4} vs mean-field {:.4} (rel {rel:.3})",
            sim.pool_per_bin,
            mf.pool_per_bin
        );
    }
}

#[test]
fn mean_wait_agrees_with_littles_law() {
    let n = 1 << 12;
    for &(c, lambda) in &[(1u32, 0.75), (2, 0.75), (3, 0.9375)] {
        let sim = simulate(n, c, lambda, 88);
        let mf = meanfield::solve(c, lambda);
        let predicted = mf.mean_wait.expect("lambda > 0");
        let rel = (sim.mean_wait - predicted).abs() / predicted.max(0.1);
        assert!(
            rel < 0.12,
            "c={c}, lambda={lambda}: simulated wait {:.3} vs Little's law {:.3} (rel {rel:.3})",
            sim.mean_wait,
            predicted
        );
    }
}

#[test]
fn load_distribution_agrees_with_mean_field() {
    let n = 1 << 12;
    for &(c, lambda) in &[(2u32, 0.75), (3, 0.9375)] {
        let sim = simulate(n, c, lambda, 99);
        let mf = meanfield::solve(c, lambda);
        for (l, (&s, &m)) in sim
            .load_distribution
            .iter()
            .zip(&mf.load_distribution)
            .enumerate()
        {
            assert!(
                (s - m).abs() < 0.05,
                "c={c}, lambda={lambda}, load {l}: simulated {s:.4} vs mean-field {m:.4}"
            );
        }
    }
}

#[test]
fn heterogeneous_mixture_agrees_with_mixed_mean_field() {
    let n = 1 << 12;
    let lambda = 0.75;
    let profile: Vec<u32> = (0..n).map(|i| if i % 2 == 0 { 1 } else { 3 }).collect();
    let config = CappedConfig::new(n, 2, lambda)
        .expect("valid")
        .with_capacity_profile(profile)
        .expect("valid profile");
    let mut process = CappedProcess::new(config);
    process.warm_start();
    let mut sim = Simulation::new(process, SimRng::seed_from(55));
    run_burn_in(&mut sim, &BurnIn::default_adaptive(lambda));
    let mut stats = RoundStats::new();
    let mut waits = WaitingTimes::new();
    let mut obs = MultiObserver::new().with(&mut stats).with(&mut waits);
    sim.run_observed(800, &mut obs);

    let mf = meanfield::solve_mixed_classes(&[(1, 0.5), (3, 0.5)], lambda);
    assert!(mf.converged);
    let sim_pool = stats.pool.mean() / n as f64;
    assert!(
        (sim_pool - mf.pool_per_bin).abs() / mf.pool_per_bin < 0.1,
        "pool {sim_pool} vs mixed mean-field {}",
        mf.pool_per_bin
    );
    let mf_wait = mf.mean_wait.unwrap();
    assert!(
        (waits.mean() - mf_wait).abs() / mf_wait < 0.1,
        "wait {} vs mixed mean-field {mf_wait}",
        waits.mean()
    );
}

#[test]
fn mean_field_sweet_spot_matches_simulated_argmin() {
    // Both the mean-field model and the simulation should place the
    // waiting-time minimum at the same capacity (up to a neighbor).
    let n = 1 << 11;
    let lambda = 1.0 - 1.0 / 256.0;
    let mut sim_waits = Vec::new();
    let mut mf_waits = Vec::new();
    for c in 1..=5u32 {
        sim_waits.push(simulate(n, c, lambda, 111).mean_wait);
        mf_waits.push(meanfield::solve(c, lambda).mean_wait.unwrap());
    }
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as i64
    };
    let d = (argmin(&sim_waits) - argmin(&mf_waits)).abs();
    assert!(
        d <= 1,
        "argmin mismatch: sim {sim_waits:?} vs mean-field {mf_waits:?}"
    );
}
