//! Cross-crate property-based tests: for arbitrary valid configurations
//! and seeds, the model invariants of Section II hold on every round.

use proptest::prelude::*;

use infinite_balanced_allocation::prelude::*;

/// Strategy for a valid (n, batch, c) triple: λ = batch/n is automatically
/// in [0, 1 − 1/n] with λn integral.
fn config_strategy() -> impl Strategy<Value = (usize, u64, u32)> {
    (4usize..96).prop_flat_map(|n| (Just(n), 0..(n as u64), 1u32..6))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capped_invariants_hold_for_arbitrary_configs(
        (n, batch, c) in config_strategy(),
        seed in any::<u64>(),
        rounds in 1u64..60,
    ) {
        let lambda = batch as f64 / n as f64;
        let config = CappedConfig::new(n, c, lambda).expect("constructed valid");
        let mut p = CappedProcess::new(config);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..rounds {
            let r = p.step(&mut rng);
            // Per-round conservation (Algorithm 1 bookkeeping).
            prop_assert!(r.conserves_balls());
            prop_assert!(p.conserves_balls());
            // Loads bounded by capacity.
            prop_assert!(p.loads().iter().all(|&l| l <= c as usize));
            prop_assert!(r.max_load <= u64::from(c));
            // The pool remains age-sorted (oldest-first processing).
            prop_assert!(p.pool().is_age_sorted());
            // A round deletes at most one ball per bin.
            prop_assert!(r.deleted <= n as u64);
            prop_assert_eq!(r.deleted + r.failed_deletions, n as u64);
        }
    }

    #[test]
    fn modcapped_invariants_hold_for_arbitrary_configs(
        (n, batch, c) in config_strategy(),
        seed in any::<u64>(),
        rounds in 1u64..40,
    ) {
        let lambda = batch as f64 / n as f64;
        let mut p = ModCappedProcess::new(n, c, lambda).expect("valid");
        let mut rng = SimRng::seed_from(seed);
        let m_star = p.m_star() as u64;
        for _ in 0..rounds {
            let r = p.step(&mut rng);
            prop_assert!(r.conserves_balls());
            prop_assert!(p.conserves_balls());
            prop_assert!(p.check_buffer_invariants());
            // Inflated generation: at least m* balls are thrown each round.
            prop_assert!(r.thrown >= m_star);
        }
    }

    #[test]
    fn coupled_dominance_property(
        (n, batch, c) in config_strategy(),
        seed in any::<u64>(),
    ) {
        let lambda = batch as f64 / n as f64;
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut run = CoupledRun::new(config).expect("valid");
        let mut rng = SimRng::seed_from(seed);
        prop_assert_eq!(run.run_checked(25, &mut rng), 0);
    }

    #[test]
    fn waiting_times_are_consistent_with_labels(
        (n, batch, c) in config_strategy(),
        seed in any::<u64>(),
    ) {
        let lambda = batch as f64 / n as f64;
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut p = CappedProcess::new(config);
        let mut rng = SimRng::seed_from(seed);
        for round in 1..=30u64 {
            let r = p.step(&mut rng);
            // No ball can wait longer than the age of the system, and
            // waiting times are ages at deletion, so <= round − 1 … plus
            // zero for same-round service.
            prop_assert!(r.waiting_times.iter().all(|&w| w < round));
        }
    }

    #[test]
    fn greedy_batch_conserves_for_arbitrary_configs(
        (n, batch, d) in (4usize..96).prop_flat_map(|n| (Just(n), 0..(n as u64), 1u32..4)),
        seed in any::<u64>(),
    ) {
        let lambda = batch as f64 / n as f64;
        let mut p = GreedyBatchProcess::new(n, d, lambda).expect("valid");
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..40 {
            let r = p.step(&mut rng);
            prop_assert!(r.conserves_balls());
            prop_assert!(p.conserves_balls());
            prop_assert_eq!(r.pool_size, 0);
        }
    }

    #[test]
    fn threshold_terminates_and_conserves(
        n in 8usize..512,
        t in 1u32..4,
        seed in any::<u64>(),
    ) {
        let p = ThresholdProcess::new(n as u64, n, t).expect("valid");
        let mut sim = Simulation::new(p, SimRng::seed_from(seed));
        let rounds = sim.run_to_completion(10_000).expect("must terminate");
        let p = sim.into_process();
        prop_assert!(p.conserves_balls());
        prop_assert!(p.max_load() as u64 <= rounds.max(1) * u64::from(t));
    }
}
