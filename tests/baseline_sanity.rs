//! Integration tests pinning the baselines to their published asymptotics
//! — if a baseline drifts, the paper comparison (`CMP`) stops being
//! meaningful.

use infinite_balanced_allocation::analysis::math;
use infinite_balanced_allocation::baselines::sequential;
use infinite_balanced_allocation::prelude::*;

#[test]
fn threshold_one_uses_loglog_rounds() {
    // Adler et al.: THRESHOLD[1] with m = n finishes in ln ln n + O(1)
    // rounds w.h.p. At n = 2^14, ln ln n ≈ 2.3; allow a generous O(1).
    let n = 1 << 14;
    let p = ThresholdProcess::new(n as u64, n, 1).expect("valid");
    let mut sim = Simulation::new(p, SimRng::seed_from(1));
    let rounds = sim.run_to_completion(100).expect("terminates") as f64;
    let prediction = math::ln_ln(n);
    assert!(
        rounds <= prediction + 10.0,
        "THRESHOLD[1] took {rounds} rounds, ln ln n = {prediction:.1}"
    );
    // Max load is bounded by the number of rounds (T = 1 per round).
    assert!(f64::from(sim.into_process().max_load()) <= rounds);
}

#[test]
fn sequential_greedy2_beats_one_choice_at_scale() {
    let n = 1 << 14;
    let mut rng = SimRng::seed_from(2);
    let one = sequential::one_choice(n as u64, n, &mut rng).expect("valid");
    let two = sequential::greedy_d(n as u64, n, 2, &mut rng).expect("valid");
    // Azar et al.: d = 2 gives log log n / log 2 + O(1) ≈ 3.2 + O(1).
    assert!(two.max_load() <= 7, "d=2 max load {}", two.max_load());
    // Raab–Steger: d = 1 gives ≈ ln n / ln ln n ≈ 4.3, strictly above d=2.
    assert!(one.max_load() > two.max_load());
}

#[test]
fn greedy_batch_one_choice_max_load_grows_with_lambda() {
    // PODC'16 shape: the 1-choice system load explodes as λ → 1 (the
    // bound is (1/(1−λ))·log(n/(1−λ))), while it stays modest at λ = 1/2.
    let n = 512;
    let measure = |lambda: f64, seed: u64| -> f64 {
        let mut p = GreedyBatchProcess::new(n, 1, lambda).expect("valid");
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..1_500 {
            p.step(&mut rng);
        }
        let mut max_load = 0u64;
        for _ in 0..500 {
            let r = p.step(&mut rng);
            max_load = max_load.max(r.max_load);
        }
        max_load as f64
    };
    let light = measure(0.5, 3);
    let heavy = measure(1.0 - 1.0 / 64.0, 4);
    assert!(
        heavy >= 3.0 * light,
        "heavy-traffic max load {heavy} should dwarf light-traffic {light}"
    );
}

#[test]
fn greedy_batch_two_choices_stay_log_bounded_at_heavy_lambda() {
    // PODC'16: the 2-choice bound is O(log(n/(1−λ))) even for λ close
    // to 1 — the load must not explode the way 1-choice does.
    let n = 512;
    let lambda = 1.0 - 1.0 / 64.0;
    let mut p1 = GreedyBatchProcess::new(n, 1, lambda).expect("valid");
    let mut p2 = GreedyBatchProcess::new(n, 2, lambda).expect("valid");
    let mut rng1 = SimRng::seed_from(5);
    let mut rng2 = SimRng::seed_from(6);
    let mut max1 = 0u64;
    let mut max2 = 0u64;
    for i in 0..2_000 {
        let r1 = p1.step(&mut rng1);
        let r2 = p2.step(&mut rng2);
        if i >= 1_000 {
            max1 = max1.max(r1.max_load);
            max2 = max2.max(r2.max_load);
        }
    }
    assert!(
        2 * max2 <= max1,
        "2-choice max {max2} should be well below 1-choice max {max1}"
    );
}

#[test]
fn capped_beats_greedy_baselines_on_waiting_time() {
    // The paper's headline comparison at constant λ: CAPPED's waiting
    // times undercut both GREEDY baselines.
    let n = 1 << 11;
    let lambda = 0.75;
    let max_wait = |reports: &mut dyn FnMut() -> RoundReport| -> u64 {
        let mut max = 0;
        for _ in 0..400 {
            let r = reports();
            max = max.max(r.max_waiting_time().unwrap_or(0));
        }
        max
    };

    let mut capped = CappedProcess::new(CappedConfig::new(n, 2, lambda).expect("valid"));
    let mut rng_c = SimRng::seed_from(7);
    for _ in 0..800 {
        capped.step(&mut rng_c);
    }
    let capped_max = max_wait(&mut || capped.step(&mut rng_c));

    let mut greedy = GreedyBatchProcess::new(n, 1, lambda).expect("valid");
    let mut rng_g = SimRng::seed_from(8);
    for _ in 0..800 {
        greedy.step(&mut rng_g);
    }
    let greedy_max = max_wait(&mut || greedy.step(&mut rng_g));

    assert!(
        capped_max < greedy_max,
        "capped max wait {capped_max} should undercut greedy[1] {greedy_max}"
    );
}
