//! Exact-vs-simulated validation for small systems: at `c = 1` the pool
//! is a Markov chain whose stationary distribution `iba-analysis` computes
//! exactly (no asymptotics). The simulator's long-run pool histogram must
//! converge to it in total variation.

use infinite_balanced_allocation::analysis::exact;
use infinite_balanced_allocation::prelude::*;
use infinite_balanced_allocation::sim::stats::Histogram;

/// Simulated stationary pool distribution over a long window.
fn simulated_pool_distribution(n: usize, batch: u64, rounds: u64, seed: u64) -> Vec<f64> {
    let lambda = batch as f64 / n as f64;
    let config = CappedConfig::new(n, 1, lambda).expect("valid");
    let mut p = CappedProcess::new(config);
    let mut rng = SimRng::seed_from(seed);
    for _ in 0..2_000 {
        p.step(&mut rng); // burn-in
    }
    let mut hist = Histogram::new();
    for _ in 0..rounds {
        let r = p.step(&mut rng);
        hist.record(r.pool_size);
    }
    let max = hist.max().unwrap_or(0) as usize;
    (0..=max)
        .map(|m| hist.count_at(m as u64) as f64 / hist.count() as f64)
        .collect()
}

fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    let len = a.len().max(b.len());
    (0..len)
        .map(|i| {
            let pa = a.get(i).copied().unwrap_or(0.0);
            let pb = b.get(i).copied().unwrap_or(0.0);
            (pa - pb).abs()
        })
        .sum::<f64>()
        / 2.0
}

#[test]
fn simulated_pool_distribution_matches_exact_chain() {
    for (n, batch, seed) in [(4usize, 2u64, 10u64), (8, 4, 11), (16, 12, 12)] {
        let exact_pi = exact::stationary_pool_distribution(n, batch as usize, 40 * n);
        let sim_pi = simulated_pool_distribution(n, batch, 200_000, seed);
        let tv = total_variation(&exact_pi, &sim_pi);
        assert!(
            tv < 0.02,
            "n={n}, batch={batch}: total variation {tv:.4} too large"
        );
    }
}

#[test]
fn simulated_mean_matches_exact_mean() {
    let n = 8;
    let batch = 6; // λ = 0.75
    let exact_pi = exact::stationary_pool_distribution(n, batch, 400);
    let exact_mean = exact::distribution_mean(&exact_pi);
    let sim_pi = simulated_pool_distribution(n, batch as u64, 300_000, 13);
    let sim_mean: f64 = sim_pi.iter().enumerate().map(|(m, &p)| m as f64 * p).sum();
    let rel = (sim_mean - exact_mean).abs() / exact_mean.max(1e-9);
    assert!(
        rel < 0.02,
        "simulated mean {sim_mean:.4} vs exact {exact_mean:.4}"
    );
}
