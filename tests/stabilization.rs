//! Integration test for experiment `STAB`: positive recurrence in action —
//! the system recovers from adversarial overload at the theoretical drain
//! rate, and warm starts agree with cold starts.

use infinite_balanced_allocation::analysis::fits;
use infinite_balanced_allocation::prelude::*;

/// Rounds until the pool first drops below `band`.
fn recovery_rounds(process: &mut CappedProcess, rng: &mut SimRng, band: f64, cap: u64) -> u64 {
    for round in 1..=cap {
        let r = process.step(rng);
        if (r.pool_size as f64) < band {
            return round;
        }
    }
    cap
}

#[test]
fn recovery_is_linear_in_overload() {
    let n = 1 << 10;
    let lambda = 0.75;
    let c = 2;
    let band = 1.5 * fits::pool_size_fit(n, c, lambda);
    let mut rounds_at = Vec::new();
    for k in [8u64, 16, 32] {
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut p = CappedProcess::new(config);
        p.inject_pool(k * n as u64);
        let mut rng = SimRng::seed_from(k);
        rounds_at.push(recovery_rounds(&mut p, &mut rng, band, 100_000));
    }
    // Net drain ≈ (1 − λ)·n per round → recovery ≈ K/(1 − λ) = 4K rounds.
    for (i, &k) in [8u64, 16, 32].iter().enumerate() {
        let expected = 4.0 * k as f64;
        let actual = rounds_at[i] as f64;
        assert!(
            (0.5 * expected..2.0 * expected).contains(&actual),
            "K = {k}: recovery {actual} rounds vs theory {expected}"
        );
    }
    // Monotone in K.
    assert!(rounds_at[0] < rounds_at[1] && rounds_at[1] < rounds_at[2]);
}

#[test]
fn overloaded_system_keeps_serving_oldest_first() {
    // During recovery, bins prefer older balls, so the backlog (old
    // labels) drains before fresh arrivals are served.
    let n = 256;
    let config = CappedConfig::new(n, 1, 0.5).expect("valid");
    let mut p = CappedProcess::new(config);
    p.inject_pool(16 * n as u64);
    let mut rng = SimRng::seed_from(9);
    // In the first recovery round, essentially every deleted ball comes
    // from the backlog (age 1). A fresh ball (age 0) can only be served if
    // its bin was missed by all 16n backlog balls — probability e⁻¹⁶ per
    // bin, so none in practice; allow a couple as slack.
    let r = p.step(&mut rng);
    assert!(r.deleted > 0);
    let fresh_served = r.waiting_times.iter().filter(|&&w| w == 0).count();
    let backlog_served = r.waiting_times.iter().filter(|&&w| w == 1).count();
    assert!(fresh_served <= 2, "{fresh_served} fresh balls served");
    assert_eq!(fresh_served + backlog_served, r.waiting_times.len());
    assert!(backlog_served as u64 >= r.deleted - 2);
}

#[test]
fn stationary_state_is_independent_of_history() {
    // Run one system cold and one through an overload-recovery cycle;
    // their stationary pools must agree (time-invariance / positive
    // recurrence).
    let n = 1 << 10;
    let lambda = 0.75;
    let c = 2;
    let config = CappedConfig::new(n, c, lambda).expect("valid");

    let mut cold = CappedProcess::new(config.clone());
    let mut rng_a = SimRng::seed_from(100);
    for _ in 0..3_000 {
        cold.step(&mut rng_a);
    }

    let mut shocked = CappedProcess::new(config);
    shocked.inject_pool(32 * n as u64);
    let mut rng_b = SimRng::seed_from(101);
    for _ in 0..3_000 {
        shocked.step(&mut rng_b);
    }

    let mean_pool = |p: &mut CappedProcess, rng: &mut SimRng| -> f64 {
        let mut acc = 0.0;
        for _ in 0..400 {
            acc += p.step(rng).pool_size as f64;
        }
        acc / 400.0
    };
    let cold_pool = mean_pool(&mut cold, &mut rng_a);
    let shocked_pool = mean_pool(&mut shocked, &mut rng_b);
    let rel = (cold_pool - shocked_pool).abs() / cold_pool.max(1.0);
    assert!(
        rel < 0.2,
        "history dependence detected: cold {cold_pool} vs shocked {shocked_pool}"
    );
}
