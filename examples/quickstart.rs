//! Quickstart: run CAPPED(c, λ), watch it stabilize, and compare the
//! stationary pool and waiting times against the paper's formulas.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use infinite_balanced_allocation::prelude::*;
use infinite_balanced_allocation::sim::engine::MultiObserver;

fn main() -> Result<(), infinite_balanced_allocation::sim::error::ConfigError> {
    let n = 1 << 12;
    let capacity = 2;
    let lambda = 0.75;

    println!("CAPPED(c = {capacity}, lambda = {lambda}) on n = {n} bins");
    println!("------------------------------------------------------");

    let config = CappedConfig::new(n, capacity, lambda)?;
    let process = CappedProcess::new(config);
    let mut sim = Simulation::new(process, SimRng::seed_from(42));

    // Burn in adaptively: run until the pool-size series flattens.
    let outcome = run_burn_in(&mut sim, &BurnIn::default_adaptive(lambda));
    println!(
        "burn-in: {} rounds (converged: {})",
        outcome.rounds, outcome.converged
    );

    // Measure 1000 stationary rounds — the paper's protocol.
    let mut stats = RoundStats::new();
    let mut waits = WaitingTimes::new();
    let mut observer = MultiObserver::new().with(&mut stats).with(&mut waits);
    sim.run_observed(1000, &mut observer);

    let normalized_pool = stats.pool.mean() / n as f64;
    println!("normalized pool size : {normalized_pool:.3}");
    println!(
        "paper envelope       : ln(1/(1-lambda))/c + 1 = {:.3}",
        normalized_pool_fit(capacity, lambda)
    );
    println!("mean waiting time    : {:.3} rounds", waits.mean());
    println!("max waiting time     : {} rounds", waits.max().unwrap_or(0));
    println!(
        "paper envelope       : ln(1/(1-lambda))/c + loglog n + c = {:.3}",
        waiting_time_fit(n, capacity, lambda)
    );
    println!(
        "Theorem 2 w.h.p. bound on the waiting time: {:.1}",
        theorem2_waiting_bound(n, capacity, lambda)
    );
    println!(
        "suggested sweet-spot capacity for this lambda: c* = {}",
        optimal_capacity(lambda, n)
    );
    Ok(())
}
