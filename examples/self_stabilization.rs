//! Self-stabilization: recovery from a catastrophic backlog.
//!
//! The paper notes that CAPPED (like the leaky-bin processes of PODC'16)
//! is positive recurrent: whatever state the system is driven into, it
//! returns to the stationary regime. This example dumps a huge backlog of
//! requests into the pool — as after a network partition heals — and
//! narrates the recovery round by round, comparing the measured drain rate
//! against the theoretical `(λ − 1)·n` net rate.
//!
//! ```text
//! cargo run --release --example self_stabilization
//! ```

use infinite_balanced_allocation::core::metrics::SystemSnapshot;
use infinite_balanced_allocation::prelude::*;
use infinite_balanced_allocation::sim::plot::{Chart, Series};

fn main() -> Result<(), infinite_balanced_allocation::sim::error::ConfigError> {
    let n = 1 << 12;
    let capacity = 2;
    let lambda = 0.75;
    let overload_factor = 20u64;

    println!("self-stabilization demo: CAPPED(c = {capacity}, lambda = {lambda}), n = {n}");

    // Reach the stationary regime first.
    let config = CappedConfig::new(n, capacity, lambda)?;
    let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(7));
    run_burn_in(&mut sim, &BurnIn::default_adaptive(lambda));
    let stationary_pool = sim.process().pool_size();
    println!(
        "stationary pool: {stationary_pool} balls ({:.2} per bin)",
        stationary_pool as f64 / n as f64
    );

    // Partition heals: a backlog of 20n requests floods in at once.
    sim.process_mut().inject_pool(overload_factor * n as u64);
    let snap = SystemSnapshot::capture(sim.process());
    println!(
        "injected backlog: pool now {} balls ({:.1} per bin)",
        snap.pool_size, snap.normalized_pool
    );

    // Watch the drain. Theoretical net drain per round near saturation:
    // deletions ≈ n, arrivals = λn, so pool shrinks by ≈ (1 − λ)n.
    let expected_drain = (1.0 - lambda) * n as f64;
    let recovery_band = (stationary_pool as f64 * 1.5).max(n as f64);
    let mut rounds = 0u64;
    let mut last_pool = snap.pool_size as f64;
    let mut trajectory = vec![(0.0, snap.pool_size as f64 / n as f64)];
    loop {
        let report = sim.step();
        rounds += 1;
        trajectory.push((rounds as f64, report.pool_size as f64 / n as f64));
        if rounds.is_multiple_of(16) {
            let drained = (last_pool - report.pool_size as f64) / 16.0;
            println!(
                "round {rounds:>4}: pool {:>8}  (drain {:>7.1}/round, theory {expected_drain:.1})",
                report.pool_size, drained
            );
            last_pool = report.pool_size as f64;
        }
        if (report.pool_size as f64) < recovery_band {
            println!("recovered to the stationary band after {rounds} rounds");
            break;
        }
        if rounds > 100_000 {
            println!("no recovery within 100000 rounds — unexpected!");
            break;
        }
    }
    println!(
        "\n{}",
        Chart::new("pool/n during recovery", 64, 16)
            .with_series(Series::new("pool/n", trajectory))
            .render()
    );
    println!(
        "theory: {} extra balls / {:.0} net drain per round ≈ {:.0} rounds",
        overload_factor * n as u64,
        expected_drain,
        overload_factor as f64 * n as f64 / expected_drain
    );
    Ok(())
}
