//! Capacity planning: pick the buffer size `c` for a target injection
//! rate, combining the paper's theory with a confirmation simulation.
//!
//! Given a rate λ, the theory suggests `c* ≈ √ln(1/(1−λ))` (the sweet spot
//! of Theorem 2). This example sweeps capacities around `c*`, simulates
//! each and prints the measured stationary waiting times next to the
//! Section-V envelope, so an operator can see exactly what each extra slot
//! of buffer buys.
//!
//! ```text
//! cargo run --release --example capacity_planning [lambda-exponent]
//! ```
//!
//! The optional argument `i` selects λ = 1 − 2⁻ⁱ (default i = 10).

use infinite_balanced_allocation::analysis::sweetspot;
use infinite_balanced_allocation::prelude::*;
use infinite_balanced_allocation::sim::engine::MultiObserver;
use infinite_balanced_allocation::sim::output::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let i: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(10);
    let n: usize = 1 << 13;
    if !n.is_multiple_of(1usize << i) {
        return Err(format!("lambda exponent {i} too fine for n = {n}").into());
    }
    let lambda = 1.0 - 2.0f64.powi(-(i as i32));

    let c_star = sweetspot::continuous_sweet_spot(lambda);
    println!("capacity planning for lambda = 1 - 2^-{i} = {lambda:.6} on n = {n} bins");
    println!("theory: continuous sweet spot c* = {c_star:.2}");

    let lo = (c_star.floor() as u32).saturating_sub(2).max(1);
    let hi = c_star.ceil() as u32 + 3;
    let mut table = Table::new(
        "measured stationary behavior per capacity",
        &[
            "c",
            "avg wait",
            "max wait",
            "wait envelope",
            "pool/n",
            "pool envelope",
        ],
    );
    let mut best: Option<(u32, f64)> = None;
    for c in lo..=hi {
        let config = CappedConfig::new(n, c, lambda)?;
        let mut process = CappedProcess::new(config);
        process.warm_start();
        let mut sim = Simulation::new(process, SimRng::seed_from(u64::from(c) * 97));
        run_burn_in(&mut sim, &BurnIn::default_adaptive(lambda));

        let mut waits = WaitingTimes::new();
        let mut stats = RoundStats::new();
        let mut obs = MultiObserver::new().with(&mut waits).with(&mut stats);
        sim.run_observed(600, &mut obs);

        let avg = waits.mean();
        if best.map(|(_, w)| avg < w).unwrap_or(true) {
            best = Some((c, avg));
        }
        table.row(vec![
            u64::from(c).into(),
            avg.into(),
            waits.max().unwrap_or(0).into(),
            waiting_time_fit(n, c, lambda).into(),
            (stats.pool.mean() / n as f64).into(),
            normalized_pool_fit(c, lambda).into(),
        ]);
    }
    println!("\n{}", table.render());
    let (best_c, best_wait) = best.expect("at least one capacity measured");
    println!("recommendation: c = {best_c} (measured avg wait {best_wait:.2} rounds)");
    println!(
        "integer sweet spot from the fit alone: c = {}",
        optimal_capacity(lambda, n)
    );
    Ok(())
}
