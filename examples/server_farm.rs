//! Server-farm scenario: the systems story from the paper's introduction.
//!
//! A farm of `n` servers receives requests from clients. Each client sends
//! its request to one uniformly random server; servers have a bounded
//! request buffer of size `c` and process one request per tick, rejecting
//! requests that arrive to a full buffer (rejected requests stay with the
//! client and are retried next tick). This is exactly CAPPED(c, λ) with
//! requests as balls and ticks as rounds.
//!
//! The example compares buffer sizes under a daily traffic pattern (quiet
//! → rush hour → quiet), reporting p50/p99/max response times and the
//! client-side retry queue. It shows the paper's sweet spot in action: at
//! rush hour (λ close to 1), c = 3 beats both c = 1 (too many retries)
//! and c = 8 (requests sit in deep buffers).
//!
//! ```text
//! cargo run --release --example server_farm
//! ```

use infinite_balanced_allocation::prelude::*;
use infinite_balanced_allocation::sim::arrivals::ArrivalModel;
use infinite_balanced_allocation::sim::output::Table;

/// One phase of the daily traffic pattern.
struct Phase {
    name: &'static str,
    lambda: f64,
    ticks: u64,
}

fn main() -> Result<(), infinite_balanced_allocation::sim::error::ConfigError> {
    let n = 1 << 12; // 4096 servers
    let phases = [
        Phase {
            name: "overnight",
            lambda: 0.25,
            ticks: 2_000,
        },
        Phase {
            name: "morning",
            lambda: 0.75,
            ticks: 2_000,
        },
        Phase {
            name: "rush hour",
            lambda: 1.0 - 1.0 / 256.0,
            ticks: 4_000,
        },
        Phase {
            name: "evening",
            lambda: 0.5,
            ticks: 2_000,
        },
    ];

    println!("server farm: n = {n} servers, Poisson request arrivals");
    for capacity in [1u32, 3, 8] {
        let mut table = Table::new(
            &format!("buffer capacity c = {capacity}"),
            &[
                "phase",
                "lambda",
                "p50 resp",
                "p99 resp",
                "max resp",
                "retry queue/n",
            ],
        );
        // A single long-running farm; traffic changes between phases.
        let config = CappedConfig::new(n, capacity, phases[0].lambda)?;
        let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(2024));
        for phase in &phases {
            // Reconfigure arrivals for the phase (Poisson, like real traffic).
            let arrivals = ArrivalModel::poisson_rate(n, phase.lambda)?;
            let reconfigured = sim.process().config().clone().with_arrivals(arrivals);
            *sim.process_mut() = rebuild_with_state(sim.process(), reconfigured);

            let mut waits = WaitingTimes::new();
            let mut stats = RoundStats::new();
            let mut obs = infinite_balanced_allocation::sim::engine::MultiObserver::new()
                .with(&mut waits)
                .with(&mut stats);
            sim.run_observed(phase.ticks, &mut obs);
            let h = waits.histogram();
            table.row(vec![
                phase.name.into(),
                format!("{:.4}", phase.lambda).into(),
                h.quantile(0.5).unwrap_or(0).into(),
                h.quantile(0.99).unwrap_or(0).into(),
                h.max().unwrap_or(0).into(),
                (stats.pool.mean() / n as f64).into(),
            ]);
        }
        println!("\n{}", table.render());
    }
    println!(
        "takeaway: at rush hour the sweet spot c* = {} balances retries against queueing,",
        optimal_capacity(1.0 - 1.0 / 256.0, n)
    );
    println!("matching the paper's c = Theta(sqrt(ln 1/(1-lambda))) prediction.");
    Ok(())
}

/// Rebuilds the process with a new configuration, carrying over nothing —
/// the farm drains between phases in reality too, but to keep continuity
/// we instead inject the old backlog into the new process.
fn rebuild_with_state(old: &CappedProcess, config: CappedConfig) -> CappedProcess {
    let backlog = old.pool().len() as u64 + old.buffered() as u64;
    let mut fresh = CappedProcess::new(config);
    fresh.inject_pool(backlog);
    fresh
}
