//! Asynchronous server farm: the continuous-time retrial-queue analog.
//!
//! Drops the paper's synchronous-round assumption: requests arrive as a
//! Poisson stream, servers take exponential service times, and rejected
//! requests retry after exponential backoff. This example runs the
//! continuous system next to the synchronous one at the same parameters
//! and shows that the sweet-spot story survives — with a twist at heavy
//! traffic (see EXPERIMENTS.md, `ASYNC`).
//!
//! ```text
//! cargo run --release --example retrial_queue
//! ```

use infinite_balanced_allocation::core::continuous::{ContinuousCapped, ContinuousConfig};
use infinite_balanced_allocation::prelude::*;
use infinite_balanced_allocation::sim::engine::MultiObserver;
use infinite_balanced_allocation::sim::output::Table;

fn main() -> Result<(), infinite_balanced_allocation::sim::error::ConfigError> {
    let n = 1 << 11;
    let lambda = 1.0 - 1.0 / 64.0; // heavy traffic

    println!("asynchronous vs synchronous CAPPED at lambda = {lambda:.4}, n = {n}\n");
    let mut table = Table::new(
        "sync rounds vs async (Poisson/Exp) retrial queue",
        &[
            "c",
            "sync pool/n",
            "async orbit/n",
            "sync avg wait",
            "async avg sojourn",
            "async p99 sojourn",
        ],
    );
    for c in [1u32, 2, 3, 4] {
        // Synchronous measurement.
        let config = CappedConfig::new(n, c, lambda)?;
        let mut process = CappedProcess::new(config);
        process.warm_start();
        let mut sim = Simulation::new(process, SimRng::seed_from(u64::from(c)));
        run_burn_in(&mut sim, &BurnIn::default_adaptive(lambda));
        let mut stats = RoundStats::new();
        let mut waits = WaitingTimes::new();
        let mut obs = MultiObserver::new().with(&mut stats).with(&mut waits);
        sim.run_observed(600, &mut obs);

        // Continuous-time measurement.
        let mut system = ContinuousCapped::new(ContinuousConfig::paper_analog(n, c, lambda));
        let mut rng = SimRng::seed_from(u64::from(c) + 40);
        system.run_for(40.0 / (1.0 - lambda), &mut rng);
        let async_stats = system.observe(600.0, &mut rng);

        table.row(vec![
            u64::from(c).into(),
            (stats.pool.mean() / n as f64).into(),
            (async_stats.mean_orbit / n as f64).into(),
            waits.mean().into(),
            async_stats.sojourns.mean().into(),
            async_stats
                .sojourn_histogram
                .quantile(0.99)
                .unwrap_or(0)
                .into(),
        ]);
    }
    println!("{}", table.render());
    println!("takeaway: the waiting-time minimum at moderate c survives asynchrony, and");
    println!("unit buffers (c = 1) collapse without the synchronous service drumbeat —");
    println!("buffer headroom matters even more in asynchronous systems.");
    Ok(())
}
