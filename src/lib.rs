//! # Infinite Balanced Allocation via Finite Capacities
//!
//! A complete Rust reproduction of *"Infinite Balanced Allocation via
//! Finite Capacities"* (Berenbrink, Friedetzky, Hahn, Hintze, Kaaser,
//! Kling, Nagel — ICDCS 2021): the CAPPED(c, λ) process, its MODCAPPED
//! analysis companion and the Lemma-1/6 coupling, the baselines the paper
//! compares against, a theory companion with every closed-form bound, and
//! a benchmark harness regenerating every figure.
//!
//! This facade crate re-exports the four member crates under stable names:
//!
//! - [`core`] (`iba-core`) — CAPPED, MODCAPPED, coupling, metrics.
//! - [`sim`] (`iba-sim`) — RNG, statistics, arrival models, round engine,
//!   burn-in, replication runner, output.
//! - [`baselines`] (`iba-baselines`) — batched GREEDY\[d\],
//!   THRESHOLD\[T\], sequential GREEDY\[d\].
//! - [`analysis`] (`iba-analysis`) — Theorems 1–2, Section-V fits, tail
//!   bounds, sweet-spot capacity.
//! - [`serve`] (`iba-serve`) — the sharded, multi-threaded CAPPED
//!   dispatch service (workers, round clock, admission, live metrics).
//!
//! # Quickstart
//!
//! ```
//! use infinite_balanced_allocation::prelude::*;
//!
//! # fn main() -> Result<(), infinite_balanced_allocation::sim::error::ConfigError> {
//! // CAPPED(c = 2, λ = 0.75) on 1024 bins.
//! let config = CappedConfig::new(1024, 2, 0.75)?;
//! let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(7));
//! sim.run_rounds(500);
//! let pool = sim.process().pool_size() as f64 / 1024.0;
//! // The stationary pool stays below the paper's envelope ln(1/(1−λ))/c + 1.
//! assert!(pool < normalized_pool_fit(2, 0.75));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and the `iba-bench` crate for
//! the figure-regeneration harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iba_analysis as analysis;
pub use iba_baselines as baselines;
pub use iba_core as core;
pub use iba_serve as serve;
pub use iba_sim as sim;

/// Convenient re-exports for the common simulation workflow.
pub mod prelude {
    pub use iba_analysis::bounds::{theorem2_pool_bound, theorem2_waiting_bound};
    pub use iba_analysis::fits::{normalized_pool_fit, waiting_time_fit};
    pub use iba_analysis::sweetspot::optimal_capacity;
    pub use iba_baselines::{GreedyBatchProcess, ThresholdProcess};
    pub use iba_core::{Ball, Capacity, CappedConfig, CappedProcess, CoupledRun, ModCappedProcess};
    pub use iba_sim::burnin::{run_burn_in, BurnIn};
    pub use iba_sim::engine::{PoolSeries, RoundStats, WaitingTimes};
    pub use iba_sim::{AllocationProcess, RoundReport, SimRng, Simulation};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_all_crates() {
        use crate::prelude::*;
        let config = CappedConfig::new(16, 1, 0.5).expect("valid");
        let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(1));
        sim.run_rounds(3);
        assert_eq!(sim.process().round(), 3);
        assert!(theorem2_pool_bound(16, 1, 0.5) > 0.0);
    }
}
