//! Append-only JSONL experiment registry.
//!
//! One line per run, written through the workspace JSON writer and
//! re-read with the strict parser — the registry rejects a store it
//! cannot fully account for rather than silently skipping lines. Each
//! record carries an *identity*: `(benchmark, config_hash, seed,
//! git_rev, git_dirty)`. Appending a record whose identity is already
//! present is a dedup no-op, so re-running `replicate` on an unchanged
//! tree does not grow the store.

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use iba_obs::json::{self, content_hash, JsonObjWriter, JsonValue, Provenance};

/// One experiment run: what was measured, under which configuration, by
/// which code revision on which machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Benchmark / harness name (`round_kernel`, `serve_net`, `sweep`, …).
    pub benchmark: String,
    /// Content hash of the canonical config pairs (`fnv1a:<hex>`).
    pub config_hash: String,
    /// Master RNG seed of the run.
    pub seed: u64,
    /// Where and on what the run happened.
    pub provenance: Provenance,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
    /// Seconds since the Unix epoch when the record was created.
    pub unix_time: u64,
    /// Flattened numeric results, dotted-path name → value, in emission
    /// order (e.g. `cells.0.arena.median_ns_per_round`).
    pub metrics: Vec<(String, f64)>,
}

impl RunRecord {
    /// The record's dedup identity: same benchmark, same canonical
    /// config, same seed, same (clean) code revision ⇒ same identity.
    /// Wall time, timestamp and measured values are deliberately
    /// excluded — a re-run of an identical experiment is a duplicate
    /// even though its timings differ.
    pub fn identity_hash(&self) -> String {
        identity_hash(
            &self.benchmark,
            &self.config_hash,
            self.seed,
            &self.provenance.git_rev,
            self.provenance.git_dirty,
        )
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = JsonObjWriter::with_schema();
        w.field_str("benchmark", &self.benchmark);
        w.field_str("config_hash", &self.config_hash);
        w.field_u64("seed", self.seed);
        w.field_raw("provenance", &self.provenance.to_json_object());
        w.field_f64("wall_ms", self.wall_ms);
        w.field_u64("unix_time", self.unix_time);
        let mut m = JsonObjWriter::new();
        for (name, value) in &self.metrics {
            m.field_f64(name, *value);
        }
        w.field_raw("metrics", &m.finish());
        w.finish()
    }

    /// Parses a line written by [`RunRecord::to_json_line`]. Strict:
    /// every required field must be present and well-typed.
    pub fn from_json_line(line: &str) -> Result<RunRecord, RegistryError> {
        let v = json::parse(line).map_err(|e| RegistryError::new(format!("bad JSON: {e}")))?;
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| RegistryError::new(format!("missing field '{name}'")))
        };
        let schema = field("schema")?
            .as_u64()
            .ok_or_else(|| RegistryError::new("mistyped 'schema'".to_string()))?;
        if schema != json::SCHEMA_VERSION {
            return Err(RegistryError::new(format!(
                "unsupported schema version {schema}"
            )));
        }
        let string = |name: &str| -> Result<String, RegistryError> {
            field(name)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| RegistryError::new(format!("mistyped '{name}'")))
        };
        let provenance = Provenance::from_value(field("provenance")?)
            .ok_or_else(|| RegistryError::new("malformed 'provenance'".to_string()))?;
        let metrics = match field("metrics")? {
            JsonValue::Object(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (name, value) in fields {
                    let value = value.as_f64().ok_or_else(|| {
                        RegistryError::new(format!("non-numeric metric '{name}'"))
                    })?;
                    out.push((name.clone(), value));
                }
                out
            }
            _ => return Err(RegistryError::new("mistyped 'metrics'".to_string())),
        };
        Ok(RunRecord {
            benchmark: string("benchmark")?,
            config_hash: string("config_hash")?,
            seed: field("seed")?
                .as_u64()
                .ok_or_else(|| RegistryError::new("mistyped 'seed'".to_string()))?,
            provenance,
            wall_ms: field("wall_ms")?
                .as_f64()
                .ok_or_else(|| RegistryError::new("mistyped 'wall_ms'".to_string()))?,
            unix_time: field("unix_time")?
                .as_u64()
                .ok_or_else(|| RegistryError::new("mistyped 'unix_time'".to_string()))?,
            metrics,
        })
    }

    /// Looks up a metric by exact dotted-path name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Outcome of [`RunRegistry::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The record was new and has been written to the store.
    Appended,
    /// A record with the same identity hash already exists; nothing was
    /// written.
    Deduplicated,
}

/// A registry error: load, parse or append failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryError {
    /// What went wrong.
    pub message: String,
}

impl RegistryError {
    fn new(message: String) -> RegistryError {
        RegistryError { message }
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "registry error: {}", self.message)
    }
}

impl std::error::Error for RegistryError {}

/// The JSONL run store: an in-memory view plus the backing file path.
#[derive(Debug)]
pub struct RunRegistry {
    path: PathBuf,
    records: Vec<RunRecord>,
}

impl RunRegistry {
    /// Opens (or conceptually creates) the registry at `path`. A missing
    /// file is an empty registry; an unreadable or malformed file is an
    /// error — the store is never partially loaded.
    pub fn open(path: &Path) -> Result<RunRegistry, RegistryError> {
        let mut records = Vec::new();
        match std::fs::read_to_string(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(RegistryError::new(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
            Ok(text) => {
                for (lineno, line) in text.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let record = RunRecord::from_json_line(line).map_err(|e| {
                        RegistryError::new(format!(
                            "{} line {}: {}",
                            path.display(),
                            lineno + 1,
                            e.message
                        ))
                    })?;
                    records.push(record);
                }
            }
        }
        Ok(RunRegistry {
            path: path.to_path_buf(),
            records,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All records, in store order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Appends `record` unless a record with the same identity hash is
    /// already present. Creates parent directories and the store file on
    /// first write.
    pub fn append(&mut self, record: RunRecord) -> Result<AppendOutcome, RegistryError> {
        let identity = record.identity_hash();
        if self.records.iter().any(|r| r.identity_hash() == identity) {
            return Ok(AppendOutcome::Deduplicated);
        }
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    RegistryError::new(format!("cannot create {}: {e}", parent.display()))
                })?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| RegistryError::new(format!("cannot open {}: {e}", self.path.display())))?;
        writeln!(file, "{}", record.to_json_line()).map_err(|e| {
            RegistryError::new(format!("cannot write {}: {e}", self.path.display()))
        })?;
        self.records.push(record);
        Ok(AppendOutcome::Appended)
    }

    /// The most recent record (by `unix_time`, ties broken by store
    /// order) for a benchmark + config hash, excluding records whose
    /// identity matches `excluding` (used to compare a fresh run against
    /// its predecessor rather than itself).
    pub fn latest_for(
        &self,
        benchmark: &str,
        config_hash: &str,
        excluding: Option<&str>,
    ) -> Option<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.benchmark == benchmark && r.config_hash == config_hash)
            .filter(|r| excluding != Some(r.identity_hash().as_str()))
            .max_by_key(|r| r.unix_time)
    }
}

/// The identity hash of a run, computable without a full [`RunRecord`]
/// (e.g. from a stamped benchmark file: its `benchmark`, embedded
/// config hash, `seed` field and provenance block).
pub fn identity_hash(
    benchmark: &str,
    config_hash: &str,
    seed: u64,
    git_rev: &str,
    git_dirty: bool,
) -> String {
    content_hash(&[
        ("benchmark".to_string(), benchmark.to_string()),
        ("config_hash".to_string(), config_hash.to_string()),
        ("seed".to_string(), seed.to_string()),
        ("git_rev".to_string(), git_rev.to_string()),
        ("git_dirty".to_string(), git_dirty.to_string()),
    ])
}

/// Current seconds since the Unix epoch (0 if the clock is before 1970).
pub fn unix_time_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_obs::json::SCHEMA_VERSION;

    fn sample_record(seed: u64) -> RunRecord {
        RunRecord {
            benchmark: "round_kernel".to_string(),
            config_hash: "fnv1a:00000000deadbeef".to_string(),
            seed,
            provenance: Provenance {
                schema_version: SCHEMA_VERSION,
                git_rev: "cafe0123".to_string(),
                git_dirty: false,
                host: "test-host".to_string(),
                cores: 8,
                kernel: Some("arena".to_string()),
                threads: Some(1),
            },
            wall_ms: 123.5,
            unix_time: 1_700_000_000 + seed,
            metrics: vec![
                ("cells.0.arena.median_ns_per_round".to_string(), 1.25e6),
                ("cells.0.speedup".to_string(), 3.1),
            ],
        }
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iba-exp-registry-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("registry.jsonl")
    }

    #[test]
    fn record_round_trips_through_json_line() {
        let record = sample_record(7);
        let line = record.to_json_line();
        let back = RunRecord::from_json_line(&line).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn strict_parser_rejects_malformed_lines() {
        let good = sample_record(7).to_json_line();
        for bad in [
            "{}",
            "not json",
            &good.replace("\"seed\":7", "\"seed\":\"7\""),
            &good.replace("\"config_hash\"", "\"config_hashish\""),
            &good.replace("\"git_rev\":\"cafe0123\",", ""),
            &good.replace("1250000", "\"fast\""),
            &good.replace("\"schema\":1", "\"schema\":99"),
        ] {
            assert!(RunRecord::from_json_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn append_dedups_by_identity_and_persists() {
        let path = temp_store("dedup");
        let mut reg = RunRegistry::open(&path).unwrap();
        assert_eq!(
            reg.append(sample_record(1)).unwrap(),
            AppendOutcome::Appended
        );
        assert_eq!(
            reg.append(sample_record(2)).unwrap(),
            AppendOutcome::Appended
        );
        // Same identity (benchmark/config/seed/rev), different timings:
        // still a duplicate.
        let mut rerun = sample_record(1);
        rerun.wall_ms = 999.0;
        rerun.unix_time += 1000;
        rerun.metrics[0].1 = 2.0e6;
        assert_eq!(reg.append(rerun).unwrap(), AppendOutcome::Deduplicated);
        // A different revision is a new record.
        let mut new_rev = sample_record(1);
        new_rev.provenance.git_rev = "beef4567".to_string();
        assert_eq!(reg.append(new_rev).unwrap(), AppendOutcome::Appended);

        // Reload from disk: 3 records survive, dedup still applies.
        let mut reloaded = RunRegistry::open(&path).unwrap();
        assert_eq!(reloaded.records().len(), 3);
        assert_eq!(
            reloaded.append(sample_record(2)).unwrap(),
            AppendOutcome::Deduplicated
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn latest_for_picks_newest_matching_record() {
        let path = temp_store("latest");
        let mut reg = RunRegistry::open(&path).unwrap();
        let older = sample_record(1);
        let mut newer = sample_record(1);
        newer.provenance.git_rev = "ffff1111".to_string();
        newer.unix_time += 500;
        reg.append(older.clone()).unwrap();
        reg.append(newer.clone()).unwrap();
        let hash = older.config_hash.clone();
        let found = reg.latest_for("round_kernel", &hash, None).unwrap();
        assert_eq!(found.provenance.git_rev, "ffff1111");
        // Excluding the newest identity falls back to its predecessor.
        let prior = reg
            .latest_for("round_kernel", &hash, Some(&newer.identity_hash()))
            .unwrap();
        assert_eq!(prior.provenance.git_rev, "cafe0123");
        assert!(reg.latest_for("unknown", &hash, None).is_none());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn open_rejects_corrupt_store() {
        let path = temp_store("corrupt");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "{\"schema\":1,\"benchmark\":42}\n").unwrap();
        let err = RunRegistry::open(&path).unwrap_err();
        assert!(err.message.contains("line 1"), "{err}");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
