//! Hand-rolled inline SVG charts for the static report.
//!
//! Std-only, no templating: each function returns a complete `<svg>`
//! element ready to embed in the report HTML. The charts are modest —
//! axes, ticks, polylines/bars, a legend — but entirely self-contained,
//! which is the point: the report must render from `file://` with no
//! network access.

use std::fmt::Write as _;

/// Chart canvas size and margins.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 320.0;
const MARGIN_LEFT: f64 = 72.0;
const MARGIN_RIGHT: f64 = 24.0;
const MARGIN_TOP: f64 = 34.0;
const MARGIN_BOTTOM: f64 = 46.0;

/// Line color cycle (Okabe–Ito palette, colorblind-safe).
pub const PALETTE: &[&str] = &[
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#000000",
];

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// Draw a dashed line (used for theory bounds vs measured data).
    pub dashed: bool,
}

impl Series {
    /// A solid measured-data series.
    pub fn solid(label: &str, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.to_string(),
            points,
            dashed: false,
        }
    }

    /// A dashed series (theory bounds).
    pub fn dashed(label: &str, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.to_string(),
            points,
            dashed: true,
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Formats an axis tick value compactly (SI-ish suffixes for large
/// magnitudes, trimmed decimals for small ones).
fn tick_label(v: f64) -> String {
    let a = v.abs();
    if a >= 1.0e9 {
        format!("{:.3}G", v / 1.0e9)
    } else if a >= 1.0e6 {
        format!("{:.3}M", v / 1.0e6)
    } else if a >= 1.0e4 {
        format!("{:.0}k", v / 1.0e3)
    } else if a >= 100.0 || v.fract() == 0.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
    .trim_end_matches(".000")
    .to_string()
}

fn data_range(series: &[Series], axis: usize) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in series {
        for p in &s.points {
            let v = if axis == 0 { p.0 } else { p.1 };
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() {
        return (0.0, 1.0);
    }
    if lo == hi {
        // Degenerate range: pad around the single value.
        let pad = if lo == 0.0 { 1.0 } else { lo.abs() * 0.1 };
        return (lo - pad, hi + pad);
    }
    (lo, hi)
}

/// Renders a line chart of `series` with axes, ticks and a legend.
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let (x_lo, x_hi) = data_range(series, 0);
    let (y_lo_raw, y_hi_raw) = data_range(series, 1);
    // Anchor the y axis at zero when the data lives near it: trajectory
    // charts that clip to the data range exaggerate noise.
    let y_lo = if y_lo_raw > 0.0 && y_lo_raw < 0.5 * y_hi_raw {
        0.0
    } else {
        y_lo_raw
    };
    let y_hi = y_hi_raw + (y_hi_raw - y_lo) * 0.05;
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let sx = move |x: f64| MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w;
    let sy = move |y: f64| MARGIN_TOP + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h;

    let mut out = String::new();
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {WIDTH} {HEIGHT}\" class=\"chart\" role=\"img\" \
         aria-label=\"{}\" xmlns=\"http://www.w3.org/2000/svg\">",
        esc(title)
    );
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"20\" class=\"title\" text-anchor=\"middle\">{}</text>",
        WIDTH / 2.0,
        esc(title)
    );
    // Gridlines + ticks: 5 divisions per axis.
    for i in 0..=4 {
        let fy = y_lo + (y_hi - y_lo) * f64::from(i) / 4.0;
        let py = sy(fy);
        let _ = write!(
            out,
            "<line x1=\"{MARGIN_LEFT}\" y1=\"{py:.1}\" x2=\"{:.1}\" y2=\"{py:.1}\" class=\"grid\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">{}</text>",
            WIDTH - MARGIN_RIGHT,
            MARGIN_LEFT - 6.0,
            py + 4.0,
            tick_label(fy)
        );
        let fx = x_lo + (x_hi - x_lo) * f64::from(i) / 4.0;
        let px = sx(fx);
        let _ = write!(
            out,
            "<text x=\"{px:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"middle\">{}</text>",
            HEIGHT - MARGIN_BOTTOM + 18.0,
            tick_label(fx)
        );
    }
    // Axis labels.
    let _ = write!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\" text-anchor=\"middle\">{}</text>",
        MARGIN_LEFT + plot_w / 2.0,
        HEIGHT - 8.0,
        esc(x_label)
    );
    let _ = write!(
        out,
        "<text x=\"14\" y=\"{:.1}\" class=\"axis\" text-anchor=\"middle\" \
         transform=\"rotate(-90 14 {:.1})\">{}</text>",
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        esc(y_label)
    );
    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let dash = if s.dashed {
            " stroke-dasharray=\"6 4\""
        } else {
            ""
        };
        let mut path = String::new();
        for (j, (x, y)) in s.points.iter().enumerate() {
            let _ = write!(
                path,
                "{}{:.1},{:.1}",
                if j == 0 { "" } else { " " },
                sx(*x),
                sy(*y)
            );
        }
        let _ = write!(
            out,
            "<polyline points=\"{path}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"{dash}/>"
        );
        for (x, y) in &s.points {
            let _ = write!(
                out,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.6\" fill=\"{color}\"/>",
                sx(*x),
                sy(*y)
            );
        }
        // Legend row, top-right inside the plot.
        let ly = MARGIN_TOP + 8.0 + 16.0 * i as f64;
        let lx = WIDTH - MARGIN_RIGHT - 150.0;
        let _ = write!(
            out,
            "<line x1=\"{lx}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" stroke=\"{color}\" \
             stroke-width=\"2\"{dash}/>\
             <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\">{}</text>",
            lx + 22.0,
            lx + 27.0,
            ly + 4.0,
            esc(&s.label)
        );
    }
    // Frame.
    let _ = write!(
        out,
        "<rect x=\"{MARGIN_LEFT}\" y=\"{MARGIN_TOP}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\" \
         fill=\"none\" stroke=\"#444\"/></svg>"
    );
    out
}

/// Renders a grouped bar chart: one group per `(label, values)` entry,
/// bars within a group colored by position and named in `bar_names`.
pub fn bar_chart(
    title: &str,
    y_label: &str,
    bar_names: &[&str],
    groups: &[(String, Vec<f64>)],
) -> String {
    let y_hi = groups
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-12)
        * 1.1;
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let sy = move |y: f64| MARGIN_TOP + plot_h - y / y_hi * plot_h;

    let mut out = String::new();
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {WIDTH} {HEIGHT}\" class=\"chart\" role=\"img\" \
         aria-label=\"{}\" xmlns=\"http://www.w3.org/2000/svg\">",
        esc(title)
    );
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"20\" class=\"title\" text-anchor=\"middle\">{}</text>",
        WIDTH / 2.0,
        esc(title)
    );
    for i in 0..=4 {
        let fy = y_hi * f64::from(i) / 4.0;
        let py = sy(fy);
        let _ = write!(
            out,
            "<line x1=\"{MARGIN_LEFT}\" y1=\"{py:.1}\" x2=\"{:.1}\" y2=\"{py:.1}\" class=\"grid\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">{}</text>",
            WIDTH - MARGIN_RIGHT,
            MARGIN_LEFT - 6.0,
            py + 4.0,
            tick_label(fy)
        );
    }
    let _ = write!(
        out,
        "<text x=\"14\" y=\"{:.1}\" class=\"axis\" text-anchor=\"middle\" \
         transform=\"rotate(-90 14 {:.1})\">{}</text>",
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        esc(y_label)
    );
    let ngroups = groups.len().max(1) as f64;
    let nbars = bar_names.len().max(1) as f64;
    let group_w = plot_w / ngroups;
    let bar_w = (group_w * 0.72) / nbars;
    for (g, (label, values)) in groups.iter().enumerate() {
        let gx = MARGIN_LEFT + group_w * g as f64 + group_w * 0.14;
        for (b, v) in values.iter().enumerate() {
            let color = PALETTE[b % PALETTE.len()];
            let x = gx + bar_w * b as f64;
            let top = sy(*v);
            let _ = write!(
                out,
                "<rect x=\"{x:.1}\" y=\"{top:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{color}\"/>",
                bar_w * 0.92,
                MARGIN_TOP + plot_h - top
            );
        }
        let _ = write!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"middle\">{}</text>",
            gx + group_w * 0.36,
            HEIGHT - MARGIN_BOTTOM + 18.0,
            esc(label)
        );
    }
    for (b, name) in bar_names.iter().enumerate() {
        let color = PALETTE[b % PALETTE.len()];
        let ly = MARGIN_TOP + 8.0 + 16.0 * b as f64;
        let lx = WIDTH - MARGIN_RIGHT - 150.0;
        let _ = write!(
            out,
            "<rect x=\"{lx}\" y=\"{:.1}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\">{}</text>",
            ly - 8.0,
            lx + 17.0,
            ly + 3.0,
            esc(name)
        );
    }
    let _ = write!(
        out,
        "<rect x=\"{MARGIN_LEFT}\" y=\"{MARGIN_TOP}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\" \
         fill=\"none\" stroke=\"#444\"/></svg>"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_is_well_formed_and_escaped() {
        let svg = line_chart(
            "pool/n vs <lambda>",
            "lambda",
            "pool/n",
            &[
                Series::solid("measured", vec![(0.5, 0.01), (0.75, 0.05), (0.9375, 0.2)]),
                Series::dashed(
                    "Theorem 1 bound",
                    vec![(0.5, 0.02), (0.75, 0.1), (0.9375, 0.4)],
                ),
            ],
        );
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("&lt;lambda&gt;"));
        assert!(svg.contains("stroke-dasharray"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // No raw NaN/inf leaked into coordinates.
        assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }

    #[test]
    fn charts_survive_degenerate_data() {
        let flat = line_chart("flat", "x", "y", &[Series::solid("s", vec![(1.0, 5.0)])]);
        assert!(flat.contains("<svg") && !flat.contains("NaN"));
        let empty = line_chart("empty", "x", "y", &[]);
        assert!(empty.contains("<svg") && !empty.contains("NaN"));
        let bars = bar_chart("b", "v", &["a"], &[]);
        assert!(bars.contains("<svg") && !bars.contains("NaN"));
    }

    #[test]
    fn bar_chart_draws_every_bar() {
        let svg = bar_chart(
            "goodput",
            "req/s",
            &["calm", "chaos"],
            &[
                ("run A".to_string(), vec![17816.0, 14537.0]),
                ("run B".to_string(), vec![18000.0, 15000.0]),
            ],
        );
        // 4 data bars + 2 legend swatches + 1 frame.
        assert_eq!(svg.matches("<rect").count(), 7);
    }
}
