//! Experiment registry and replication tooling for the workspace.
//!
//! Every benchmark or sweep run in the workspace produces numbers that are
//! only as trustworthy as their provenance. This crate turns those runs
//! into first-class records:
//!
//! - [`registry`] — an append-only JSONL store of [`registry::RunRecord`]s
//!   (content-hashed config, seed, git revision, host, kernel mode, wall
//!   time, flattened metrics) with a strict parser and dedup-by-hash.
//! - [`bench_data`] — loader for the committed `BENCH_*.json` baselines,
//!   flattening every numeric leaf into dotted-path metrics and
//!   recovering the canonical config pairs used for content hashing.
//! - [`gate`] — the regression gate behind `replicate --check`: compares
//!   a fresh run against the last baseline with the same config hash,
//!   direction-aware per metric, with an explicit noisy opt-out list.
//! - [`svg`] / [`report`] — std-only hand-rolled inline-SVG charts and
//!   the static `report.html` (perf trajectories across the committed
//!   history plus registry runs, bound-vs-measured overlays, provenance
//!   tables, gate results).
//!
//! The `replicate` binary ties these together: one command re-runs the
//! quick paper replication plus all five committed benchmark harnesses
//! through the registry and renders the report.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench_data;
pub mod gate;
pub mod registry;
pub mod report;
pub mod svg;
