//! Loader for the committed `BENCH_*.json` baselines.
//!
//! Two jobs: flatten every numeric leaf of a benchmark file into
//! dotted-path metrics (`cells.0.arena.median_ns_per_round`), and
//! recover each benchmark's *canonical config pairs* — the ordered
//! `key=value` list whose [`content_hash`] identifies the experiment
//! configuration. The harnesses, the baseline stamper and the regression
//! gate all call [`config_pairs`] on the emitted JSON, so the three can
//! never disagree about what a configuration is.

use std::path::{Path, PathBuf};

use iba_obs::json::{self, content_hash, JsonValue, Provenance};

/// A parsed benchmark output file.
#[derive(Debug, Clone)]
pub struct BenchFile {
    /// Where it was loaded from.
    pub path: PathBuf,
    /// The `benchmark` field (harness name).
    pub benchmark: String,
    /// Embedded provenance block, when the file has been stamped.
    pub provenance: Option<Provenance>,
    /// Embedded config hash (lives inside the provenance block).
    pub config_hash: Option<String>,
    /// Every numeric leaf, dotted-path name → value, in file order.
    pub metrics: Vec<(String, f64)>,
    /// The full parsed document.
    pub value: JsonValue,
}

impl BenchFile {
    /// Loads and flattens a benchmark JSON file.
    pub fn load(path: &Path) -> Result<BenchFile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value =
            json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        let benchmark = value
            .get("benchmark")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{}: missing 'benchmark' field", path.display()))?
            .to_string();
        let prov_value = value.get("provenance");
        let provenance = prov_value.and_then(Provenance::from_value);
        if prov_value.is_some() && provenance.is_none() {
            return Err(format!("{}: malformed 'provenance' block", path.display()));
        }
        let config_hash = prov_value
            .and_then(|p| p.get("config_hash"))
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        let metrics = flatten_metrics(&value);
        Ok(BenchFile {
            path: path.to_path_buf(),
            benchmark,
            provenance,
            config_hash,
            metrics,
            value,
        })
    }

    /// The content hash of this file's canonical config pairs (computed
    /// fresh from the document, not read from the provenance block).
    pub fn computed_config_hash(&self) -> Option<String> {
        config_pairs(&self.benchmark, &self.value).map(|p| content_hash(&p))
    }
}

/// Flattens every numeric leaf of `value` into `(dotted.path, value)`
/// pairs, in document order. Booleans flatten to 0/1 (so invariants like
/// `bounded_load_wins_every_event` are gateable); strings and the
/// `provenance` / `schema` bookkeeping subtrees are skipped.
pub fn flatten_metrics(value: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten_into(value, &mut String::new(), &mut out, true);
    out
}

fn flatten_into(value: &JsonValue, path: &mut String, out: &mut Vec<(String, f64)>, root: bool) {
    match value {
        JsonValue::Number(v) => out.push((path.clone(), *v)),
        JsonValue::Bool(b) => out.push((path.clone(), if *b { 1.0 } else { 0.0 })),
        JsonValue::Object(fields) => {
            for (key, child) in fields {
                if root && matches!(key.as_str(), "provenance" | "schema") {
                    continue;
                }
                let len = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(key);
                flatten_into(child, path, out, false);
                path.truncate(len);
            }
        }
        JsonValue::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                let len = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(&i.to_string());
                flatten_into(child, path, out, false);
                path.truncate(len);
            }
        }
        JsonValue::Null | JsonValue::String(_) => {}
    }
}

/// Renders a JSON number for canonical config hashing: integral values
/// without a fractional part (`1024`, not `1024.0`), everything else via
/// shortest round-trip formatting.
pub fn canon_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// The canonical ordered config pairs for a benchmark document — the
/// parameters that *define* the experiment (sizes, rates, seeds), none
/// of its measurements. `None` when the benchmark is unknown or the
/// document lacks a required parameter; callers treat that as an error
/// rather than hashing a partial config.
pub fn config_pairs(benchmark: &str, doc: &JsonValue) -> Option<Vec<(String, String)>> {
    let mut pairs: Vec<(String, String)> = vec![("benchmark".to_string(), benchmark.to_string())];
    let push = |pairs: &mut Vec<(String, String)>, key: &str, v: Option<f64>| -> Option<()> {
        pairs.push((key.to_string(), canon_num(v?)));
        Some(())
    };
    let num = |v: &JsonValue, key: &str| v.get(key).and_then(JsonValue::as_f64);
    match benchmark {
        "round_kernel" | "obs_overhead" => {
            push(&mut pairs, "seed", num(doc, "seed"))?;
            push(&mut pairs, "warmup_rounds", num(doc, "warmup_rounds"))?;
            push(&mut pairs, "measured_rounds", num(doc, "measured_rounds"))?;
            let cells = doc.get("cells")?.as_array()?;
            let first = cells.first()?;
            push(&mut pairs, "n", num(first, "n"))?;
            push(&mut pairs, "lambda", num(first, "lambda"))?;
            let cs: Vec<String> = cells
                .iter()
                .map(|cell| num(cell, "c").map(canon_num))
                .collect::<Option<_>>()?;
            pairs.push(("c".to_string(), cs.join(",")));
        }
        "serve_net" => {
            push(&mut pairs, "seed", num(doc, "seed"))?;
            let server = doc.get("server")?;
            for key in ["n", "c", "shards", "round_interval_us", "window", "batch"] {
                push(&mut pairs, key, num(server, key))?;
            }
            push(&mut pairs, "requests", num(doc, "requests"))?;
        }
        "net_chaos" => {
            push(&mut pairs, "seed", num(doc, "seed"))?;
            let server = doc.get("server")?;
            for key in [
                "n",
                "c",
                "shards",
                "round_interval_us",
                "clients",
                "chaos_ingress",
                "shed_start",
            ] {
                push(&mut pairs, key, num(server, key))?;
            }
            push(&mut pairs, "requests", num(doc.get("calm")?, "requests"))?;
        }
        "membership" => {
            push(&mut pairs, "seed", num(doc, "seed"))?;
            let router = doc.get("router")?;
            for key in ["keys", "initial_bins", "vnodes_per_bin", "epsilon"] {
                push(&mut pairs, key, num(router, key))?;
            }
        }
        _ => return None,
    }
    Some(pairs)
}

/// The canonical config pairs of a parameter sweep. The `sweep` binary
/// (building its registry record) and `replicate` (computing the fresh
/// run's identity) both call this, so the two always hash the same
/// configuration identically.
pub fn sweep_config_pairs(
    n: u64,
    capacities: &[u32],
    lambdas: &[f64],
    window: u64,
    seeds: u64,
    master_seed: u64,
) -> Vec<(String, String)> {
    let cs: Vec<String> = capacities.iter().map(|c| c.to_string()).collect();
    let ls: Vec<String> = lambdas.iter().map(|l| canon_num(*l)).collect();
    vec![
        ("benchmark".to_string(), "sweep".to_string()),
        ("n".to_string(), n.to_string()),
        ("c".to_string(), cs.join(",")),
        ("lambda".to_string(), ls.join(",")),
        ("window".to_string(), window.to_string()),
        ("seeds".to_string(), seeds.to_string()),
        ("seed".to_string(), master_seed.to_string()),
    ]
}

/// Renders `prov` as a single-line JSON object with a trailing
/// `config_hash` field — the provenance block embedded into stamped
/// `BENCH_*.json` files.
pub fn provenance_json_with_hash(prov: &Provenance, config_hash: &str) -> String {
    let base = prov.to_json_object();
    format!(
        "{},\"config_hash\":{}}}",
        &base[..base.len() - 1],
        json::quoted(config_hash)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_obs::json::SCHEMA_VERSION;

    #[test]
    fn provenance_block_with_hash_parses_back() {
        let prov = Provenance {
            schema_version: SCHEMA_VERSION,
            git_rev: "abc".into(),
            git_dirty: true,
            host: "h".into(),
            cores: 2,
            kernel: None,
            threads: None,
        };
        let block = provenance_json_with_hash(&prov, "fnv1a:0011223344556677");
        let v = json::parse(&block).unwrap();
        assert_eq!(Provenance::from_value(&v).unwrap(), prov);
        assert_eq!(
            v.get("config_hash").unwrap().as_str(),
            Some("fnv1a:0011223344556677")
        );
    }

    #[test]
    fn sweep_pairs_are_stable() {
        let pairs = sweep_config_pairs(2048, &[1, 2, 4], &[0.75, 0.9375], 150, 1, 20210705);
        let rendered: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        assert_eq!(
            rendered,
            [
                "benchmark=sweep",
                "n=2048",
                "c=1,2,4",
                "lambda=0.75,0.9375",
                "window=150",
                "seeds=1",
                "seed=20210705",
            ]
        );
    }

    #[test]
    fn flatten_walks_objects_arrays_and_bools() {
        let doc = json::parse(
            "{\"benchmark\":\"x\",\"schema\":1,\
             \"provenance\":{\"cores\":8},\
             \"a\":{\"b\":1.5,\"skip\":\"text\"},\
             \"cells\":[{\"v\":2},{\"v\":3,\"ok\":true}]}",
        )
        .unwrap();
        let metrics = flatten_metrics(&doc);
        assert_eq!(
            metrics,
            vec![
                ("a.b".to_string(), 1.5),
                ("cells.0.v".to_string(), 2.0),
                ("cells.1.v".to_string(), 3.0),
                ("cells.1.ok".to_string(), 1.0),
            ]
        );
    }

    #[test]
    fn config_pairs_cover_the_committed_shapes() {
        let round_kernel = json::parse(
            "{\"benchmark\":\"round_kernel\",\"seed\":20210705,\
             \"warmup_rounds\":48,\"measured_rounds\":32,\
             \"cells\":[{\"n\":1000000,\"c\":2,\"lambda\":0.95},\
                         {\"n\":1000000,\"c\":4,\"lambda\":0.95}]}",
        )
        .unwrap();
        let pairs = config_pairs("round_kernel", &round_kernel).unwrap();
        let rendered: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        assert_eq!(
            rendered,
            [
                "benchmark=round_kernel",
                "seed=20210705",
                "warmup_rounds=48",
                "measured_rounds=32",
                "n=1000000",
                "lambda=0.95",
                "c=2,4",
            ]
        );
        // Unknown benchmarks and missing parameters refuse to hash.
        assert!(config_pairs("mystery", &round_kernel).is_none());
        let truncated = json::parse("{\"benchmark\":\"serve_net\",\"seed\":1}").unwrap();
        assert!(config_pairs("serve_net", &truncated).is_none());
    }

    #[test]
    fn canon_num_renders_integers_plainly() {
        assert_eq!(canon_num(1024.0), "1024");
        assert_eq!(canon_num(0.95), "0.95");
        assert_eq!(canon_num(-3.0), "-3");
    }
}
