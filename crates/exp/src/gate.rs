//! The regression gate behind `replicate --check`.
//!
//! A fresh run is compared against its baseline metric-by-metric, but
//! only when the two share a config hash — quick-mode runs are never
//! judged against full-scale committed baselines. Each metric has a
//! *direction* inferred from its name (`speedup` higher is better,
//! `wait` lower is better, unknown names must simply stay close), and
//! metrics matching the noisy opt-out list are reported but never fail
//! the gate. The opt-outs are explicit and surfaced in the report — a
//! skipped cell should be a visible decision, not a silent hole.

/// Default failure threshold: a gated metric may move 15% in the bad
/// direction before the gate fails.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Metric-name substrings excluded from gating by default: absolute
/// wall-clock timings and throughputs, which swing with host load far
/// more than any real regression on shared CI runners. Ratios (speedups,
/// retained goodput, overhead percent, moved fractions) stay gated.
pub const DEFAULT_NOISY: &[&str] = &[
    "ns_per_round",
    "per_sec",
    "wall_ms",
    "latency",
    "submit_latency",
    "mean",
    "p50",
    "p99",
    "p999",
    ".max",
    ".min",
];

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Regressions are increases (waits, pool sizes, moved keys, …).
    LowerIsBetter,
    /// Regressions are decreases (speedups, goodput, accepted, …).
    HigherIsBetter,
    /// No known direction: moving more than the threshold either way
    /// fails (structural counts that should be stable).
    StayClose,
}

/// Infers a metric's direction from its dotted-path name (first matching
/// rule wins; unmatched names must stay close).
pub fn direction_for(name: &str) -> Direction {
    const HIGHER: &[&str] = &[
        "speedup",
        "goodput",
        "per_sec",
        "accepted",
        "retained",
        "completions",
        "wins",
        "bound_ok",
        "bound ok", // sweep table column
        "recovered",
    ];
    const LOWER: &[&str] = &[
        "wait",
        "pool",
        "max_load",
        "moved",
        "overhead",
        "retr", // retries, retry_amplification
        "shed",
        "drop",
        "saturated",
        "duplicate",
        "latency",
        "ns_per_round",
        "nanos",
        "wall_ms",
        "p50",
        "p99",
        "p999",
        "mean",
        ".max",
        "envelope",
        "bound", // theorem bounds: growing bound = weaker guarantee surface
    ];
    let lname = name.to_ascii_lowercase();
    if HIGHER.iter().any(|pat| lname.contains(pat)) {
        return Direction::HigherIsBetter;
    }
    if LOWER.iter().any(|pat| lname.contains(pat)) {
        return Direction::LowerIsBetter;
    }
    Direction::StayClose
}

/// Gate configuration: threshold plus the noisy opt-out list.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Maximum allowed fractional move in the bad direction.
    pub threshold: f64,
    /// Metric-name substrings excluded from gating (reported as
    /// [`GateStatus::Noisy`], never failed).
    pub noisy: Vec<String>,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            threshold: DEFAULT_THRESHOLD,
            noisy: DEFAULT_NOISY.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl GateConfig {
    /// Whether `metric` matches the noisy opt-out list.
    pub fn is_noisy(&self, metric: &str) -> bool {
        let lname = metric.to_ascii_lowercase();
        self.noisy.iter().any(|pat| lname.contains(pat.as_str()))
    }
}

/// Verdict for one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within threshold (or moved in the good direction).
    Pass,
    /// Moved past the threshold in the bad direction.
    Fail,
    /// On the noisy opt-out list; compared for the report but exempt.
    Noisy,
    /// Present in only one of the two runs.
    Missing,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Dotted-path metric name.
    pub metric: String,
    /// Baseline value (`None` when missing from the baseline).
    pub baseline: Option<f64>,
    /// Fresh value (`None` when missing from the fresh run).
    pub fresh: Option<f64>,
    /// Signed fractional change `(fresh - baseline) / |baseline|`
    /// (`None` when either side is missing or the baseline is 0).
    pub delta: Option<f64>,
    /// Inferred direction used for the verdict.
    pub direction: Direction,
    /// The verdict.
    pub status: GateStatus,
}

/// Result of gating one fresh run against one baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Human label for what was compared (benchmark + config hash).
    pub label: String,
    /// Every compared metric, in baseline order.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// Metrics that failed the gate.
    pub fn failures(&self) -> impl Iterator<Item = &GateCheck> {
        self.checks.iter().filter(|c| c.status == GateStatus::Fail)
    }

    /// Whether the gate passed (no failures).
    pub fn passed(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Metric names that were exempted as noisy.
    pub fn noisy_metrics(&self) -> impl Iterator<Item = &str> {
        self.checks
            .iter()
            .filter(|c| c.status == GateStatus::Noisy)
            .map(|c| c.metric.as_str())
    }
}

/// Compares `fresh` against `baseline` under `config`. Metrics are
/// matched by exact dotted-path name; a metric present on only one side
/// is reported as [`GateStatus::Missing`] (not a failure — schema drift
/// is surfaced, gated values are judged).
pub fn compare(
    label: &str,
    baseline: &[(String, f64)],
    fresh: &[(String, f64)],
    config: &GateConfig,
) -> GateReport {
    let fresh_value = |name: &str| fresh.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let mut checks = Vec::new();
    for (name, base) in baseline {
        let direction = direction_for(name);
        let fresh = fresh_value(name);
        let delta = fresh.and_then(|f| (*base != 0.0).then(|| (f - *base) / base.abs()));
        let status = if fresh.is_none() {
            GateStatus::Missing
        } else if config.is_noisy(name) {
            GateStatus::Noisy
        } else {
            let bad = match (direction, delta) {
                // Zero baseline with a nonzero fresh value on a gated
                // metric: treat any appearance of a lower-is-better
                // quantity (e.g. drops going 0 → 5) as a regression.
                (Direction::LowerIsBetter, None) => fresh.is_some_and(|f| f > 0.0 && *base == 0.0),
                (Direction::LowerIsBetter, Some(d)) => d > config.threshold,
                (Direction::HigherIsBetter, Some(d)) => d < -config.threshold,
                (Direction::HigherIsBetter, None) => false,
                (Direction::StayClose, Some(d)) => d.abs() > config.threshold,
                (Direction::StayClose, None) => false,
            };
            if bad {
                GateStatus::Fail
            } else {
                GateStatus::Pass
            }
        };
        checks.push(GateCheck {
            metric: name.clone(),
            baseline: Some(*base),
            fresh,
            delta,
            direction,
            status,
        });
    }
    for (name, value) in fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            checks.push(GateCheck {
                metric: name.clone(),
                baseline: None,
                fresh: Some(*value),
                delta: None,
                direction: direction_for(name),
                status: GateStatus::Missing,
            });
        }
    }
    GateReport {
        label: label.to_string(),
        checks,
    }
}

/// How the fresh runs were gated: the reports that ran, plus the labels
/// of runs that passed vacuously (no baseline shares their config hash).
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// One report per fresh run that had a comparable baseline.
    pub gates: Vec<GateReport>,
    /// Fresh runs with no matching-hash baseline (first run on a new
    /// configuration): listed, never failed.
    pub vacuous: Vec<String>,
}

impl GateOutcome {
    /// Whether every gated run passed.
    pub fn passed(&self) -> bool {
        self.gates.iter().all(GateReport::passed)
    }
}

/// Gates each fresh run (by identity hash) against its baseline: the
/// committed benchmark file when it shares the run's config hash,
/// otherwise the newest prior registry record with that hash, otherwise
/// vacuous. Quick-mode runs are therefore never judged against
/// full-scale committed baselines — configs must match to be compared.
pub fn gate_fresh_runs(
    registry: &crate::registry::RunRegistry,
    bench: &[crate::bench_data::BenchFile],
    fresh_identities: &[String],
    config: &GateConfig,
) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    for identity in fresh_identities {
        let Some(record) = registry
            .records()
            .iter()
            .find(|r| &r.identity_hash() == identity)
        else {
            continue;
        };
        let label = format!("{} {}", record.benchmark, record.config_hash);
        let committed = bench.iter().find(|b| {
            b.benchmark == record.benchmark
                && b.config_hash.as_deref() == Some(record.config_hash.as_str())
        });
        if let Some(bf) = committed {
            outcome.gates.push(compare(
                &format!("{label} (vs committed {})", bf.path.display()),
                &bf.metrics,
                &record.metrics,
                config,
            ));
        } else if let Some(prior) =
            registry.latest_for(&record.benchmark, &record.config_hash, Some(identity))
        {
            outcome.gates.push(compare(
                &format!("{label} (vs registry run @{})", prior.unix_time),
                &prior.metrics,
                &record.metrics,
                config,
            ));
        } else {
            outcome.vacuous.push(label);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn directions_are_inferred_from_names() {
        assert_eq!(
            direction_for("cells.0.arena_speedup"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_for("goodput_retained"), Direction::HigherIsBetter);
        assert_eq!(direction_for("rows.3.avg_wait"), Direction::LowerIsBetter);
        assert_eq!(
            direction_for("cells.0.overhead_percent"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_for("router.events.0.bounded_load_moved"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_for("server.batch"), Direction::StayClose);
    }

    #[test]
    fn artificial_regression_past_threshold_fails_the_gate() {
        let baseline = metrics(&[
            ("cells.0.arena_speedup", 3.0),
            ("rows.0.avg_wait", 2.0),
            ("goodput_retained", 0.8),
        ]);
        // 30% speedup loss: well past the default 15%.
        let regressed = metrics(&[
            ("cells.0.arena_speedup", 2.1),
            ("rows.0.avg_wait", 2.0),
            ("goodput_retained", 0.8),
        ]);
        let report = compare("test", &baseline, &regressed, &GateConfig::default());
        assert!(!report.passed());
        let failed: Vec<&str> = report.failures().map(|c| c.metric.as_str()).collect();
        assert_eq!(failed, ["cells.0.arena_speedup"]);

        // The same values inside the threshold pass.
        let ok = metrics(&[
            ("cells.0.arena_speedup", 2.7),
            ("rows.0.avg_wait", 2.2),
            ("goodput_retained", 0.75),
        ]);
        assert!(compare("test", &baseline, &ok, &GateConfig::default()).passed());

        // Lower-is-better regressions fail too.
        let slow = metrics(&[
            ("cells.0.arena_speedup", 3.0),
            ("rows.0.avg_wait", 2.5),
            ("goodput_retained", 0.8),
        ]);
        assert!(!compare("test", &baseline, &slow, &GateConfig::default()).passed());
    }

    #[test]
    fn noisy_metrics_are_exempt_but_reported() {
        let baseline = metrics(&[("cells.0.arena.median_ns_per_round", 1.0e6)]);
        let much_slower = metrics(&[("cells.0.arena.median_ns_per_round", 9.0e6)]);
        let report = compare("t", &baseline, &much_slower, &GateConfig::default());
        assert!(report.passed());
        assert_eq!(
            report.noisy_metrics().collect::<Vec<_>>(),
            ["cells.0.arena.median_ns_per_round"]
        );
        // Taken off the opt-out list, the same move fails.
        let strict = GateConfig {
            noisy: vec![],
            ..GateConfig::default()
        };
        assert!(!compare("t", &baseline, &much_slower, &strict).passed());
    }

    #[test]
    fn zero_baseline_counts_regress_when_they_appear() {
        let baseline = metrics(&[("chaos.slow_consumer_drops", 0.0)]);
        let fresh = metrics(&[("chaos.slow_consumer_drops", 4.0)]);
        assert!(!compare("t", &baseline, &fresh, &GateConfig::default()).passed());
        assert!(compare("t", &baseline, &baseline, &GateConfig::default()).passed());
    }

    #[test]
    fn schema_drift_is_missing_not_failed() {
        let baseline = metrics(&[("a", 1.0), ("gone", 2.0)]);
        let fresh = metrics(&[("a", 1.0), ("added", 3.0)]);
        let report = compare("t", &baseline, &fresh, &GateConfig::default());
        assert!(report.passed());
        let missing: Vec<&str> = report
            .checks
            .iter()
            .filter(|c| c.status == GateStatus::Missing)
            .map(|c| c.metric.as_str())
            .collect();
        assert_eq!(missing, ["gone", "added"]);
    }
}
