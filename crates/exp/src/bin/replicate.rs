//! One-command replication through the experiment registry.
//!
//! ```text
//! cargo run --release -p iba-exp --bin replicate -- --quick --check
//! ```
//!
//! Re-runs the quick paper replication sweep plus all five committed
//! benchmark harnesses as subprocesses (each asserts its own
//! self-validation and appends a provenance-stamped record to the
//! registry), then renders the static `report.html` and — with
//! `--check` — gates every fresh run against the last baseline that
//! shares its config hash, exiting nonzero past the threshold.
//!
//! `--stamp-baselines` instead injects a provenance block (schema
//! version, git rev, host, config hash) into the five committed
//! `BENCH_*.json` files, preserving their hand formatting, and exits.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use iba_analysis::bounds;
use iba_exp::bench_data::{config_pairs, provenance_json_with_hash, sweep_config_pairs, BenchFile};
use iba_exp::gate::{gate_fresh_runs, GateConfig, GateOutcome, DEFAULT_THRESHOLD};
use iba_exp::registry::{identity_hash, unix_time_now, RunRegistry};
use iba_exp::report::{render_html, ReportInput, SweepPoint};
use iba_obs::json::{self, content_hash, JsonValue, Provenance};

/// The committed baselines, harness binary first, output file second,
/// then the flag sets for quick and full replication.
const HARNESSES: &[(&str, &str, &[&str], &[&str])] = &[
    (
        "round_kernel_baseline",
        "BENCH_round_kernel.json",
        &["--quick"],
        &[],
    ),
    (
        "obs_overhead_baseline",
        "BENCH_obs_overhead.json",
        &["--quick"],
        &[],
    ),
    (
        "serve_net_baseline",
        "BENCH_serve_net.json",
        &["--quick"],
        &[],
    ),
    ("net_chaos_baseline", "BENCH_net_chaos.json", &["--ci"], &[]),
    (
        "membership_baseline",
        "BENCH_membership.json",
        &["--ci"],
        &[],
    ),
];

#[derive(Debug)]
struct Options {
    full: bool,
    check: bool,
    out: PathBuf,
    registry: Option<PathBuf>,
    report: Option<PathBuf>,
    threshold: f64,
    stamp_baselines: bool,
    force: bool,
    report_only: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        full: false,
        check: false,
        out: PathBuf::from("results_replication"),
        registry: None,
        report: None,
        threshold: DEFAULT_THRESHOLD,
        stamp_baselines: false,
        force: false,
        report_only: false,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--quick" => opts.full = false,
            "--full" => opts.full = true,
            "--check" => opts.check = true,
            "--out" => opts.out = PathBuf::from(value(&mut iter)?),
            "--registry" => opts.registry = Some(PathBuf::from(value(&mut iter)?)),
            "--report" => opts.report = Some(PathBuf::from(value(&mut iter)?)),
            "--threshold" => {
                opts.threshold = value(&mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?;
            }
            "--stamp-baselines" => opts.stamp_baselines = true,
            "--force" => opts.force = true,
            "--report-only" => opts.report_only = true,
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: replicate [--quick|--full] [--check] \
                     [--out DIR] [--registry PATH] [--report PATH] [--threshold F] \
                     [--report-only] [--stamp-baselines [--force]]"
                ));
            }
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the workspace root (the
/// directory holding the committed `BENCH_*.json` baselines).
fn find_repo_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        if dir.join("BENCH_round_kernel.json").is_file() && dir.join("Cargo.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(
                "cannot find the workspace root (no BENCH_round_kernel.json above cwd)".into(),
            );
        }
    }
}

fn load_committed(root: &Path) -> Result<Vec<BenchFile>, String> {
    HARNESSES
        .iter()
        .map(|(_, file, _, _)| BenchFile::load(&root.join(file)))
        .collect()
}

/// Injects a provenance block after the top-level `"seed"` line of a
/// committed baseline, preserving the file's hand formatting.
fn stamp_file(path: &Path, force: bool) -> Result<bool, String> {
    let bf = BenchFile::load(path)?;
    if bf.provenance.is_some() && !force {
        eprintln!(
            "{}: already stamped (use --force to restamp)",
            path.display()
        );
        return Ok(false);
    }
    let pairs = config_pairs(&bf.benchmark, &bf.value)
        .ok_or_else(|| format!("{}: cannot derive config pairs", path.display()))?;
    let hash = content_hash(&pairs);
    let block = provenance_json_with_hash(&Provenance::collect(), &hash);
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let text = if bf.provenance.is_some() {
        // Restamp: replace the existing single-line provenance field.
        let start = text
            .find("\n  \"provenance\":")
            .ok_or_else(|| format!("{}: provenance block is not a stamped line", path.display()))?;
        let line_end = text[start + 1..]
            .find('\n')
            .map(|i| start + 1 + i)
            .unwrap_or(text.len());
        format!(
            "{}\n  \"provenance\": {block},{}",
            &text[..start],
            &text[line_end..]
        )
    } else {
        let anchor = text
            .find("\n  \"seed\":")
            .ok_or_else(|| format!("{}: no top-level seed line to anchor on", path.display()))?;
        let line_end = anchor
            + 1
            + text[anchor + 1..]
                .find('\n')
                .ok_or_else(|| format!("{}: truncated file", path.display()))?;
        format!(
            "{}\n  \"provenance\": {block},{}",
            &text[..line_end],
            &text[line_end..]
        )
    };
    // The stamped file must still parse, and the embedded hash must match
    // what a loader recomputes from the document.
    std::fs::write(path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
    let stamped = BenchFile::load(path)?;
    if stamped.computed_config_hash().as_deref() != Some(hash.as_str()) {
        return Err(format!(
            "{}: stamped hash does not recompute",
            path.display()
        ));
    }
    println!("stamped {} ({hash})", path.display());
    Ok(true)
}

/// Runs one cargo subprocess from the workspace root, inheriting stdio.
fn run_cargo(root: &Path, args: &[String]) -> Result<(), String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    eprintln!("replicate> {cargo} {}", args.join(" "));
    let status = Command::new(&cargo)
        .args(args)
        .current_dir(root)
        .status()
        .map_err(|e| format!("spawning {cargo}: {e}"))?;
    if !status.success() {
        return Err(format!("`{cargo} {}` failed: {status}", args.join(" ")));
    }
    Ok(())
}

/// The quick/full sweep grid. Must stay in lockstep with the flags
/// passed to the sweep binary below — both feed [`sweep_config_pairs`].
struct SweepPlan {
    n: u64,
    capacities: Vec<u32>,
    lambdas: Vec<f64>,
    window: u64,
    seeds: u64,
    master_seed: u64,
}

impl SweepPlan {
    fn for_mode(full: bool) -> SweepPlan {
        SweepPlan {
            n: if full { 8192 } else { 2048 },
            capacities: vec![1, 2, 4],
            lambdas: vec![0.75, 0.9375],
            window: if full { 600 } else { 150 },
            seeds: if full { 3 } else { 1 },
            master_seed: 20210705,
        }
    }

    fn config_hash(&self) -> String {
        content_hash(&sweep_config_pairs(
            self.n,
            &self.capacities,
            &self.lambdas,
            self.window,
            self.seeds,
            self.master_seed,
        ))
    }

    fn sweep_args(&self, jsonl: &Path, registry: &Path) -> Vec<String> {
        let join = |v: Vec<String>| v.join(",");
        vec![
            "run".into(),
            "--release".into(),
            "-p".into(),
            "iba-bench".into(),
            "--bin".into(),
            "sweep".into(),
            "--".into(),
            "--n".into(),
            self.n.to_string(),
            "--c".into(),
            join(self.capacities.iter().map(|c| c.to_string()).collect()),
            "--lambda".into(),
            join(self.lambdas.iter().map(|l| l.to_string()).collect()),
            "--window".into(),
            self.window.to_string(),
            "--seeds".into(),
            self.seeds.to_string(),
            "--seed".into(),
            self.master_seed.to_string(),
            "--jsonl".into(),
            jsonl.display().to_string(),
            "--registry".into(),
            registry.display().to_string(),
        ]
    }
}

/// Parses the sweep's JSONL table into overlay points, asserting the
/// sweep's own Theorem-2 self-validation (`bound ok`) on every row.
fn parse_sweep_rows(jsonl_path: &Path, n: u64) -> Result<Vec<SweepPoint>, String> {
    let text = std::fs::read_to_string(jsonl_path)
        .map_err(|e| format!("cannot read {}: {e}", jsonl_path.display()))?;
    let mut points = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |what: &str| format!("{} line {}: {what}", jsonl_path.display(), lineno + 1);
        let v = json::parse(line).map_err(|e| fail(&format!("bad JSON: {e}")))?;
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| fail(&format!("missing numeric '{key}'")))
        };
        let lambda: f64 = v
            .get("lambda")
            .and_then(JsonValue::as_str)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| fail("missing 'lambda'"))?;
        let c = num("c")?;
        if v.get("bound ok").and_then(JsonValue::as_str) != Some("yes") {
            return Err(fail(&format!(
                "sweep self-validation failed: max wait exceeds the Theorem-2 bound \
                 at c={c}, lambda={lambda}"
            )));
        }
        points.push(SweepPoint {
            lambda,
            c,
            pool_frac: num("pool/n")?,
            mf_pool_frac: num("mf pool/n")?,
            bound_frac: bounds::theorem2_pool_bound(n as usize, c as u32, lambda) / n as f64,
            avg_wait: num("avg wait")?,
            max_wait: num("max wait")?,
            wait_envelope: num("wait envelope")?,
            wait_bound: num("thm2 bound")?,
        });
    }
    if points.is_empty() {
        return Err(format!("{}: no sweep rows", jsonl_path.display()));
    }
    Ok(points)
}

/// The identity a fresh stamped benchmark file's registry record will
/// have (same formula as `RunRecord::identity_hash`).
fn identity_of_fresh(bf: &BenchFile) -> Option<String> {
    let prov = bf.provenance.as_ref()?;
    let hash = bf.config_hash.as_deref()?;
    let seed = bf.value.get("seed").and_then(JsonValue::as_u64)?;
    Some(identity_hash(
        &bf.benchmark,
        hash,
        seed,
        &prov.git_rev,
        prov.git_dirty,
    ))
}

fn run(opts: &Options) -> Result<bool, String> {
    let root = find_repo_root()?;
    let out_dir = if opts.out.is_absolute() {
        opts.out.clone()
    } else {
        root.join(&opts.out)
    };
    let registry_path = opts
        .registry
        .clone()
        .unwrap_or_else(|| out_dir.join("registry.jsonl"));
    let report_path = opts
        .report
        .clone()
        .unwrap_or_else(|| out_dir.join("report.html"));
    let fresh_dir = out_dir.join("fresh");
    std::fs::create_dir_all(&fresh_dir)
        .map_err(|e| format!("cannot create {}: {e}", fresh_dir.display()))?;

    if opts.stamp_baselines {
        let mut stamped = 0;
        for (_, file, _, _) in HARNESSES {
            if stamp_file(&root.join(file), opts.force)? {
                stamped += 1;
            }
        }
        println!("stamped {stamped} baseline file(s)");
        return Ok(true);
    }

    let plan = SweepPlan::for_mode(opts.full);
    let sweep_jsonl = out_dir.join("sweep.jsonl");
    let mut fresh_identities: Vec<String> = Vec::new();

    if !opts.report_only {
        // 1. The paper-replication sweep (the sweep binary validates its
        //    own Theorem-2 bound per cell and records itself).
        run_cargo(&root, &plan.sweep_args(&sweep_jsonl, &registry_path))?;

        // 2. The five benchmark harnesses; each asserts its own
        //    self-validation (nonzero exit aborts the replication) and
        //    appends its provenance-stamped record to the registry.
        for (bin, file, quick_flags, full_flags) in HARNESSES {
            let mut args: Vec<String> = vec![
                "run".into(),
                "--release".into(),
                "-p".into(),
                "iba-bench".into(),
                "--bin".into(),
                (*bin).into(),
                "--".into(),
            ];
            let mode_flags = if opts.full { full_flags } else { quick_flags };
            args.extend(mode_flags.iter().map(|f| f.to_string()));
            let fresh_out = fresh_dir.join(file);
            args.push("--out".into());
            args.push(fresh_out.display().to_string());
            args.push("--registry".into());
            args.push(registry_path.display().to_string());
            run_cargo(&root, &args)?;
            let fresh = BenchFile::load(&fresh_out)?;
            fresh_identities.push(identity_of_fresh(&fresh).ok_or_else(|| {
                format!(
                    "{}: fresh output is missing its provenance stamp",
                    fresh_out.display()
                )
            })?);
        }
    }

    // The sweep's fresh identity is computable without its output file:
    // replicate chose the grid, and both sides hash it through
    // sweep_config_pairs.
    let sweep_prov = Provenance::collect();
    if !opts.report_only {
        fresh_identities.push(identity_hash(
            "sweep",
            &plan.config_hash(),
            plan.master_seed,
            &sweep_prov.git_rev,
            sweep_prov.git_dirty,
        ));
    }

    // 3. Gate + report.
    let committed = load_committed(&root)?;
    let registry = RunRegistry::open(&registry_path).map_err(|e| e.to_string())?;
    let gate_config = GateConfig {
        threshold: opts.threshold,
        ..GateConfig::default()
    };
    let outcome: GateOutcome =
        gate_fresh_runs(&registry, &committed, &fresh_identities, &gate_config);
    for label in &outcome.vacuous {
        eprintln!(
            "gate: {label} has no baseline with a matching config hash — \
             vacuous pass (the next run on this configuration will be gated)"
        );
    }
    for gate in &outcome.gates {
        let failures: Vec<String> = gate
            .failures()
            .map(|c| {
                format!(
                    "{} {:.6} -> {:.6} ({:+.1}%)",
                    c.metric,
                    c.baseline.unwrap_or(f64::NAN),
                    c.fresh.unwrap_or(f64::NAN),
                    c.delta.unwrap_or(f64::NAN) * 100.0
                )
            })
            .collect();
        if failures.is_empty() {
            eprintln!("gate: {} PASS", gate.label);
        } else {
            eprintln!("gate: {} FAIL: {}", gate.label, failures.join("; "));
        }
    }

    let sweep_points = if sweep_jsonl.is_file() {
        parse_sweep_rows(&sweep_jsonl, plan.n)?
    } else {
        Vec::new()
    };
    let input = ReportInput {
        generated_unix: unix_time_now(),
        bench: committed,
        registry: registry.records().to_vec(),
        sweep: sweep_points,
        gates: outcome.gates.clone(),
    };
    std::fs::write(&report_path, render_html(&input))
        .map_err(|e| format!("cannot write {}: {e}", report_path.display()))?;
    println!(
        "replication report: {} ({} registry record(s))",
        report_path.display(),
        registry.records().len()
    );
    Ok(outcome.passed())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            if opts.check {
                eprintln!("replicate --check: regression gate FAILED");
                ExitCode::FAILURE
            } else {
                eprintln!("regression gate failed (informational; pass --check to enforce)");
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("replicate: {msg}");
            ExitCode::FAILURE
        }
    }
}
