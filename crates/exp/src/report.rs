//! The static HTML regression report.
//!
//! One self-contained `report.html`: no scripts, no external assets, all
//! charts inline SVG — it must render from `file://` in CI artifact
//! viewers. Sections: run provenance table, per-benchmark performance
//! trajectories (each metric normalised to its committed baseline),
//! bound-vs-measured overlays (pool occupancy vs the paper's Theorem 1
//! bound, wait quantiles vs the predicted envelope, goodput under
//! chaos), and the regression-gate verdicts including the explicit
//! noisy-metric opt-out list.

use crate::bench_data::BenchFile;
use crate::gate::{GateReport, GateStatus};
use crate::registry::RunRecord;
use crate::svg::{bar_chart, line_chart, Series};

use std::fmt::Write as _;

/// One sweep measurement used by the bound-vs-measured overlays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Capacity c.
    pub c: f64,
    /// Measured stationary pool fraction (pool/n).
    pub pool_frac: f64,
    /// Mean-field predicted pool fraction.
    pub mf_pool_frac: f64,
    /// Theorem-1 finite-capacity pool bound, as a fraction of n.
    pub bound_frac: f64,
    /// Measured mean wait (rounds).
    pub avg_wait: f64,
    /// Measured maximum wait (rounds).
    pub max_wait: f64,
    /// Predicted wait envelope (rounds).
    pub wait_envelope: f64,
    /// Theorem-2 waiting-time bound (rounds).
    pub wait_bound: f64,
}

/// Everything the report renders from.
#[derive(Debug, Clone, Default)]
pub struct ReportInput {
    /// Seconds since the epoch when the report was generated.
    pub generated_unix: u64,
    /// The committed `BENCH_*.json` baselines.
    pub bench: Vec<BenchFile>,
    /// All registry records (committed history plus fresh runs).
    pub registry: Vec<RunRecord>,
    /// Sweep measurements for the overlays (empty ⇒ overlay section
    /// renders a placeholder note instead of charts).
    pub sweep: Vec<SweepPoint>,
    /// Gate verdicts, one per compared run.
    pub gates: Vec<GateReport>,
}

/// The benchmark's headline trajectory metrics (scale-free ratios and
/// structural fractions — the values worth eyeballing across PRs).
fn headline_metrics(benchmark: &str) -> &'static [&'static str] {
    match benchmark {
        "round_kernel" => &[
            "cells.0.arena_speedup",
            "cells.1.arena_speedup",
            "cells.2.arena_speedup",
            "cells.0.simd_speedup",
            "cells.0.parallel_speedup",
        ],
        "obs_overhead" => &["cells.0.overhead_percent"],
        "serve_net" => &["accepted_per_sec", "admission_latency_us.p99"],
        "net_chaos" => &[
            "goodput_retained",
            "chaos.retry_amplification",
            "calm.goodput_per_sec",
        ],
        "membership" => &["router.total_moved_ratio", "gauntlet.balls_moved"],
        _ => &[],
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn short_hash(h: &str) -> String {
    let tail = h.strip_prefix("fnv1a:").unwrap_or(h);
    tail.chars().take(12).collect()
}

fn short_rev(rev: &str) -> String {
    rev.chars().take(12).collect()
}

const STYLE: &str = "\
body{font:15px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:72rem;padding:0 1rem;color:#1a1a1a}\
h1{font-size:1.6rem}h2{font-size:1.2rem;margin-top:2.2rem;border-bottom:1px solid #ccc}\
table{border-collapse:collapse;font-size:13px;margin:0.8rem 0}\
th,td{border:1px solid #ccc;padding:3px 8px;text-align:left}\
th{background:#f2f2f2}\
td.num{text-align:right;font-variant-numeric:tabular-nums}\
.pass{color:#007040}.fail{color:#b00020;font-weight:600}.noisy{color:#806000}.missing{color:#666}\
.chart{max-width:640px;display:block;margin:0.6rem 0;background:#fff}\
.chart .title{font-size:14px;font-weight:600}\
.chart .tick{font-size:10px;fill:#333}\
.chart .axis{font-size:12px;fill:#111}\
.chart .grid{stroke:#e4e4e4}\
.note{color:#555;font-size:13px}\
code{background:#f4f4f4;padding:0 3px}";

/// Renders the full report document.
pub fn render_html(input: &ReportInput) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>iba experiment report</title><style>{STYLE}</style></head><body>\
         <h1>Infinite Balanced Allocation — experiment report</h1>\
         <p class=\"note\">Generated at unix time {}. Replicate with \
         <code>cargo run --release -p iba-exp --bin replicate -- --quick --check</code>.</p>",
        input.generated_unix
    );
    render_provenance_table(&mut out, input);
    render_trajectories(&mut out, input);
    render_overlays(&mut out, input);
    render_gates(&mut out, input);
    out.push_str("</body></html>");
    out
}

fn render_provenance_table(out: &mut String, input: &ReportInput) {
    out.push_str(
        "<h2 id=\"provenance\">Run provenance</h2>\
         <table><tr><th>source</th><th>benchmark</th><th>config hash</th><th>seed</th>\
         <th>git rev</th><th>dirty</th><th>host</th><th>cores</th><th>kernel</th>\
         <th>threads</th><th>wall ms</th><th>unix time</th></tr>",
    );
    for bf in &input.bench {
        let (rev, dirty, host, cores, kernel, threads) = match &bf.provenance {
            Some(p) => (
                short_rev(&p.git_rev),
                p.git_dirty.to_string(),
                p.host.clone(),
                p.cores.to_string(),
                p.kernel.clone().unwrap_or_default(),
                p.threads.map(|t| t.to_string()).unwrap_or_default(),
            ),
            None => (
                "unstamped".to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
        };
        let _ = write!(
            out,
            "<tr><td>committed</td><td>{}</td><td><code>{}</code></td><td></td>\
             <td><code>{}</code></td><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
             <td>{}</td><td class=\"num\">{}</td><td></td><td></td></tr>",
            esc(&bf.benchmark),
            esc(&bf
                .config_hash
                .as_deref()
                .map(short_hash)
                .unwrap_or_default()),
            esc(&rev),
            dirty,
            esc(&host),
            cores,
            esc(&kernel),
            threads,
        );
    }
    for r in &input.registry {
        let p = &r.provenance;
        let _ = write!(
            out,
            "<tr><td>registry</td><td>{}</td><td><code>{}</code></td><td class=\"num\">{}</td>\
             <td><code>{}</code></td><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
             <td>{}</td><td class=\"num\">{}</td><td class=\"num\">{:.0}</td>\
             <td class=\"num\">{}</td></tr>",
            esc(&r.benchmark),
            short_hash(&r.config_hash),
            r.seed,
            short_rev(&p.git_rev),
            p.git_dirty,
            esc(&p.host),
            p.cores,
            esc(p.kernel.as_deref().unwrap_or("")),
            p.threads.map(|t| t.to_string()).unwrap_or_default(),
            r.wall_ms,
            r.unix_time,
        );
    }
    out.push_str("</table>");
}

fn render_trajectories(out: &mut String, input: &ReportInput) {
    out.push_str(
        "<h2 id=\"trajectory\">Performance trajectory</h2>\
         <p class=\"note\">Each headline metric normalised to its committed baseline \
         (run 0). Registry runs follow in time order; a flat line at 1.0 is a \
         perfectly reproduced baseline.</p>",
    );
    for bf in &input.bench {
        let mut runs: Vec<&RunRecord> = input
            .registry
            .iter()
            .filter(|r| r.benchmark == bf.benchmark)
            .collect();
        runs.sort_by_key(|r| r.unix_time);
        let names: Vec<&str> = {
            let selected = headline_metrics(&bf.benchmark);
            if selected.is_empty() {
                bf.metrics.iter().take(3).map(|(n, _)| n.as_str()).collect()
            } else {
                selected.to_vec()
            }
        };
        let mut series = Vec::new();
        for name in names {
            let base = match bf.metrics.iter().find(|(n, _)| n == name) {
                Some((_, v)) if *v != 0.0 => *v,
                _ => continue,
            };
            let mut points = vec![(0.0, 1.0)];
            for (i, run) in runs.iter().enumerate() {
                if let Some(v) = run.metric(name) {
                    points.push(((i + 1) as f64, v / base));
                }
            }
            series.push(Series::solid(name, points));
        }
        let _ = write!(
            out,
            "<div id=\"trajectory-{}\">{}</div>",
            esc(&bf.benchmark),
            line_chart(
                &format!("{} — trajectory vs committed baseline", bf.benchmark),
                "run (0 = committed baseline)",
                "metric / baseline",
                &series,
            )
        );
    }
}

fn render_overlays(out: &mut String, input: &ReportInput) {
    out.push_str("<h2 id=\"overlays\">Bound vs measured</h2>");
    if input.sweep.is_empty() {
        out.push_str(
            "<p class=\"note\">No sweep data in this run — pool and wait overlays \
             need a replication sweep (<code>replicate --quick</code>).</p>",
        );
    } else {
        // Pool occupancy vs the Theorem-1 finite-capacity bound, one
        // measured + dashed prediction/bound series per capacity c. The
        // bound is Θ(n) (it has a 12·c·n term) while the measured pool is
        // a small fraction of n, so the overlay lives on a log10 axis —
        // both visible, gap honest.
        let log10 = |v: f64| v.max(1.0e-9).log10();
        let mut cs: Vec<f64> = input.sweep.iter().map(|p| p.c).collect();
        cs.sort_by(f64::total_cmp);
        cs.dedup();
        let sorted_for = |c: f64, f: &dyn Fn(&SweepPoint) -> f64| -> Vec<(f64, f64)> {
            let mut v: Vec<(f64, f64)> = input
                .sweep
                .iter()
                .filter(|p| p.c == c)
                .map(|p| (p.lambda, f(p)))
                .collect();
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            v
        };
        let mut series = Vec::new();
        for c in &cs {
            series.push(Series::solid(
                &format!("measured c={c}"),
                sorted_for(*c, &|p| log10(p.pool_frac)),
            ));
            series.push(Series::dashed(
                &format!("mean-field c={c}"),
                sorted_for(*c, &|p| log10(p.mf_pool_frac)),
            ));
            series.push(Series::dashed(
                &format!("Thm 1 bound c={c}"),
                sorted_for(*c, &|p| log10(p.bound_frac)),
            ));
        }
        let _ = write!(
            out,
            "<div id=\"overlay-pool-bound\">{}</div>",
            line_chart(
                "Stationary pool occupancy vs Theorem 1 bound",
                "lambda",
                "log10(pool / n)",
                &series,
            )
        );
        let mut wait_series = Vec::new();
        for c in &cs {
            wait_series.push(Series::solid(
                &format!("avg wait c={c}"),
                sorted_for(*c, &|p| p.avg_wait),
            ));
            wait_series.push(Series::solid(
                &format!("max wait c={c}"),
                sorted_for(*c, &|p| p.max_wait),
            ));
            wait_series.push(Series::dashed(
                &format!("envelope c={c}"),
                sorted_for(*c, &|p| p.wait_envelope),
            ));
            wait_series.push(Series::dashed(
                &format!("Thm 2 bound c={c}"),
                sorted_for(*c, &|p| p.wait_bound),
            ));
        }
        let _ = write!(
            out,
            "<div id=\"overlay-wait-quantiles\">{}</div>",
            line_chart(
                "Wait quantiles vs predicted envelope",
                "lambda",
                "wait (rounds)",
                &wait_series,
            )
        );
    }
    // Goodput under chaos: committed baseline vs fresh registry runs.
    let mut groups = Vec::new();
    if let Some(bf) = input.bench.iter().find(|b| b.benchmark == "net_chaos") {
        let get = |name: &str| {
            bf.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        groups.push((
            "committed".to_string(),
            vec![get("calm.goodput_per_sec"), get("chaos.goodput_per_sec")],
        ));
    }
    let mut chaos_runs: Vec<&RunRecord> = input
        .registry
        .iter()
        .filter(|r| r.benchmark == "net_chaos")
        .collect();
    chaos_runs.sort_by_key(|r| r.unix_time);
    for r in chaos_runs {
        groups.push((
            format!("run @{}", short_rev(&r.provenance.git_rev)),
            vec![
                r.metric("calm.goodput_per_sec").unwrap_or(0.0),
                r.metric("chaos.goodput_per_sec").unwrap_or(0.0),
            ],
        ));
    }
    if !groups.is_empty() {
        let _ = write!(
            out,
            "<div id=\"overlay-goodput-chaos\">{}</div>",
            bar_chart(
                "Goodput: calm vs chaos",
                "requests / s",
                &["calm", "chaos"],
                &groups,
            )
        );
    }
}

fn render_gates(out: &mut String, input: &ReportInput) {
    out.push_str("<h2 id=\"gate\">Regression gate</h2>");
    if input.gates.is_empty() {
        out.push_str(
            "<p class=\"note\">No gate comparisons ran (no prior record shares a \
             config hash with this run — the gate passes vacuously and the next \
             run on this configuration will be gated).</p>",
        );
        return;
    }
    for gate in &input.gates {
        let failures = gate.failures().count();
        let verdict = if gate.passed() {
            "<span class=\"pass\">PASS</span>".to_string()
        } else {
            format!("<span class=\"fail\">FAIL ({failures} metric(s))</span>")
        };
        let _ = write!(out, "<h3>{} — {verdict}</h3>", esc(&gate.label));
        out.push_str(
            "<table><tr><th>metric</th><th>baseline</th><th>fresh</th>\
             <th>delta</th><th>status</th></tr>",
        );
        for check in &gate.checks {
            // Keep the table digestible: list failures, noisy exemptions
            // and schema drift; fold silent passes into the summary row.
            if check.status == GateStatus::Pass {
                continue;
            }
            let (class, word) = match check.status {
                GateStatus::Pass => ("pass", "pass"),
                GateStatus::Fail => ("fail", "FAIL"),
                GateStatus::Noisy => ("noisy", "noisy (exempt)"),
                GateStatus::Missing => ("missing", "missing"),
            };
            let fmt = |v: Option<f64>| v.map(|v| format!("{v:.6}")).unwrap_or_default();
            let _ = write!(
                out,
                "<tr><td><code>{}</code></td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"{class}\">{word}</td></tr>",
                esc(&check.metric),
                fmt(check.baseline),
                fmt(check.fresh),
                check
                    .delta
                    .map(|d| format!("{:+.1}%", d * 100.0))
                    .unwrap_or_default(),
            );
        }
        let passes = gate
            .checks
            .iter()
            .filter(|c| c.status == GateStatus::Pass)
            .count();
        let _ = write!(
            out,
            "<tr><td colspan=\"4\">… and {passes} gated metric(s) within threshold</td>\
             <td class=\"pass\">pass</td></tr></table>",
        );
        let noisy: Vec<&str> = gate.noisy_metrics().collect();
        if !noisy.is_empty() {
            let _ = write!(
                out,
                "<p class=\"note\">Noisy opt-outs (compared, never gated): {}</p>",
                noisy
                    .iter()
                    .map(|n| format!("<code>{}</code>", esc(n)))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{compare, GateConfig};
    use iba_obs::json::{self, Provenance, SCHEMA_VERSION};
    use std::path::PathBuf;

    fn bench_file(benchmark: &str, metrics: &[(&str, f64)]) -> BenchFile {
        BenchFile {
            path: PathBuf::from(format!("BENCH_{benchmark}.json")),
            benchmark: benchmark.to_string(),
            provenance: Some(Provenance {
                schema_version: SCHEMA_VERSION,
                git_rev: "abc123".into(),
                git_dirty: false,
                host: "host".into(),
                cores: 4,
                kernel: None,
                threads: None,
            }),
            config_hash: Some("fnv1a:0123456789abcdef".into()),
            metrics: metrics.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            value: json::parse("{}").unwrap(),
        }
    }

    #[test]
    fn report_contains_all_sections_and_charts() {
        let input = ReportInput {
            generated_unix: 1_750_000_000,
            bench: vec![
                bench_file("round_kernel", &[("cells.0.arena_speedup", 3.0)]),
                bench_file("serve_net", &[("accepted_per_sec", 900_000.0)]),
                bench_file("obs_overhead", &[("cells.0.overhead_percent", 4.4)]),
                bench_file(
                    "net_chaos",
                    &[
                        ("goodput_retained", 0.8),
                        ("calm.goodput_per_sec", 17_000.0),
                        ("chaos.goodput_per_sec", 14_000.0),
                    ],
                ),
                bench_file("membership", &[("router.total_moved_ratio", 0.18)]),
            ],
            registry: vec![],
            sweep: vec![SweepPoint {
                lambda: 0.75,
                c: 2.0,
                pool_frac: 0.01,
                mf_pool_frac: 0.012,
                bound_frac: 26.0,
                avg_wait: 1.2,
                max_wait: 4.0,
                wait_envelope: 6.0,
                wait_bound: 40.0,
            }],
            gates: vec![compare(
                "round_kernel fnv1a:0123",
                &[("cells.0.arena_speedup".to_string(), 3.0)],
                &[("cells.0.arena_speedup".to_string(), 1.0)],
                &GateConfig::default(),
            )],
        };
        let html = render_html(&input);
        for marker in [
            "trajectory-round_kernel",
            "trajectory-serve_net",
            "trajectory-obs_overhead",
            "trajectory-net_chaos",
            "trajectory-membership",
            "overlay-pool-bound",
            "overlay-wait-quantiles",
            "overlay-goodput-chaos",
            "Run provenance",
            "Regression gate",
            "FAIL",
        ] {
            assert!(html.contains(marker), "report missing {marker}");
        }
        assert!(html.starts_with("<!DOCTYPE html>") && html.ends_with("</html>"));
    }

    #[test]
    fn empty_input_still_renders() {
        let html = render_html(&ReportInput::default());
        assert!(html.contains("passes vacuously"));
        assert!(html.contains("need a replication sweep"));
    }
}
