//! Integration tests against the repo's real committed baselines: the
//! report must chart every `BENCH_*.json` trajectory, and the regression
//! gate must fail end-to-end when a baseline cell is artificially
//! regressed past the threshold (the check `replicate --check` turns
//! into a nonzero exit).

use std::path::{Path, PathBuf};

use iba_exp::bench_data::BenchFile;
use iba_exp::gate::{gate_fresh_runs, GateConfig};
use iba_exp::registry::{RunRecord, RunRegistry};
use iba_exp::report::{render_html, ReportInput, SweepPoint};
use iba_obs::json::{Provenance, SCHEMA_VERSION};

const COMMITTED: &[&str] = &[
    "BENCH_round_kernel.json",
    "BENCH_obs_overhead.json",
    "BENCH_serve_net.json",
    "BENCH_net_chaos.json",
    "BENCH_membership.json",
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load_committed() -> Vec<BenchFile> {
    COMMITTED
        .iter()
        .map(|f| BenchFile::load(&repo_root().join(f)).expect(f))
        .collect()
}

fn temp_registry(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iba-exp-itest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("registry.jsonl")
}

fn record(benchmark: &str, config_hash: &str, git_rev: &str, metrics: &[(&str, f64)]) -> RunRecord {
    RunRecord {
        benchmark: benchmark.to_string(),
        config_hash: config_hash.to_string(),
        seed: 20210705,
        provenance: Provenance {
            schema_version: SCHEMA_VERSION,
            git_rev: git_rev.to_string(),
            git_dirty: false,
            host: "itest".to_string(),
            cores: 4,
            kernel: Some("arena".to_string()),
            threads: Some(1),
        },
        wall_ms: 10.0,
        unix_time: if git_rev == "baseline0" {
            1_750_000_000
        } else {
            1_750_001_000
        },
        metrics: metrics.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
    }
}

#[test]
fn report_charts_every_committed_baseline_and_an_overlay() {
    let bench = load_committed();
    assert_eq!(bench.len(), 5);
    let input = ReportInput {
        generated_unix: 1_750_000_000,
        bench,
        registry: vec![],
        sweep: vec![SweepPoint {
            lambda: 0.75,
            c: 2.0,
            pool_frac: 0.008,
            mf_pool_frac: 0.009,
            bound_frac: 26.0,
            avg_wait: 1.1,
            max_wait: 4.0,
            wait_envelope: 6.0,
            wait_bound: 40.0,
        }],
        gates: vec![],
    };
    let html = render_html(&input);
    for marker in [
        "trajectory-round_kernel",
        "trajectory-obs_overhead",
        "trajectory-serve_net",
        "trajectory-net_chaos",
        "trajectory-membership",
        "overlay-pool-bound",
        "overlay-wait-quantiles",
        "overlay-goodput-chaos",
    ] {
        assert!(html.contains(marker), "report missing {marker}");
    }
}

#[test]
fn committed_baselines_are_stamped_with_recomputable_hashes() {
    for bf in load_committed() {
        let prov = bf
            .provenance
            .as_ref()
            .unwrap_or_else(|| panic!("{}: missing provenance stamp", bf.path.display()));
        assert_eq!(prov.schema_version, SCHEMA_VERSION, "{}", bf.path.display());
        assert!(!prov.git_rev.is_empty(), "{}", bf.path.display());
        let embedded = bf
            .config_hash
            .clone()
            .unwrap_or_else(|| panic!("{}: missing config_hash", bf.path.display()));
        assert_eq!(
            bf.computed_config_hash().as_deref(),
            Some(embedded.as_str()),
            "{}: embedded config hash does not recompute from the document",
            bf.path.display()
        );
    }
}

#[test]
fn artificially_regressed_run_fails_the_gate_end_to_end() {
    let path = temp_registry("regressed");
    let mut registry = RunRegistry::open(&path).unwrap();
    let hash = "fnv1a:1111222233334444";
    let baseline = record(
        "round_kernel",
        hash,
        "baseline0",
        &[("cells.0.arena_speedup", 3.0), ("rows.0.avg_wait", 2.0)],
    );
    // 30% speedup loss — twice the default 15% threshold.
    let regressed = record(
        "round_kernel",
        hash,
        "fresh0000",
        &[("cells.0.arena_speedup", 2.1), ("rows.0.avg_wait", 2.0)],
    );
    let fresh_identity = regressed.identity_hash();
    registry.append(baseline).unwrap();
    registry.append(regressed).unwrap();

    let outcome = gate_fresh_runs(&registry, &[], &[fresh_identity], &GateConfig::default());
    assert_eq!(outcome.gates.len(), 1, "expected one gated comparison");
    assert!(
        !outcome.passed(),
        "a 30% speedup regression must fail the gate"
    );
    let failed: Vec<&str> = outcome.gates[0]
        .failures()
        .map(|c| c.metric.as_str())
        .collect();
    assert_eq!(failed, ["cells.0.arena_speedup"]);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn faithful_rerun_passes_and_first_run_is_vacuous() {
    let path = temp_registry("faithful");
    let mut registry = RunRegistry::open(&path).unwrap();
    let hash = "fnv1a:aaaabbbbccccdddd";
    let baseline = record(
        "membership",
        hash,
        "baseline0",
        &[("router.total_moved_ratio", 0.18)],
    );
    // Within the 15% threshold on a lower-is-better metric.
    let close = record(
        "membership",
        hash,
        "fresh0000",
        &[("router.total_moved_ratio", 0.19)],
    );
    let close_identity = close.identity_hash();
    // A run on a configuration nobody has measured before.
    let novel = record(
        "membership",
        "fnv1a:9999000011112222",
        "fresh0000",
        &[("router.total_moved_ratio", 0.5)],
    );
    let novel_identity = novel.identity_hash();
    registry.append(baseline).unwrap();
    registry.append(close).unwrap();
    registry.append(novel).unwrap();

    let outcome = gate_fresh_runs(
        &registry,
        &[],
        &[close_identity, novel_identity],
        &GateConfig::default(),
    );
    assert!(outcome.passed());
    assert_eq!(outcome.gates.len(), 1);
    assert_eq!(outcome.vacuous.len(), 1);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn gate_prefers_committed_baseline_with_matching_hash() {
    let path = temp_registry("committed-pref");
    let mut registry = RunRegistry::open(&path).unwrap();
    let committed = load_committed();
    let bf = committed
        .iter()
        .find(|b| b.benchmark == "net_chaos")
        .expect("committed net_chaos baseline");
    let hash = bf
        .config_hash
        .clone()
        .expect("committed baseline is stamped");
    let seed = 20210705;
    // Fresh run at the committed config, with goodput_retained regressed
    // past the threshold relative to the committed value.
    let committed_retained = bf
        .metrics
        .iter()
        .find(|(n, _)| n == "goodput_retained")
        .map(|(_, v)| *v)
        .expect("committed goodput_retained");
    let mut fresh = record("net_chaos", &hash, "fresh0000", &[]);
    fresh.seed = seed;
    fresh
        .metrics
        .push(("goodput_retained".to_string(), committed_retained * 0.5));
    let identity = fresh.identity_hash();
    registry.append(fresh).unwrap();

    let outcome = gate_fresh_runs(&registry, &committed, &[identity], &GateConfig::default());
    assert_eq!(outcome.gates.len(), 1);
    assert!(
        outcome.gates[0].label.contains("vs committed"),
        "gate should compare against the committed file: {}",
        outcome.gates[0].label
    );
    assert!(!outcome.passed(), "halved goodput retention must fail");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
