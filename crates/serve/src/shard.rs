//! Worker-thread internals: the per-shard command loop.
//!
//! Each worker owns one [`BinShard`] (a contiguous range of bins) and, in
//! per-shard RNG mode, its own [`SimRng`] stream. The driver broadcasts
//! one command per round on the worker's private channel; because mpsc
//! channels deliver in send order, fault commands sent before a round
//! command are guaranteed to apply before that round executes.

use std::sync::mpsc::{Receiver, Sender};

use iba_core::shard::BinShard;
use iba_core::{Ball, Capacity};
use iba_sim::SimRng;

use crate::obs;

/// A fault operation targeting one local bin of a shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultOp {
    /// Take the bin offline (`true`) or bring it back (`false`).
    Offline(bool),
    /// Change the bin's live capacity (`None` = unbounded).
    Capacity(Option<u32>),
}

/// One command from the driver to a shard worker.
#[derive(Debug)]
pub(crate) enum ShardCmd {
    /// Apply a fault operation to local bin `local` before the next round.
    Fault { local: u32, op: FaultOp },
    /// Execute one round on requests already routed to local bins
    /// (central RNG mode). Requests are ordered oldest-first.
    RoundRouted {
        round: u64,
        requests: Vec<(u32, Ball)>,
    },
    /// Execute one round, drawing a uniform local bin per ball from the
    /// worker's own RNG stream (per-shard RNG mode). Balls are ordered
    /// oldest-first.
    RoundDraw { round: u64, balls: Vec<Ball> },
    /// Capture the shard's full state for a service checkpoint. The reply
    /// goes to the dedicated `reply` channel so it cannot interleave with
    /// round replies.
    Snapshot { reply: Sender<ShardSnapshot> },
    /// Append bins (capacity, FIFO contents oldest-first, offline flag)
    /// at the top of the shard's local index space — elastic growth, or
    /// the receiving half of a shard merge.
    PushBins {
        parts: Vec<(Capacity, Vec<Ball>, bool)>,
    },
    /// Remove the top `count` bins and hand their state back in ascending
    /// bin order (elastic shrink). The worker never gives up its last bin;
    /// the driver clamps `count` accordingly.
    PopBins {
        count: usize,
        reply: Sender<Vec<(Capacity, Vec<Ball>, bool)>>,
    },
    /// Split the shard at local bin `at`, handing back the upper half in
    /// ascending bin order (the driver spawns a new worker for it).
    SplitOff {
        at: usize,
        reply: Sender<Vec<(Capacity, Vec<Ball>, bool)>>,
    },
    /// Terminate the worker loop.
    Stop,
}

/// One shard's checkpointable state, as captured by [`ShardCmd::Snapshot`]
/// between rounds.
#[derive(Debug)]
pub(crate) struct ShardSnapshot {
    pub shard: usize,
    /// Per-bin live capacities (fault injection may have diverged them
    /// from the configured profile).
    pub caps: Vec<Capacity>,
    /// Per-bin FIFO contents, oldest first.
    pub contents: Vec<Vec<Ball>>,
    /// Per-bin offline flags.
    pub offline: Vec<bool>,
    /// The worker's RNG stream position (`None` in central RNG mode).
    pub rng_state: Option<[u64; 4]>,
}

/// A worker's answer to one round command.
#[derive(Debug)]
pub(crate) struct ShardReply {
    pub shard: usize,
    pub round: u64,
    /// Balls accepted into this shard's bins this round.
    pub accepted: u64,
    /// Rejected balls, in request order (hence oldest-first).
    pub rejected: Vec<Ball>,
    /// Balls served this round, in bin order.
    pub served: Vec<Ball>,
    /// Waiting times of the served balls, in bin order.
    pub waits: Vec<u64>,
    /// Local bin index of each served ball, parallel to `served`.
    pub served_bins: Vec<u32>,
    /// Online bins whose deletion attempt found an empty buffer.
    pub failed_deletions: u64,
    /// Balls left buffered in this shard after the deletion stage.
    pub buffered: u64,
    /// Maximum bin load in this shard after the deletion stage.
    pub max_load: u64,
}

/// The worker loop: owns the shard state for its whole lifetime and
/// executes commands until `Stop` or the driver disappears.
pub(crate) fn worker_loop(
    shard_id: usize,
    mut bins: BinShard,
    mut rng: Option<SimRng>,
    cmds: Receiver<ShardCmd>,
    replies: Sender<ShardReply>,
) {
    for cmd in cmds {
        // Membership commands resize the shard between rounds, so the
        // local bin count is re-read per command, never cached.
        let local_n = bins.len();
        match cmd {
            ShardCmd::Fault { local, op } => match op {
                FaultOp::Offline(offline) => bins.set_offline(local as usize, offline),
                FaultOp::Capacity(capacity) => {
                    let capacity = match capacity {
                        None => Capacity::Infinite,
                        Some(c) => match Capacity::finite(c) {
                            Ok(cap) => cap,
                            Err(_) => continue, // malformed (0): skip, like FaultedProcess
                        },
                    };
                    bins.set_capacity(local as usize, capacity);
                }
            },
            ShardCmd::RoundRouted { round, requests } => {
                if run_round(shard_id, &mut bins, round, &requests, &replies).is_err() {
                    return; // driver gone
                }
            }
            ShardCmd::RoundDraw { round, balls } => {
                let rng = rng
                    .as_mut()
                    .expect("RoundDraw requires a per-shard RNG stream");
                let requests: Vec<(u32, Ball)> = balls
                    .into_iter()
                    .map(|ball| (rng.uniform_bin(local_n) as u32, ball))
                    .collect();
                if run_round(shard_id, &mut bins, round, &requests, &replies).is_err() {
                    return;
                }
            }
            ShardCmd::Snapshot { reply } => {
                let snapshot = ShardSnapshot {
                    shard: shard_id,
                    caps: (0..local_n).map(|i| bins.bin(i).capacity()).collect(),
                    contents: (0..local_n)
                        .map(|i| bins.bin(i).iter().copied().collect())
                        .collect(),
                    offline: (0..local_n).map(|i| bins.is_offline(i)).collect(),
                    rng_state: rng.as_ref().map(SimRng::state),
                };
                if reply.send(snapshot).is_err() {
                    return; // driver gone
                }
            }
            ShardCmd::PushBins { parts } => {
                for (capacity, contents, offline) in parts {
                    bins.push_bin_with(capacity, &contents, offline);
                }
            }
            ShardCmd::PopBins { count, reply } => {
                debug_assert!(count < local_n, "driver keeps at least one bin");
                let mut parts: Vec<_> = (0..count).map(|_| bins.pop_bin()).collect();
                parts.reverse(); // popped top-down; hand back in bin order
                if reply.send(parts).is_err() {
                    return; // driver gone
                }
            }
            ShardCmd::SplitOff { at, reply } => {
                if reply.send(bins.split_off(at)).is_err() {
                    return; // driver gone
                }
            }
            ShardCmd::Stop => return,
        }
    }
}

fn run_round(
    shard_id: usize,
    bins: &mut BinShard,
    round: u64,
    requests: &[(u32, Ball)],
    replies: &Sender<ShardReply>,
) -> Result<(), ()> {
    let timer = iba_obs::PhaseTimer::start();
    let mut rejected = Vec::new();
    let accepted = bins.accept(requests, &mut rejected);
    let mut served = Vec::new();
    let mut waits = Vec::new();
    let mut served_bins = Vec::new();
    let stats = bins.serve_with_bins(round, &mut served, &mut waits, &mut served_bins);
    if let Some(p) = obs::probes() {
        timer.observe(&p.shard_round_nanos);
    }
    replies
        .send(ShardReply {
            shard: shard_id,
            round,
            accepted,
            rejected,
            served,
            waits,
            served_bins,
            failed_deletions: stats.failed_deletions,
            buffered: stats.buffered,
            max_load: stats.max_load,
        })
        .map_err(|_| ())
}
