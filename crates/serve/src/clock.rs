//! The round clock: logical epochs with optional wall-clock pacing.
//!
//! CAPPED(c, λ) is a synchronous-round process; the serving layer keeps
//! rounds logical (a round takes as long as its work takes) unless a
//! pacing interval is configured, in which case the clock spaces round
//! starts at a fixed wall-clock cadence — the mode a latency-measuring
//! deployment would run in.

use std::time::{Duration, Instant};

/// How round starts are spaced in wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Run rounds back-to-back as fast as the shards go (benchmark mode).
    #[default]
    Immediate,
    /// Start rounds at a fixed interval; a round that overruns its slot is
    /// followed immediately by the next (no attempt to "catch up" by
    /// running multiple rounds in one slot).
    Interval(Duration),
}

/// Drives round starts according to a [`Pacing`] policy.
///
/// # Examples
///
/// ```
/// use iba_serve::clock::{Pacing, RoundClock};
/// let mut clock = RoundClock::new(Pacing::Immediate);
/// clock.wait(); // returns immediately
/// ```
#[derive(Debug)]
pub struct RoundClock {
    pacing: Pacing,
    next_start: Option<Instant>,
}

impl RoundClock {
    /// Creates a clock with the given pacing policy.
    pub fn new(pacing: Pacing) -> Self {
        RoundClock {
            pacing,
            next_start: None,
        }
    }

    /// The pacing policy this clock runs with.
    pub fn pacing(&self) -> Pacing {
        self.pacing
    }

    /// Blocks until the next round may start. Under
    /// [`Pacing::Immediate`] this returns at once; under
    /// [`Pacing::Interval`] it sleeps out the remainder of the current
    /// slot (the first call starts the schedule and does not sleep).
    pub fn wait(&mut self) {
        let Pacing::Interval(period) = self.pacing else {
            return;
        };
        let now = Instant::now();
        match self.next_start {
            None => self.next_start = Some(now + period),
            Some(deadline) => {
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
                // Overruns restart the schedule from now rather than
                // accumulating debt.
                self.next_start = Some(deadline.max(now) + period);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_never_sleeps() {
        let mut clock = RoundClock::new(Pacing::Immediate);
        let start = Instant::now();
        for _ in 0..1000 {
            clock.wait();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(clock.pacing(), Pacing::Immediate);
    }

    #[test]
    fn interval_spaces_rounds() {
        let period = Duration::from_millis(5);
        let mut clock = RoundClock::new(Pacing::Interval(period));
        let start = Instant::now();
        clock.wait(); // starts the schedule, no sleep
        clock.wait();
        clock.wait();
        // Two full periods must have elapsed (with generous slack for CI).
        assert!(start.elapsed() >= 2 * period - Duration::from_millis(1));
    }

    #[test]
    fn overrun_does_not_accumulate_debt() {
        let period = Duration::from_millis(2);
        let mut clock = RoundClock::new(Pacing::Interval(period));
        clock.wait();
        std::thread::sleep(Duration::from_millis(20)); // massive overrun
        let start = Instant::now();
        clock.wait(); // deadline long past: no sleep
        assert!(start.elapsed() < Duration::from_millis(10));
    }
}
