//! Crash-safe persistence for a running [`CappedService`].
//!
//! The service's checkpoint is a two-layer format: the inner layer is a
//! complete `iba_core::checkpoint` payload (tag `IBA1` — restorable by the
//! core tooling on its own), wrapped in a serve envelope (tag `IBSV`) that
//! adds the state only the serving layer owns: the RNG distribution mode,
//! per-shard RNG streams, the ticket-id watermark, lifetime admission
//! counters, and the pending ticket map. See
//! [`CappedService::checkpoint_bytes`] for the capture protocol and
//! [`CappedService::resume`] for the recovery guarantees (bit-identical
//! continuation in [`RngMode::Central`](crate::service::RngMode::Central)).
//!
//! This module supplies the error type and the file-level plumbing:
//! atomic writes with `.prev` rotation ([`ServeAutosaver`]) and a
//! matching loader that falls back to the previous generation when the
//! newest file is corrupt or torn.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use iba_core::checkpoint::CheckpointError;
use iba_sim::codec::CodecError;

use crate::service::{CappedService, ServiceConfig};

/// Why [`CappedService::resume`] rejected a checkpoint.
#[derive(Debug)]
pub enum ResumeError {
    /// The bytes are corrupt, truncated, or not a serve checkpoint.
    Codec(CodecError),
    /// The checkpoint was taken under a different CAPPED(c, λ)
    /// configuration than the caller's.
    ConfigMismatch,
    /// The envelope decoded but a field is inconsistent — wrong RNG mode,
    /// shard-count mismatch in per-shard mode, out-of-order pending
    /// labels, trailing bytes.
    Invalid {
        /// Which field failed validation.
        what: &'static str,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Codec(e) => write!(f, "corrupt serve checkpoint: {e}"),
            ResumeError::ConfigMismatch => {
                write!(f, "checkpoint was taken under a different configuration")
            }
            ResumeError::Invalid { what } => write!(f, "invalid serve checkpoint: {what}"),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ResumeError {
    fn from(e: CodecError) -> Self {
        ResumeError::Codec(e)
    }
}

/// Why a file-level save or load failed.
#[derive(Debug)]
pub enum ServeCheckpointError {
    /// Filesystem operation failed.
    Io(std::io::Error),
    /// The file was read but could not be resumed from.
    Resume(ResumeError),
}

impl fmt::Display for ServeCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeCheckpointError::Io(e) => write!(f, "serve checkpoint I/O: {e}"),
            ServeCheckpointError::Resume(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeCheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeCheckpointError::Io(e) => Some(e),
            ServeCheckpointError::Resume(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ServeCheckpointError {
    fn from(e: std::io::Error) -> Self {
        ServeCheckpointError::Io(e)
    }
}

impl From<ResumeError> for ServeCheckpointError {
    fn from(e: ResumeError) -> Self {
        ServeCheckpointError::Resume(e)
    }
}

impl From<CheckpointError> for ServeCheckpointError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(io) => ServeCheckpointError::Io(io),
            CheckpointError::Codec(c) => ServeCheckpointError::Resume(ResumeError::Codec(c)),
        }
    }
}

/// Saves a service checkpoint to `path` crash-safely (temp file + fsync +
/// atomic rename): after a crash at any point, `path` holds either the
/// previous checkpoint or the new one in full, never a torn write.
///
/// # Errors
///
/// [`ServeCheckpointError::Io`] if any filesystem operation fails.
pub fn save_to_path(
    service: &mut CappedService,
    path: impl AsRef<Path>,
) -> Result<(), ServeCheckpointError> {
    let bytes = service.checkpoint_bytes();
    iba_core::checkpoint::write_bytes_atomic(path, &bytes)?;
    Ok(())
}

/// Loads and resumes a service from the checkpoint at `path`.
///
/// # Errors
///
/// [`ServeCheckpointError::Io`] if the file cannot be read,
/// [`ServeCheckpointError::Resume`] if its contents cannot be resumed
/// from (corrupt, or incompatible with `config`).
pub fn load_from_path(
    config: ServiceConfig,
    path: impl AsRef<Path>,
) -> Result<CappedService, ServeCheckpointError> {
    let bytes = fs::read(path)?;
    Ok(CappedService::resume(config, &bytes)?)
}

fn sibling_with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().map(ToOwned::to_owned).unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// Periodic checkpointing for a live service, with one-deep rotation:
/// before each save the current file is renamed to `<path>.prev`, so a
/// corrupt newest generation never leaves the operator with nothing.
#[derive(Debug)]
pub struct ServeAutosaver {
    path: PathBuf,
    every: u64,
    last_saved_round: u64,
}

impl ServeAutosaver {
    /// An autosaver writing to `path` every `every` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(path: impl Into<PathBuf>, every: u64) -> Self {
        assert!(every > 0, "autosave interval must be at least one round");
        ServeAutosaver {
            path: path.into(),
            every,
            last_saved_round: 0,
        }
    }

    /// The checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The rotation path holding the previous checkpoint generation.
    pub fn prev_path(&self) -> PathBuf {
        sibling_with_suffix(&self.path, ".prev")
    }

    /// Saves if the service has advanced at least `every` rounds since the
    /// last save; returns whether a checkpoint was written.
    ///
    /// # Errors
    ///
    /// Propagates [`save_now`](Self::save_now) failures.
    pub fn tick(&mut self, service: &mut CappedService) -> Result<bool, ServeCheckpointError> {
        let round = service.round();
        if round > 0 && round.saturating_sub(self.last_saved_round) >= self.every {
            self.save_now(service)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Rotates the current file to `.prev` (if present) and saves now.
    ///
    /// # Errors
    ///
    /// [`ServeCheckpointError::Io`] if rotation or the write fails.
    pub fn save_now(&mut self, service: &mut CappedService) -> Result<(), ServeCheckpointError> {
        if self.path.exists() {
            fs::rename(&self.path, self.prev_path())?;
        }
        save_to_path(service, &self.path)?;
        self.last_saved_round = service.round();
        Ok(())
    }

    /// Resumes from the newest loadable generation: the main path first,
    /// falling back to `.prev` if the main file is missing or corrupt.
    ///
    /// # Errors
    ///
    /// The error from the *last* attempted generation if none loads.
    pub fn recover(&self, config: ServiceConfig) -> Result<CappedService, ServeCheckpointError> {
        match load_from_path(config.clone(), &self.path) {
            Ok(service) => Ok(service),
            Err(_) => load_from_path(config, self.prev_path()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::RngMode;
    use iba_core::CappedConfig;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iba-serve-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn running_service(rounds: u64) -> (ServiceConfig, CappedService) {
        let config = ServiceConfig::new(CappedConfig::new(16, 2, 0.75).unwrap(), 2, 99)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true);
        let mut service = CappedService::spawn(config.clone()).unwrap();
        for _ in 0..rounds {
            service.run_round();
        }
        (config, service)
    }

    #[test]
    fn save_load_roundtrips_through_a_file() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("serve.ckpt");
        let (config, mut original) = running_service(40);
        save_to_path(&mut original, &path).expect("saves");
        let mut restored = load_from_path(config, &path).expect("loads");
        for _ in 0..20 {
            assert_eq!(original.run_round(), restored.run_round());
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn load_from_missing_path_is_io_error() {
        let dir = scratch_dir("missing");
        let (config, _service) = running_service(1);
        match load_from_path(config, dir.join("nope.ckpt")) {
            Err(ServeCheckpointError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn autosaver_rotates_and_recovers_from_corrupt_newest() {
        let dir = scratch_dir("rotate");
        let path = dir.join("serve.ckpt");
        let mut saver = ServeAutosaver::new(&path, 10);
        let (config, mut service) = running_service(0);
        assert!(!saver.tick(&mut service).expect("tick"), "round 0: no save");
        for _ in 0..10 {
            service.run_round();
        }
        assert!(saver.tick(&mut service).expect("tick"), "round 10 saves");
        assert!(!saver.tick(&mut service).expect("tick"), "no double save");
        for _ in 0..10 {
            service.run_round();
        }
        assert!(saver.tick(&mut service).expect("tick"), "round 20 saves");
        assert!(saver.prev_path().exists(), "previous generation rotated");

        // Corrupt the newest file; recovery falls back to `.prev`.
        fs::write(&path, b"garbage").expect("corrupt");
        let recovered = saver.recover(config).expect("recovers from .prev");
        assert_eq!(recovered.round(), 10);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn errors_display() {
        let e = ResumeError::Invalid { what: "rng mode" };
        assert!(e.to_string().contains("rng mode"));
        assert!(ResumeError::ConfigMismatch
            .to_string()
            .contains("different"));
        let io: ServeCheckpointError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
