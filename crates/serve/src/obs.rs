//! Telemetry probes for the dispatch service.
//!
//! Same pattern as the core crate's probes: every handle is registered
//! once in the global [`iba_obs`] registry and cached behind a
//! `OnceLock`, and [`probes`] costs a single relaxed load (returning
//! `None`) while telemetry is disabled. Driver-side probes fire once per
//! round; worker-side probes once per shard round; dispatcher counters
//! once per submission attempt.

use std::sync::{Arc, OnceLock};

use iba_obs::{global, Counter, Gauge, Histogram};

/// The serve crate's registered metrics.
#[derive(Debug)]
pub(crate) struct ServeProbes {
    /// Full driver round duration (faults + arrivals + route + merge).
    pub round_nanos: Arc<Histogram>,
    /// Routing/broadcast phase duration per driver round.
    pub phase_route_nanos: Arc<Histogram>,
    /// Reply collection + merge phase duration per driver round.
    pub phase_merge_nanos: Arc<Histogram>,
    /// One shard worker's round duration (accept + serve).
    pub shard_round_nanos: Arc<Histogram>,
    /// Pool size after the last round.
    pub pool_size: Arc<Gauge>,
    /// Balls buffered across all shards after the last round.
    pub buffered: Arc<Gauge>,
    /// Admitted-but-unserved tickets after the last round.
    pub pending_tickets: Arc<Gauge>,
    /// Largest per-bin load observed across all rounds so far.
    pub max_load_high_water: Arc<Gauge>,
    /// Client requests admitted from the ingress queue, lifetime.
    pub admitted: Arc<Counter>,
    /// Balls served (tickets completed + model balls), lifetime.
    pub served: Arc<Counter>,
    /// Submission attempts through any `Dispatcher` handle, lifetime.
    pub submits: Arc<Counter>,
    /// Submissions shed for ingress backpressure, lifetime.
    pub submits_saturated: Arc<Counter>,
    /// Submissions refused because the service was gone, lifetime.
    pub submits_closed: Arc<Counter>,
    /// Balls injected by pool surges and arrival bursts, lifetime.
    pub surge_balls: Arc<Counter>,
    /// Open TCP connections on the network front end.
    pub net_connections: Arc<Gauge>,
    /// Outbound bytes queued (encoded, not yet written) across all
    /// connections — the front end's write-side queue depth.
    pub net_write_queue_bytes: Arc<Gauge>,
    /// Bytes read off client sockets, lifetime.
    pub net_bytes_read: Arc<Counter>,
    /// Bytes written to client sockets, lifetime.
    pub net_bytes_written: Arc<Counter>,
    /// Wire-protocol frames decoded from clients, lifetime.
    pub net_frames: Arc<Counter>,
    /// `GET /metrics` scrapes answered, lifetime.
    pub net_scrapes: Arc<Counter>,
    /// Failed `accept` calls on the listener, lifetime.
    pub net_accept_errors: Arc<Counter>,
    /// Read errors that dropped a connection, lifetime.
    pub net_read_errors: Arc<Counter>,
    /// Write errors that dropped a connection, lifetime.
    pub net_write_errors: Arc<Counter>,
    /// Protocol violations (bad preface, malformed frame, oversized
    /// request) that dropped a connection, lifetime.
    pub net_proto_errors: Arc<Counter>,
    /// Poll iterations that made no progress (event loop idle), lifetime.
    pub net_idle_polls: Arc<Counter>,
    /// Allocation requests refused by per-connection quota, lifetime.
    pub net_allocs_quota: Arc<Counter>,
    /// Allocation requests shed probabilistically under ingress pressure,
    /// lifetime.
    pub net_allocs_shed: Arc<Counter>,
    /// Allocation requests refused because the front end was draining,
    /// lifetime.
    pub net_allocs_drained: Arc<Counter>,
    /// Chaos fault events injected into the socket layer, lifetime.
    pub net_faults_injected: Arc<Counter>,
    /// Connections dropped by injected faults, lifetime.
    pub net_conns_dropped_by_fault: Arc<Counter>,
    /// Tickets reaped by TTL expiry before completion, lifetime.
    pub tickets_expired: Arc<Counter>,
    /// Service checkpoints captured, lifetime.
    pub checkpoint_saves: Arc<Counter>,
    /// Services resumed from a checkpoint, lifetime.
    pub checkpoint_resumes: Arc<Counter>,
    /// Round the last resumed service restarted from.
    pub resume_round: Arc<Gauge>,
    /// Live bin count `n` (elastic membership moves this at runtime).
    pub live_bins: Arc<Gauge>,
    /// Live shard (worker thread) count.
    pub live_shards: Arc<Gauge>,
    /// Membership events applied (add/remove/split/merge), lifetime.
    pub membership_events: Arc<Counter>,
    /// Balls physically relocated by membership changes (drained from
    /// removed bins or transferred between workers), lifetime.
    pub balls_moved: Arc<Counter>,
}

impl ServeProbes {
    fn register() -> Self {
        let r = global();
        ServeProbes {
            round_nanos: r.histogram("iba_serve_round_nanos"),
            phase_route_nanos: r.histogram("iba_serve_phase_route_nanos"),
            phase_merge_nanos: r.histogram("iba_serve_phase_merge_nanos"),
            shard_round_nanos: r.histogram("iba_serve_shard_round_nanos"),
            pool_size: r.gauge("iba_serve_pool_size"),
            buffered: r.gauge("iba_serve_buffered"),
            pending_tickets: r.gauge("iba_serve_pending_tickets"),
            max_load_high_water: r.gauge("iba_serve_max_load_high_water"),
            admitted: r.counter("iba_serve_admitted_total"),
            served: r.counter("iba_serve_served_total"),
            submits: r.counter("iba_serve_submits_total"),
            submits_saturated: r.counter("iba_serve_submits_saturated_total"),
            submits_closed: r.counter("iba_serve_submits_closed_total"),
            surge_balls: r.counter("iba_serve_surge_balls_total"),
            net_connections: r.gauge("iba_serve_net_connections"),
            net_write_queue_bytes: r.gauge("iba_serve_net_write_queue_bytes"),
            net_bytes_read: r.counter("iba_serve_net_bytes_read_total"),
            net_bytes_written: r.counter("iba_serve_net_bytes_written_total"),
            net_frames: r.counter("iba_serve_net_frames_total"),
            net_scrapes: r.counter("iba_serve_net_scrapes_total"),
            net_accept_errors: r.counter("iba_serve_net_accept_errors_total"),
            net_read_errors: r.counter("iba_serve_net_read_errors_total"),
            net_write_errors: r.counter("iba_serve_net_write_errors_total"),
            net_proto_errors: r.counter("iba_serve_net_proto_errors_total"),
            net_idle_polls: r.counter("iba_serve_net_idle_polls_total"),
            net_allocs_quota: r.counter("iba_serve_net_allocs_quota_total"),
            net_allocs_shed: r.counter("iba_serve_net_allocs_shed_total"),
            net_allocs_drained: r.counter("iba_serve_net_allocs_drained_total"),
            net_faults_injected: r.counter("iba_serve_net_faults_injected_total"),
            net_conns_dropped_by_fault: r.counter("iba_serve_net_conns_dropped_by_fault_total"),
            tickets_expired: r.counter("iba_serve_tickets_expired_total"),
            checkpoint_saves: r.counter("iba_serve_checkpoint_saves_total"),
            checkpoint_resumes: r.counter("iba_serve_checkpoint_resumes_total"),
            resume_round: r.gauge("iba_serve_resume_round"),
            live_bins: r.gauge("iba_serve_bins"),
            live_shards: r.gauge("iba_serve_shards"),
            membership_events: r.counter("iba_serve_membership_events_total"),
            balls_moved: r.counter("iba_serve_balls_moved_total"),
        }
    }
}

/// The probe gate: `None` (after one relaxed load) while telemetry is
/// disabled, the cached handles otherwise.
#[inline]
pub(crate) fn probes() -> Option<&'static ServeProbes> {
    if !iba_obs::enabled() {
        return None;
    }
    static PROBES: OnceLock<ServeProbes> = OnceLock::new();
    Some(PROBES.get_or_init(ServeProbes::register))
}
