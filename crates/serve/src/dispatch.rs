//! The admission front end: bounded ingress, per-request tickets, and
//! completion notifications.
//!
//! Clients interact with the service exclusively through a cloneable
//! [`Dispatcher`] handle. Submission places a request onto a **bounded**
//! ingress queue; when the queue is full the service is saturated and
//! [`Dispatcher::submit`] reports backpressure instead of queueing
//! unboundedly ([`SubmitError::Saturated`]), while
//! [`Dispatcher::submit_blocking`] parks the caller until space frees up.
//! Each accepted submission is identified by a [`Ticket`]; when the ball
//! it became is served by a bin, the service emits a [`Completion`]
//! carrying the measured waiting time in rounds.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;

use crate::obs;

/// Identifies one submitted request. Ids are unique per service and
/// monotonically assigned in submission order (ids of submissions rejected
/// for backpressure are skipped, never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket {
    id: u64,
}

impl Ticket {
    pub(crate) fn from_id(id: u64) -> Self {
        Ticket { id }
    }

    /// The ticket's unique id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl fmt::Display for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ticket#{}", self.id)
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded ingress queue is full — the service is saturated.
    /// Back off and retry, or treat the request as shed (open-loop
    /// overload semantics).
    Saturated,
    /// The service has shut down; no further submissions will ever be
    /// accepted.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated => write!(f, "ingress queue full (backpressure)"),
            SubmitError::Closed => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Notification that a submitted request was served.
///
/// `waiting_rounds` is the paper's waiting time: the number of rounds
/// between the request's admission into the allocation pool and its
/// deletion from a bin's FIFO buffer (0 = served in its admission round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The ticket returned at submission time.
    pub ticket: Ticket,
    /// Global index of the bin that served the request.
    pub bin: u64,
    /// Round in which the request was admitted into the pool.
    pub admitted_round: u64,
    /// Round in which a bin served the request.
    pub served_round: u64,
    /// `served_round − admitted_round`.
    pub waiting_rounds: u64,
}

/// Cloneable client handle for submitting requests to a
/// [`CappedService`](crate::service::CappedService).
///
/// All clones share the same bounded ingress queue and ticket counter, so
/// any number of client threads can submit concurrently.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    ingress: SyncSender<u64>,
    next_id: Arc<AtomicU64>,
    /// Requests currently sitting in the ingress queue (incremented on
    /// successful submit, decremented when the service admits them). An
    /// approximation under concurrency, good enough for shed decisions.
    depth: Arc<AtomicUsize>,
    capacity: usize,
}

impl Dispatcher {
    /// A dispatcher whose ticket ids start at `first_id` — used when
    /// resuming from a checkpoint so new tickets never collide with ids
    /// handed out before the crash.
    pub(crate) fn with_first_id(ingress: SyncSender<u64>, capacity: usize, first_id: u64) -> Self {
        Dispatcher {
            ingress,
            next_id: Arc::new(AtomicU64::new(first_id)),
            depth: Arc::new(AtomicUsize::new(0)),
            capacity,
        }
    }

    /// Capacity of the bounded ingress queue.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently enqueued awaiting admission (approximate under
    /// concurrent submitters).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Ingress fill ratio in `[0, 1]` — the pressure signal admission
    /// control sheds on.
    pub fn fill_ratio(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        (self.depth() as f64 / self.capacity as f64).min(1.0)
    }

    /// The next ticket id that would be assigned (checkpoint watermark).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Records that the service admitted `count` requests off the queue.
    pub(crate) fn note_admitted(&self, count: usize) {
        // Saturating: depth is advisory and must never underflow.
        let mut current = self.depth.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(count);
            match self.depth.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Submits one request without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] if the ingress queue is full (the
    /// request is shed — resubmit to retry), [`SubmitError::Closed`] if
    /// the service is gone.
    pub fn submit(&self) -> Result<Ticket, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let result = match self.ingress.try_send(id) {
            Ok(()) => {
                self.depth.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket::from_id(id))
            }
            Err(TrySendError::Full(_)) => Err(SubmitError::Saturated),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Closed),
        };
        if let Some(p) = obs::probes() {
            p.submits.inc();
            match result {
                Err(SubmitError::Saturated) => p.submits_saturated.inc(),
                Err(SubmitError::Closed) => p.submits_closed.inc(),
                Ok(_) => {}
            }
        }
        result
    }

    /// Submits one request, blocking while the ingress queue is full —
    /// the backpressure mode for closed-loop clients.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] if the service is gone.
    pub fn submit_blocking(&self) -> Result<Ticket, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let result = self
            .ingress
            .send(id)
            .map(|()| {
                self.depth.fetch_add(1, Ordering::Relaxed);
                Ticket::from_id(id)
            })
            .map_err(|_| SubmitError::Closed);
        if let Some(p) = obs::probes() {
            p.submits.inc();
            if result.is_err() {
                p.submits_closed.inc();
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn submit_returns_monotonic_tickets() {
        let (tx, rx) = sync_channel(8);
        let d = Dispatcher::with_first_id(tx, 8, 0);
        let a = d.submit().unwrap();
        let b = d.submit().unwrap();
        assert!(b.id() > a.id());
        assert_eq!(rx.try_recv().unwrap(), a.id());
        assert_eq!(rx.try_recv().unwrap(), b.id());
    }

    #[test]
    fn full_queue_reports_saturation() {
        let (tx, _rx) = sync_channel(1);
        let d = Dispatcher::with_first_id(tx, 1, 0);
        assert!(d.submit().is_ok());
        assert_eq!(d.submit(), Err(SubmitError::Saturated));
    }

    #[test]
    fn closed_queue_reports_closed() {
        let (tx, rx) = sync_channel(1);
        drop(rx);
        let d = Dispatcher::with_first_id(tx, 1, 0);
        assert_eq!(d.submit(), Err(SubmitError::Closed));
        assert_eq!(d.submit_blocking(), Err(SubmitError::Closed));
    }

    #[test]
    fn clones_share_the_ticket_space() {
        let (tx, _rx) = sync_channel(16);
        let d1 = Dispatcher::with_first_id(tx, 16, 0);
        let d2 = d1.clone();
        let a = d1.submit().unwrap();
        let b = d2.submit().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn depth_tracks_queue_occupancy() {
        let (tx, _rx) = sync_channel(4);
        let d = Dispatcher::with_first_id(tx, 4, 0);
        assert_eq!(d.depth(), 0);
        assert_eq!(d.fill_ratio(), 0.0);
        for _ in 0..4 {
            d.submit().unwrap();
        }
        assert_eq!(d.depth(), 4);
        assert_eq!(d.fill_ratio(), 1.0);
        // Rejected submissions do not inflate the depth.
        assert_eq!(d.submit(), Err(SubmitError::Saturated));
        assert_eq!(d.depth(), 4);
        d.note_admitted(3);
        assert_eq!(d.depth(), 1);
        // Saturating: over-reporting admissions never underflows.
        d.note_admitted(10);
        assert_eq!(d.depth(), 0);
    }

    #[test]
    fn first_id_watermark_offsets_tickets() {
        let (tx, _rx) = sync_channel(4);
        let d = Dispatcher::with_first_id(tx, 4, 100);
        assert_eq!(d.next_id(), 100);
        assert_eq!(d.submit().unwrap().id(), 100);
        assert_eq!(d.submit().unwrap().id(), 101);
        assert_eq!(d.next_id(), 102);
    }

    #[test]
    fn errors_display() {
        assert!(SubmitError::Saturated.to_string().contains("backpressure"));
        assert!(SubmitError::Closed.to_string().contains("shut down"));
        assert_eq!(Ticket::from_id(3).to_string(), "ticket#3");
    }
}
