//! The std-only, non-blocking TCP front end: wire-protocol ingress and
//! the `GET /metrics` scrape plane on one listener.
//!
//! No async runtime and no `libc`/epoll — a [`NetFrontend`] is a
//! hand-rolled poll loop over non-blocking `std::net` sockets: every
//! [`poll`](NetFrontend::poll) tick accepts pending connections, reads
//! whatever bytes are available, decodes and handles frames, and flushes
//! queued replies, never blocking the round driver. The driver thread
//! interleaves `poll` with [`CappedService::run_round`] (see
//! [`run_net_loop`]), so network ingress rides the same round clock as
//! the allocation process itself.
//!
//! # Connection kinds
//!
//! The listener sniffs the first 4 bytes of every connection:
//!
//! - [`proto::MAGIC`] (`b"IBA1"`) — a wire-protocol client. Each
//!   [`Frame::Alloc`] is submitted through the service's bounded
//!   [`Dispatcher`]; the reply is [`Frame::Accepted`] with a ticket, or
//!   [`Frame::Saturated`] when the ingress queue is full — **explicit
//!   backpressure**: the request is shed with a bounded amount of
//!   buffering instead of queueing unboundedly. When a ticket's ball is
//!   later served, the front end streams a [`Frame::Completed`] (ticket,
//!   bin, waiting time) back to the submitting connection.
//! - `GET ` — an HTTP scraper. `GET /metrics` answers with the
//!   [`iba_obs`] Prometheus exposition of the global registry
//!   (mid-run — this is what makes long-running instances scrapeable);
//!   any other path gets a 404. The response carries
//!   `Connection: close`.
//! - anything else is a protocol violation and the connection is
//!   dropped.
//!
//! Slow consumers are bounded too: a connection whose outbound queue
//! exceeds [`MAX_OUT_QUEUE`] bytes is dropped rather than buffered
//! without limit.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use crate::dispatch::{Completion, Dispatcher, SubmitError};
use crate::obs;
use crate::proto::{self, Frame, FrameDecoder};
use crate::service::CappedService;

/// Maximum bytes queued for write on one connection before it is dropped
/// as a slow consumer.
pub const MAX_OUT_QUEUE: usize = 4 << 20;

/// Maximum bytes of HTTP request head buffered before the connection is
/// dropped as malformed.
const MAX_HTTP_HEAD: usize = 8 << 10;

/// Maximum simultaneously open connections; accepts beyond this are
/// closed immediately.
const MAX_CONNS: usize = 1024;

/// Per-poll read budget per connection, so one firehose peer cannot
/// starve the others or the round clock.
const READS_PER_POLL: usize = 16;

#[derive(Debug)]
enum ConnState {
    /// Waiting for the 4 preface bytes that identify the protocol.
    Sniffing(Vec<u8>),
    /// Wire-protocol client.
    Wire(FrameDecoder),
    /// HTTP scraper: accumulating the request head.
    Http(Vec<u8>),
    /// Reply queued; discard any further input and close once flushed.
    Draining,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Monotonic connection id — lets completion routing detect that a
    /// slot was reused by a newer connection.
    id: u64,
    state: ConnState,
    outbuf: Vec<u8>,
    out_pos: usize,
    close_after_flush: bool,
}

impl Conn {
    fn queued(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    fn queue_frame(&mut self, frame: &Frame) -> Result<(), DropReason> {
        frame.encode_into(&mut self.outbuf);
        if self.queued() > MAX_OUT_QUEUE {
            return Err(DropReason::Write);
        }
        Ok(())
    }
}

/// Why a connection was dropped (drives the error counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DropReason {
    /// Peer closed the connection (not an error).
    Eof,
    /// Close requested after the queued reply flushes (not an error).
    Done,
    Read,
    Write,
    Proto,
}

/// A ticket awaiting completion, routed back to the connection that
/// submitted it.
#[derive(Debug, Clone, Copy)]
struct PendingTicket {
    slot: usize,
    conn_id: u64,
}

/// Lifetime counters of one front end (always maintained, independent of
/// the telemetry switch — tests and summaries read these directly).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted_conns: u64,
    /// Wire frames decoded from clients.
    pub frames: u64,
    /// Allocation requests admitted (ticketed).
    pub allocs_accepted: u64,
    /// Allocation requests shed for ingress backpressure.
    pub allocs_saturated: u64,
    /// Allocation requests refused because the service closed.
    pub allocs_closed: u64,
    /// Completion frames delivered to clients.
    pub completions_sent: u64,
    /// `GET /metrics` scrapes answered.
    pub scrapes: u64,
    /// Connections dropped for protocol violations.
    pub proto_errors: u64,
}

/// The non-blocking TCP front end. See the [module docs](self).
#[derive(Debug)]
pub struct NetFrontend {
    listener: TcpListener,
    local_addr: SocketAddr,
    conns: Vec<Option<Conn>>,
    tickets: HashMap<u64, PendingTicket>,
    next_conn_id: u64,
    stats: NetStats,
}

impl NetFrontend {
    /// Binds `addr` (e.g. `"127.0.0.1:7171"`, port 0 for ephemeral) and
    /// puts the listener into non-blocking mode.
    ///
    /// # Errors
    ///
    /// Any `bind`/`local_addr`/`set_nonblocking` failure.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(NetFrontend {
            listener,
            local_addr,
            conns: Vec::new(),
            tickets: HashMap::new(),
            next_conn_id: 0,
            stats: NetStats::default(),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Lifetime counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Currently open connections.
    pub fn connections(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Tickets submitted over the network still awaiting completion.
    pub fn pending_tickets(&self) -> usize {
        self.tickets.len()
    }

    /// One event-loop tick: accept pending connections, read and handle
    /// available input (submitting allocation frames through
    /// `dispatcher`), flush queued output, and update the net gauges.
    /// Never blocks. Returns a coarse activity count (bytes moved +
    /// connections accepted); `0` means the tick found nothing to do and
    /// the caller may sleep briefly.
    pub fn poll(&mut self, dispatcher: &Dispatcher) -> u64 {
        let mut activity = self.accept_pending();
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            match self.service_conn(slot, &mut conn, dispatcher, &mut activity) {
                Ok(()) => self.conns[slot] = Some(conn),
                Err(reason) => self.drop_conn(conn, reason),
            }
        }
        if let Some(p) = obs::probes() {
            p.net_connections.set(self.connections() as u64);
            let queued: usize = self.conns.iter().flatten().map(Conn::queued).sum();
            p.net_write_queue_bytes.set(queued as u64);
        }
        activity
    }

    /// Routes one service [`Completion`] back to the connection that
    /// submitted the ticket (dropped silently if that connection is
    /// gone, or if the ticket was submitted by an in-process dispatcher
    /// handle rather than the network).
    pub fn notify(&mut self, completion: &Completion) {
        let Some(pending) = self.tickets.remove(&completion.ticket.id()) else {
            return;
        };
        let Some(conn) = self.conns.get_mut(pending.slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.id != pending.conn_id {
            return; // the slot was reused by a newer connection
        }
        let frame = Frame::Completed {
            ticket: completion.ticket.id(),
            bin: completion.bin,
            admitted_round: completion.admitted_round,
            served_round: completion.served_round,
            waiting_rounds: completion.waiting_rounds,
        };
        if conn.queue_frame(&frame).is_err() {
            let conn = self.conns[pending.slot].take().expect("just borrowed");
            self.drop_conn(conn, DropReason::Write);
            return;
        }
        self.stats.completions_sent += 1;
    }

    fn accept_pending(&mut self) -> u64 {
        let mut accepted = 0;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue; // socket died before use
                    }
                    if self.connections() >= MAX_CONNS {
                        drop(stream);
                        continue;
                    }
                    let conn = Conn {
                        stream,
                        id: self.next_conn_id,
                        state: ConnState::Sniffing(Vec::with_capacity(4)),
                        outbuf: Vec::new(),
                        out_pos: 0,
                        close_after_flush: false,
                    };
                    self.next_conn_id += 1;
                    self.stats.accepted_conns += 1;
                    accepted += 1;
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    if let Some(p) = obs::probes() {
                        p.net_accept_errors.inc();
                    }
                    break;
                }
            }
        }
        accepted
    }

    /// Reads, handles, and flushes one connection. `Err` means the
    /// connection must be dropped.
    fn service_conn(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        dispatcher: &Dispatcher,
        activity: &mut u64,
    ) -> Result<(), DropReason> {
        let mut buf = [0u8; 4096];
        let mut saw_eof = false;
        for _ in 0..READS_PER_POLL {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(k) => {
                    *activity += k as u64;
                    if let Some(p) = obs::probes() {
                        p.net_bytes_read.add(k as u64);
                    }
                    self.ingest(slot, conn, &buf[..k], dispatcher)?;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    if let Some(p) = obs::probes() {
                        p.net_read_errors.inc();
                    }
                    return Err(DropReason::Read);
                }
            }
        }
        flush(conn, activity)?;
        if saw_eof {
            // Peer finished sending. Keep the connection only if a reply
            // is still draining; completions for a half-closed peer are
            // undeliverable anyway once the flush is done.
            if conn.queued() == 0 {
                return Err(DropReason::Eof);
            }
            conn.state = ConnState::Draining;
            conn.close_after_flush = true;
        }
        if conn.close_after_flush && conn.queued() == 0 {
            return Err(DropReason::Done);
        }
        Ok(())
    }

    fn ingest(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        mut bytes: &[u8],
        dispatcher: &Dispatcher,
    ) -> Result<(), DropReason> {
        if let ConnState::Sniffing(preface) = &mut conn.state {
            let need = 4 - preface.len();
            let take = need.min(bytes.len());
            preface.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if preface.len() < 4 {
                return Ok(());
            }
            if preface[..4] == proto::MAGIC {
                conn.state = ConnState::Wire(FrameDecoder::new());
            } else if &preface[..4] == b"GET " {
                let head = std::mem::take(preface);
                conn.state = ConnState::Http(head);
            } else {
                return Err(DropReason::Proto);
            }
        }
        let frames = match &mut conn.state {
            ConnState::Sniffing(_) => unreachable!("resolved above"),
            ConnState::Wire(decoder) => {
                decoder.push(bytes);
                let mut frames = Vec::new();
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => frames.push(frame),
                        Ok(None) => break,
                        Err(_) => return Err(DropReason::Proto),
                    }
                }
                frames
            }
            ConnState::Http(head) => {
                head.extend_from_slice(bytes);
                if head.len() > MAX_HTTP_HEAD {
                    return Err(DropReason::Proto);
                }
                if let Some(end) = find_head_end(head) {
                    let request = String::from_utf8_lossy(&head[..end]);
                    let path = request.split_whitespace().nth(1).unwrap_or("");
                    let response = if path == "/metrics" || path.starts_with("/metrics?") {
                        self.stats.scrapes += 1;
                        if let Some(p) = obs::probes() {
                            p.net_scrapes.inc();
                        }
                        iba_obs::expo::http_metrics_response(iba_obs::global())
                    } else {
                        iba_obs::expo::http_not_found()
                    };
                    conn.outbuf.extend_from_slice(&response);
                    conn.state = ConnState::Draining;
                    conn.close_after_flush = true;
                }
                return Ok(());
            }
            ConnState::Draining => return Ok(()),
        };
        for frame in frames {
            self.stats.frames += 1;
            if let Some(p) = obs::probes() {
                p.net_frames.inc();
            }
            let Frame::Alloc { req_id } = frame else {
                return Err(DropReason::Proto); // server-only opcode
            };
            let reply = match dispatcher.submit() {
                Ok(ticket) => {
                    self.tickets.insert(
                        ticket.id(),
                        PendingTicket {
                            slot,
                            conn_id: conn.id,
                        },
                    );
                    self.stats.allocs_accepted += 1;
                    Frame::Accepted {
                        req_id,
                        ticket: ticket.id(),
                    }
                }
                Err(SubmitError::Saturated) => {
                    self.stats.allocs_saturated += 1;
                    Frame::Saturated { req_id }
                }
                Err(SubmitError::Closed) => {
                    self.stats.allocs_closed += 1;
                    Frame::Closed { req_id }
                }
            };
            conn.queue_frame(&reply)?;
        }
        Ok(())
    }

    fn drop_conn(&mut self, conn: Conn, reason: DropReason) {
        if reason == DropReason::Proto {
            self.stats.proto_errors += 1;
        }
        if let Some(p) = obs::probes() {
            match reason {
                DropReason::Proto => p.net_proto_errors.inc(),
                DropReason::Write => p.net_write_errors.inc(),
                DropReason::Eof | DropReason::Done | DropReason::Read => {}
            }
        }
        drop(conn);
    }
}

/// Writes as much queued output as the socket accepts right now.
fn flush(conn: &mut Conn, activity: &mut u64) -> Result<(), DropReason> {
    while conn.out_pos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => return Err(DropReason::Write),
            Ok(k) => {
                conn.out_pos += k;
                *activity += k as u64;
                if let Some(p) = obs::probes() {
                    p.net_bytes_written.add(k as u64);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                if let Some(p) = obs::probes() {
                    p.net_write_errors.inc();
                }
                return Err(DropReason::Write);
            }
        }
    }
    if conn.out_pos == conn.outbuf.len() && conn.out_pos > 0 {
        conn.outbuf.clear();
        conn.out_pos = 0;
    }
    Ok(())
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// Options for [`run_net_loop`].
#[derive(Debug, Clone)]
pub struct NetLoopOptions {
    /// Rounds to run before returning (`u64::MAX` ≈ run until `stop`).
    pub max_rounds: u64,
    /// Wall-clock spacing between rounds; I/O is polled continuously in
    /// between. `Duration::ZERO` runs rounds back-to-back with one poll
    /// tick per round.
    pub round_interval: Duration,
    /// Sleep applied when a poll tick finds no work, bounding idle CPU.
    pub idle_sleep: Duration,
}

impl Default for NetLoopOptions {
    fn default() -> Self {
        NetLoopOptions {
            max_rounds: u64::MAX,
            round_interval: Duration::from_micros(500),
            idle_sleep: Duration::from_micros(100),
        }
    }
}

/// What [`run_net_loop`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetLoopSummary {
    /// Rounds executed.
    pub rounds_run: u64,
    /// Completions routed to network clients.
    pub completions_delivered: u64,
}

/// Drives the service and the front end on the calling thread: each
/// iteration polls I/O until the round interval elapses, runs one round,
/// routes the round's completions back to their connections, and flushes.
/// Returns after `opts.max_rounds` rounds or as soon as `stop` is set.
///
/// `completions` must be the receiver taken from the same `service`
/// ([`CappedService::take_completions`]).
pub fn run_net_loop(
    service: &mut CappedService,
    frontend: &mut NetFrontend,
    completions: &Receiver<Completion>,
    opts: &NetLoopOptions,
    stop: &AtomicBool,
) -> NetLoopSummary {
    let dispatcher = service.dispatcher();
    let mut summary = NetLoopSummary {
        rounds_run: 0,
        completions_delivered: 0,
    };
    while summary.rounds_run < opts.max_rounds && !stop.load(Ordering::Relaxed) {
        let deadline = Instant::now() + opts.round_interval;
        loop {
            let activity = frontend.poll(&dispatcher);
            let now = Instant::now();
            if now >= deadline || stop.load(Ordering::Relaxed) {
                break;
            }
            if activity == 0 {
                std::thread::sleep(opts.idle_sleep.min(deadline - now));
            }
        }
        service.run_round();
        summary.rounds_run += 1;
        while let Ok(completion) = completions.try_recv() {
            frontend.notify(&completion);
            summary.completions_delivered += 1;
        }
        frontend.poll(&dispatcher);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_reports_resolved_addr_and_empty_state() {
        let frontend = NetFrontend::bind("127.0.0.1:0").unwrap();
        assert_ne!(frontend.local_addr().port(), 0);
        assert_eq!(frontend.connections(), 0);
        assert_eq!(frontend.pending_tickets(), 0);
        assert_eq!(frontend.stats(), NetStats::default());
    }

    #[test]
    fn head_end_finder() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }
}
