//! The std-only, non-blocking TCP front end: wire-protocol ingress and
//! the `GET /metrics` scrape plane on one listener.
//!
//! No async runtime and no `libc`/epoll — a [`NetFrontend`] is a
//! hand-rolled poll loop over non-blocking `std::net` sockets: every
//! [`poll`](NetFrontend::poll) tick accepts pending connections, reads
//! whatever bytes are available, decodes and handles frames, and flushes
//! queued replies, never blocking the round driver. The driver thread
//! interleaves `poll` with [`CappedService::run_round`] (see
//! [`run_net_loop`]), so network ingress rides the same round clock as
//! the allocation process itself.
//!
//! # Connection kinds
//!
//! The listener sniffs the first 4 bytes of every connection:
//!
//! - [`proto::MAGIC`] (`b"IBA1"`) — a wire-protocol client. Each
//!   [`Frame::Alloc`] is submitted through the service's bounded
//!   [`Dispatcher`]; the reply is [`Frame::Accepted`] with a ticket, or
//!   [`Frame::Saturated`] when the ingress queue is full — **explicit
//!   backpressure**: the request is shed with a bounded amount of
//!   buffering instead of queueing unboundedly. When a ticket's ball is
//!   later served, the front end streams a [`Frame::Completed`] (ticket,
//!   bin, waiting time) back to the submitting connection.
//! - `GET ` — an HTTP scraper. `GET /metrics` answers with the
//!   [`iba_obs`] Prometheus exposition of the global registry
//!   (mid-run — this is what makes long-running instances scrapeable);
//!   any other path gets a 404. The response carries
//!   `Connection: close`.
//! - anything else is a protocol violation and the connection is
//!   dropped.
//!
//! Slow consumers are bounded too: a connection whose outbound queue
//! exceeds [`MAX_OUT_QUEUE`] bytes is dropped rather than buffered
//! without limit (with a best-effort [`CloseReason::SlowConsumer`] frame
//! on the way out).
//!
//! # Admission control and drain
//!
//! [`AdmissionControl`] adds two policy layers in front of the
//! dispatcher: a per-connection **token bucket** (refilled every round,
//! refusals answered with [`CloseReason::Quota`] — the peer holds too
//! many requests in flight for its quota) and **probabilistic shedding**
//! keyed on the ingress queue's fill ratio (refusals answered with
//! [`Frame::Saturated`], exactly like hard backpressure, because a
//! retry-later is the right client response to both). Calling
//! [`NetFrontend::begin_drain`] flips the front end into drain mode: new
//! allocations are refused with [`CloseReason::Drain`] while in-flight
//! completions keep flushing, and [`NetFrontend::drained`] reports when
//! everything owed has been delivered.
//!
//! # Chaos injection
//!
//! [`NetFrontend::arm_faults`] installs a round-keyed
//! [`NetFaultPlan`](crate::chaos::NetFaultPlan): connection drops,
//! read/write stalls, partial-write throttling, and mid-stream garbage,
//! with victims drawn from a seeded [`SimRng`] so every chaos run is
//! reproducible. Faults only ever touch wire connections — the metrics
//! plane stays observable while the system burns.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use iba_sim::SimRng;

use crate::chaos::{NetFault, NetFaultPlan};
use crate::dispatch::{Completion, Dispatcher, SubmitError};
use crate::obs;
use crate::proto::{self, CloseReason, Frame, FrameDecoder};
use crate::service::CappedService;

/// Maximum bytes queued for write on one connection before it is dropped
/// as a slow consumer.
pub const MAX_OUT_QUEUE: usize = 4 << 20;

/// Maximum bytes of HTTP request head buffered before the connection is
/// dropped as malformed.
const MAX_HTTP_HEAD: usize = 8 << 10;

/// Maximum simultaneously open connections; accepts beyond this are
/// closed immediately.
const MAX_CONNS: usize = 1024;

/// Per-poll read budget per connection, so one firehose peer cannot
/// starve the others or the round clock.
const READS_PER_POLL: usize = 16;

#[derive(Debug)]
enum ConnState {
    /// Waiting for the 4 preface bytes that identify the protocol.
    Sniffing(Vec<u8>),
    /// Wire-protocol client.
    Wire(FrameDecoder),
    /// HTTP scraper: accumulating the request head.
    Http(Vec<u8>),
    /// Reply queued; discard any further input and close once flushed.
    Draining,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Monotonic connection id — lets completion routing detect that a
    /// slot was reused by a newer connection.
    id: u64,
    state: ConnState,
    outbuf: Vec<u8>,
    out_pos: usize,
    close_after_flush: bool,
    /// Reads are suppressed while the current round is below this
    /// (injected fault; 0 = no stall).
    read_stalled_until: u64,
    /// Writes are suppressed while the current round is below this
    /// (injected fault; 0 = no stall).
    write_stalled_until: u64,
    /// Token-bucket balance for per-connection admission quotas.
    tokens: u32,
    /// Fault-injected bytes, consumed before socket reads as if the peer
    /// had sent them.
    injected: Vec<u8>,
}

impl Conn {
    fn queued(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    fn queue_frame(&mut self, frame: &Frame) -> Result<(), DropReason> {
        frame.encode_into(&mut self.outbuf);
        if self.queued() > MAX_OUT_QUEUE {
            return Err(DropReason::SlowConsumer);
        }
        Ok(())
    }

    fn is_wire(&self) -> bool {
        matches!(self.state, ConnState::Wire(_))
    }
}

/// Why a connection was dropped (drives the error counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DropReason {
    /// Peer closed the connection (not an error).
    Eof,
    /// Close requested after the queued reply flushes (not an error).
    Done,
    Read,
    Write,
    /// Outbound queue exceeded [`MAX_OUT_QUEUE`]; a best-effort typed
    /// close frame is attempted on the way out.
    SlowConsumer,
    Proto,
    /// Dropped by an injected chaos fault (not an error of the stack).
    Fault,
}

/// Admission-control policy for a [`NetFrontend`]: what is refused
/// *before* it ever reaches the dispatcher.
///
/// Both layers are optional and independent:
///
/// - **Per-connection quota** (`quota_per_round`): a token bucket per
///   connection, refilled by `quota_per_round` tokens at every round
///   boundary up to a `quota_burst` cap, one token per allocation
///   request. Refusals get [`Frame::Closed`] with
///   [`CloseReason::Quota`] — the *peer* is over budget, other
///   connections are unaffected.
/// - **Pressure shedding** (`shed_start`): once the ingress queue's fill
///   ratio exceeds `shed_start`, requests are refused with probability
///   ramping linearly from 0 (at `shed_start`) to 1 (queue full), drawn
///   from a seeded RNG. Refusals get [`Frame::Saturated`] — the same
///   retryable answer as hard backpressure, shifted earlier so the queue
///   keeps headroom for bursts.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    /// Tokens granted to each connection per round; `None` disables the
    /// quota layer.
    pub quota_per_round: Option<u32>,
    /// Token-bucket cap (burst allowance). Also the initial balance of a
    /// fresh connection.
    pub quota_burst: u32,
    /// Ingress fill ratio at which probabilistic shedding starts;
    /// `>= 1.0` disables the shed layer.
    pub shed_start: f64,
    /// Seed for the shed-decision RNG (deterministic given traffic).
    pub seed: u64,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            quota_per_round: None,
            quota_burst: 64,
            shed_start: 1.0,
            seed: 0,
        }
    }
}

impl AdmissionControl {
    /// Policy with a per-connection quota of `per_round` tokens/round and
    /// a burst cap of `burst`.
    #[must_use]
    pub fn with_quota(mut self, per_round: u32, burst: u32) -> Self {
        self.quota_per_round = Some(per_round);
        self.quota_burst = burst.max(1);
        self
    }

    /// Policy shedding probabilistically once the ingress fill ratio
    /// exceeds `start` (clamped to `[0, 1]`), using `seed`.
    #[must_use]
    pub fn with_shedding(mut self, start: f64, seed: u64) -> Self {
        self.shed_start = start.clamp(0.0, 1.0);
        self.seed = seed;
        self
    }

    /// Probability of shedding at ingress fill ratio `fill`.
    fn shed_probability(&self, fill: f64) -> f64 {
        if self.shed_start >= 1.0 || fill <= self.shed_start {
            return 0.0;
        }
        ((fill - self.shed_start) / (1.0 - self.shed_start)).clamp(0.0, 1.0)
    }
}

/// Armed chaos state: the schedule plus the RNG that picks victims.
#[derive(Debug)]
struct FaultInjector {
    plan: NetFaultPlan,
    rng: SimRng,
    /// Active partial-write throttle: `(last_round_inclusive, max_bytes
    /// per flush per connection)`.
    write_budget: Option<(u64, usize)>,
}

/// A ticket awaiting completion, routed back to the connection that
/// submitted it.
#[derive(Debug, Clone, Copy)]
struct PendingTicket {
    slot: usize,
    conn_id: u64,
}

/// Lifetime counters of one front end (always maintained, independent of
/// the telemetry switch — tests and summaries read these directly).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted_conns: u64,
    /// Wire frames decoded from clients.
    pub frames: u64,
    /// Allocation requests admitted (ticketed).
    pub allocs_accepted: u64,
    /// Allocation requests shed for ingress backpressure.
    pub allocs_saturated: u64,
    /// Allocation requests refused because the service closed.
    pub allocs_closed: u64,
    /// Completion frames delivered to clients.
    pub completions_sent: u64,
    /// `GET /metrics` scrapes answered.
    pub scrapes: u64,
    /// Connections dropped for protocol violations.
    pub proto_errors: u64,
    /// Allocation requests refused by a per-connection quota.
    pub allocs_quota: u64,
    /// Allocation requests shed probabilistically under ingress pressure.
    pub allocs_shed: u64,
    /// Allocation requests refused because the front end was draining.
    pub allocs_drained: u64,
    /// Chaos fault events applied to the socket layer.
    pub faults_injected: u64,
    /// Connections dropped by injected faults.
    pub conns_dropped_by_fault: u64,
    /// Connections dropped as slow consumers (outbound queue overflow).
    pub slow_consumer_drops: u64,
}

/// The non-blocking TCP front end. See the [module docs](self).
#[derive(Debug)]
pub struct NetFrontend {
    listener: TcpListener,
    local_addr: SocketAddr,
    conns: Vec<Option<Conn>>,
    tickets: HashMap<u64, PendingTicket>,
    next_conn_id: u64,
    stats: NetStats,
    /// Current service round, advanced by [`on_round`](Self::on_round) —
    /// the clock faults and quota refills key on.
    round: u64,
    admission: Option<AdmissionControl>,
    shed_rng: SimRng,
    faults: Option<FaultInjector>,
    draining: bool,
}

impl NetFrontend {
    /// Binds `addr` (e.g. `"127.0.0.1:7171"`, port 0 for ephemeral) and
    /// puts the listener into non-blocking mode.
    ///
    /// # Errors
    ///
    /// Any `bind`/`local_addr`/`set_nonblocking` failure.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(NetFrontend {
            listener,
            local_addr,
            conns: Vec::new(),
            tickets: HashMap::new(),
            next_conn_id: 0,
            stats: NetStats::default(),
            round: 0,
            admission: None,
            shed_rng: SimRng::seed_from(0),
            faults: None,
            draining: false,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Lifetime counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Currently open connections.
    pub fn connections(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Tickets submitted over the network still awaiting completion.
    pub fn pending_tickets(&self) -> usize {
        self.tickets.len()
    }

    /// Installs an admission-control policy (replacing any previous one).
    /// Existing connections start with a full burst allowance.
    pub fn set_admission_control(&mut self, policy: AdmissionControl) {
        self.shed_rng = SimRng::seed_from(policy.seed);
        for conn in self.conns.iter_mut().flatten() {
            conn.tokens = policy.quota_burst;
        }
        self.admission = Some(policy);
    }

    /// Arms a socket fault plan. Victim selection draws from a stream
    /// seeded with `seed`, so the same seed + plan + traffic reproduces
    /// the same chaos. Replaces any previously armed plan.
    pub fn arm_faults(&mut self, plan: NetFaultPlan, seed: u64) {
        self.faults = Some(FaultInjector {
            plan,
            rng: SimRng::seed_from(seed),
            write_budget: None,
        });
    }

    /// Enters drain mode: new allocation requests are refused with
    /// [`CloseReason::Drain`], while queued output and in-flight
    /// completions keep flowing. Irreversible for this front end.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Whether [`begin_drain`](Self::begin_drain) was called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether the front end owes nothing: no ticket is awaiting
    /// completion and every connection's outbound queue is flushed. The
    /// drain loop exits when this turns true.
    pub fn drained(&self) -> bool {
        self.tickets.is_empty() && self.conns.iter().flatten().all(|c| c.queued() == 0)
    }

    /// Forgets a pending ticket (TTL-reaped by the service): its
    /// completion will never arrive, so stop routing for it.
    pub fn forget_ticket(&mut self, id: u64) {
        self.tickets.remove(&id);
    }

    /// Advances the front end's round clock: refills admission quota
    /// buckets and applies any socket faults scheduled for `round`.
    /// [`run_net_loop`] calls this once per round, just before the round
    /// executes; drive it manually when polling by hand.
    pub fn on_round(&mut self, round: u64) {
        self.round = round;
        if let Some(policy) = &self.admission {
            if let Some(per_round) = policy.quota_per_round {
                let cap = policy.quota_burst;
                for conn in self.conns.iter_mut().flatten() {
                    conn.tokens = conn.tokens.saturating_add(per_round).min(cap);
                }
            }
        }
        let Some(injector) = &mut self.faults else {
            return;
        };
        if injector
            .write_budget
            .is_some_and(|(until, _)| round > until)
        {
            injector.write_budget = None;
        }
        let events = injector.plan.events_at(round).to_vec();
        for event in events {
            self.stats.faults_injected += 1;
            if let Some(p) = obs::probes() {
                p.net_faults_injected.inc();
            }
            self.apply_fault(round, &event);
        }
    }

    /// Up to `count` distinct slots holding active wire connections,
    /// drawn without replacement from the injector RNG (the metrics
    /// plane is never a victim).
    fn pick_wire_victims(&mut self, count: u32) -> Vec<usize> {
        let mut candidates: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.as_ref().is_some_and(Conn::is_wire))
            .map(|(slot, _)| slot)
            .collect();
        let injector = self.faults.as_mut().expect("armed");
        let take = (count as usize).min(candidates.len());
        for i in 0..take {
            let j = i + injector.rng.uniform_bin(candidates.len() - i);
            candidates.swap(i, j);
        }
        candidates.truncate(take);
        candidates
    }

    fn apply_fault(&mut self, round: u64, event: &NetFault) {
        match *event {
            NetFault::DropConns { conns } => {
                for slot in self.pick_wire_victims(conns) {
                    let conn = self.conns[slot].take().expect("victim exists");
                    self.drop_conn(conn, DropReason::Fault);
                }
            }
            NetFault::StallReads { conns, rounds } => {
                for slot in self.pick_wire_victims(conns) {
                    let conn = self.conns[slot].as_mut().expect("victim exists");
                    conn.read_stalled_until = round + u64::from(rounds);
                }
            }
            NetFault::StallWrites { conns, rounds } => {
                for slot in self.pick_wire_victims(conns) {
                    let conn = self.conns[slot].as_mut().expect("victim exists");
                    conn.write_stalled_until = round + u64::from(rounds);
                }
            }
            NetFault::PartialWrites { max_bytes, rounds } => {
                let injector = self.faults.as_mut().expect("armed");
                injector.write_budget = Some((
                    round + u64::from(rounds).saturating_sub(1),
                    (max_bytes as usize).max(1),
                ));
            }
            NetFault::InjectGarbage { conns, bytes } => {
                for slot in self.pick_wire_victims(conns) {
                    let garbage: Vec<u8> = {
                        let injector = self.faults.as_mut().expect("armed");
                        (0..bytes)
                            .map(|_| injector.rng.uniform_bin(256) as u8)
                            .collect()
                    };
                    let conn = self.conns[slot].as_mut().expect("victim exists");
                    conn.injected.extend_from_slice(&garbage);
                }
            }
        }
    }

    /// One event-loop tick: accept pending connections, read and handle
    /// available input (submitting allocation frames through
    /// `dispatcher`), flush queued output, and update the net gauges.
    /// Never blocks. Returns a coarse activity count (bytes moved +
    /// connections accepted); `0` means the tick found nothing to do and
    /// the caller may sleep briefly.
    pub fn poll(&mut self, dispatcher: &Dispatcher) -> u64 {
        let mut activity = self.accept_pending();
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            match self.service_conn(slot, &mut conn, dispatcher, &mut activity) {
                Ok(()) => self.conns[slot] = Some(conn),
                Err(reason) => self.drop_conn(conn, reason),
            }
        }
        if let Some(p) = obs::probes() {
            p.net_connections.set(self.connections() as u64);
            let queued: usize = self.conns.iter().flatten().map(Conn::queued).sum();
            p.net_write_queue_bytes.set(queued as u64);
        }
        activity
    }

    /// Routes one service [`Completion`] back to the connection that
    /// submitted the ticket (dropped silently if that connection is
    /// gone, or if the ticket was submitted by an in-process dispatcher
    /// handle rather than the network).
    pub fn notify(&mut self, completion: &Completion) {
        let Some(pending) = self.tickets.remove(&completion.ticket.id()) else {
            return;
        };
        let Some(conn) = self.conns.get_mut(pending.slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.id != pending.conn_id {
            return; // the slot was reused by a newer connection
        }
        let frame = Frame::Completed {
            ticket: completion.ticket.id(),
            bin: completion.bin,
            admitted_round: completion.admitted_round,
            served_round: completion.served_round,
            waiting_rounds: completion.waiting_rounds,
        };
        if conn.queue_frame(&frame).is_err() {
            let conn = self.conns[pending.slot].take().expect("just borrowed");
            self.drop_conn(conn, DropReason::Write);
            return;
        }
        self.stats.completions_sent += 1;
    }

    fn accept_pending(&mut self) -> u64 {
        let mut accepted = 0;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue; // socket died before use
                    }
                    if self.connections() >= MAX_CONNS {
                        drop(stream);
                        continue;
                    }
                    let conn = Conn {
                        stream,
                        id: self.next_conn_id,
                        state: ConnState::Sniffing(Vec::with_capacity(4)),
                        outbuf: Vec::new(),
                        out_pos: 0,
                        close_after_flush: false,
                        read_stalled_until: 0,
                        write_stalled_until: 0,
                        tokens: self
                            .admission
                            .as_ref()
                            .map_or(u32::MAX, |policy| policy.quota_burst),
                        injected: Vec::new(),
                    };
                    self.next_conn_id += 1;
                    self.stats.accepted_conns += 1;
                    accepted += 1;
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    if let Some(p) = obs::probes() {
                        p.net_accept_errors.inc();
                    }
                    break;
                }
            }
        }
        accepted
    }

    /// Reads, handles, and flushes one connection. `Err` means the
    /// connection must be dropped.
    fn service_conn(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        dispatcher: &Dispatcher,
        activity: &mut u64,
    ) -> Result<(), DropReason> {
        // Fault-injected bytes enter the pipeline exactly as socket reads
        // would (and are not suppressed by a read stall — they model the
        // peer having already sent them).
        if !conn.injected.is_empty() {
            let injected = std::mem::take(&mut conn.injected);
            *activity += injected.len() as u64;
            self.ingest(slot, conn, &injected, dispatcher)?;
        }
        let mut buf = [0u8; 4096];
        let mut saw_eof = false;
        let read_stalled = self.round < conn.read_stalled_until;
        if !read_stalled {
            for _ in 0..READS_PER_POLL {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(k) => {
                        *activity += k as u64;
                        if let Some(p) = obs::probes() {
                            p.net_bytes_read.add(k as u64);
                        }
                        self.ingest(slot, conn, &buf[..k], dispatcher)?;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        if let Some(p) = obs::probes() {
                            p.net_read_errors.inc();
                        }
                        return Err(DropReason::Read);
                    }
                }
            }
        }
        if self.round >= conn.write_stalled_until {
            let budget = self
                .faults
                .as_ref()
                .and_then(|inj| inj.write_budget)
                .filter(|&(until, _)| self.round <= until)
                .map(|(_, max_bytes)| max_bytes);
            flush(conn, activity, budget)?;
        }
        if saw_eof {
            // Peer finished sending. Keep the connection only if a reply
            // is still draining; completions for a half-closed peer are
            // undeliverable anyway once the flush is done.
            if conn.queued() == 0 {
                return Err(DropReason::Eof);
            }
            conn.state = ConnState::Draining;
            conn.close_after_flush = true;
        }
        if conn.close_after_flush && conn.queued() == 0 {
            return Err(DropReason::Done);
        }
        Ok(())
    }

    fn ingest(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        mut bytes: &[u8],
        dispatcher: &Dispatcher,
    ) -> Result<(), DropReason> {
        if let ConnState::Sniffing(preface) = &mut conn.state {
            let need = 4 - preface.len();
            let take = need.min(bytes.len());
            preface.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if preface.len() < 4 {
                return Ok(());
            }
            if preface[..4] == proto::MAGIC {
                conn.state = ConnState::Wire(FrameDecoder::new());
            } else if &preface[..4] == b"GET " {
                let head = std::mem::take(preface);
                conn.state = ConnState::Http(head);
            } else {
                return Err(DropReason::Proto);
            }
        }
        let frames = match &mut conn.state {
            ConnState::Sniffing(_) => unreachable!("resolved above"),
            ConnState::Wire(decoder) => {
                decoder.push(bytes);
                let mut frames = Vec::new();
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => frames.push(frame),
                        Ok(None) => break,
                        Err(_) => return Err(DropReason::Proto),
                    }
                }
                frames
            }
            ConnState::Http(head) => {
                head.extend_from_slice(bytes);
                if head.len() > MAX_HTTP_HEAD {
                    return Err(DropReason::Proto);
                }
                if let Some(end) = find_head_end(head) {
                    let request = String::from_utf8_lossy(&head[..end]);
                    let path = request.split_whitespace().nth(1).unwrap_or("");
                    let response = if path == "/metrics" || path.starts_with("/metrics?") {
                        self.stats.scrapes += 1;
                        if let Some(p) = obs::probes() {
                            p.net_scrapes.inc();
                        }
                        iba_obs::expo::http_metrics_response(iba_obs::global())
                    } else {
                        iba_obs::expo::http_not_found()
                    };
                    conn.outbuf.extend_from_slice(&response);
                    conn.state = ConnState::Draining;
                    conn.close_after_flush = true;
                }
                return Ok(());
            }
            ConnState::Draining => return Ok(()),
        };
        for frame in frames {
            self.stats.frames += 1;
            if let Some(p) = obs::probes() {
                p.net_frames.inc();
            }
            let Frame::Alloc { req_id } = frame else {
                return Err(DropReason::Proto); // server-only opcode
            };
            let reply = self.admit_alloc(slot, conn, req_id, dispatcher);
            conn.queue_frame(&reply)?;
        }
        Ok(())
    }

    /// Decides one allocation request: drain refusal, then quota, then
    /// probabilistic shed, then the dispatcher itself.
    fn admit_alloc(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        req_id: u64,
        dispatcher: &Dispatcher,
    ) -> Frame {
        if self.draining {
            self.stats.allocs_drained += 1;
            if let Some(p) = obs::probes() {
                p.net_allocs_drained.inc();
            }
            return Frame::Closed {
                req_id,
                reason: CloseReason::Drain,
            };
        }
        if let Some(policy) = &self.admission {
            if policy.quota_per_round.is_some() {
                if conn.tokens == 0 {
                    self.stats.allocs_quota += 1;
                    if let Some(p) = obs::probes() {
                        p.net_allocs_quota.inc();
                    }
                    return Frame::Closed {
                        req_id,
                        reason: CloseReason::Quota,
                    };
                }
                conn.tokens -= 1;
            }
            let p_shed = policy.shed_probability(dispatcher.fill_ratio());
            if p_shed > 0.0 && self.shed_rng.bernoulli(p_shed) {
                self.stats.allocs_shed += 1;
                if let Some(p) = obs::probes() {
                    p.net_allocs_shed.inc();
                }
                return Frame::Saturated { req_id };
            }
        }
        match dispatcher.submit() {
            Ok(ticket) => {
                self.tickets.insert(
                    ticket.id(),
                    PendingTicket {
                        slot,
                        conn_id: conn.id,
                    },
                );
                self.stats.allocs_accepted += 1;
                Frame::Accepted {
                    req_id,
                    ticket: ticket.id(),
                }
            }
            Err(SubmitError::Saturated) => {
                self.stats.allocs_saturated += 1;
                Frame::Saturated { req_id }
            }
            Err(SubmitError::Closed) => {
                self.stats.allocs_closed += 1;
                Frame::Closed {
                    req_id,
                    reason: CloseReason::Shutdown,
                }
            }
        }
    }

    fn drop_conn(&mut self, mut conn: Conn, reason: DropReason) {
        match reason {
            DropReason::Proto => self.stats.proto_errors += 1,
            DropReason::Fault => self.stats.conns_dropped_by_fault += 1,
            DropReason::SlowConsumer => {
                self.stats.slow_consumer_drops += 1;
                // Best-effort typed close so a well-behaved peer learns
                // *why* it was cut (req_id 0 = connection-level).
                let frame = Frame::Closed {
                    req_id: 0,
                    reason: CloseReason::SlowConsumer,
                };
                let mut bytes = Vec::new();
                frame.encode_into(&mut bytes);
                let _ = conn.stream.write(&bytes);
            }
            _ => {}
        }
        if let Some(p) = obs::probes() {
            match reason {
                DropReason::Proto => p.net_proto_errors.inc(),
                DropReason::Write | DropReason::SlowConsumer => p.net_write_errors.inc(),
                DropReason::Fault => p.net_conns_dropped_by_fault.inc(),
                DropReason::Eof | DropReason::Done | DropReason::Read => {}
            }
        }
        drop(conn);
    }
}

/// Writes as much queued output as the socket accepts right now, capped
/// at `budget` bytes when a partial-write throttle is active.
fn flush(conn: &mut Conn, activity: &mut u64, budget: Option<usize>) -> Result<(), DropReason> {
    let limit = budget.map_or(conn.outbuf.len(), |b| {
        conn.outbuf.len().min(conn.out_pos + b)
    });
    while conn.out_pos < limit {
        match conn.stream.write(&conn.outbuf[conn.out_pos..limit]) {
            Ok(0) => return Err(DropReason::Write),
            Ok(k) => {
                conn.out_pos += k;
                *activity += k as u64;
                if let Some(p) = obs::probes() {
                    p.net_bytes_written.add(k as u64);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                if let Some(p) = obs::probes() {
                    p.net_write_errors.inc();
                }
                return Err(DropReason::Write);
            }
        }
    }
    if conn.out_pos == conn.outbuf.len() && conn.out_pos > 0 {
        conn.outbuf.clear();
        conn.out_pos = 0;
    }
    Ok(())
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// Options for [`run_net_loop`].
#[derive(Debug, Clone)]
pub struct NetLoopOptions {
    /// Rounds to run before returning (`u64::MAX` ≈ run until `stop`).
    pub max_rounds: u64,
    /// Wall-clock spacing between rounds; I/O is polled continuously in
    /// between. `Duration::ZERO` runs rounds back-to-back with one poll
    /// tick per round.
    pub round_interval: Duration,
    /// Base sleep applied when a poll tick finds no work. Consecutive
    /// idle ticks back off exponentially from this base up to
    /// [`MAX_IDLE_BACKOFF_SHIFT`] doublings, bounding idle CPU without
    /// adding latency under load (any activity resets the backoff).
    pub idle_sleep: Duration,
    /// On exit (rounds exhausted or `stop` set), enter drain mode and
    /// keep running rounds until every owed completion has been
    /// delivered and flushed, or `max_drain_rounds` elapse.
    pub drain_on_stop: bool,
    /// Upper bound on extra rounds spent draining.
    pub max_drain_rounds: u64,
}

/// Cap on the exponential idle backoff: the idle sleep doubles at most
/// this many times (`16×` the configured base).
pub const MAX_IDLE_BACKOFF_SHIFT: u32 = 4;

impl Default for NetLoopOptions {
    fn default() -> Self {
        NetLoopOptions {
            max_rounds: u64::MAX,
            round_interval: Duration::from_micros(500),
            idle_sleep: Duration::from_micros(100),
            drain_on_stop: false,
            max_drain_rounds: 10_000,
        }
    }
}

/// What [`run_net_loop`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetLoopSummary {
    /// Rounds executed (not counting drain rounds).
    pub rounds_run: u64,
    /// Completions routed to network clients.
    pub completions_delivered: u64,
    /// Poll ticks that found no work (idle iterations).
    pub idle_polls: u64,
    /// Extra rounds spent in drain mode after the stop condition.
    pub drain_rounds: u64,
}

/// Drives the service and the front end on the calling thread: each
/// iteration advances the front end's round clock (quota refills + armed
/// faults), polls I/O until the round interval elapses, runs one round,
/// routes the round's completions back to their connections, and
/// flushes. Returns after `opts.max_rounds` rounds or as soon as `stop`
/// is set — after an orderly drain first if `opts.drain_on_stop` is set.
///
/// Idle poll ticks sleep with a bounded exponential backoff (base
/// `opts.idle_sleep`, capped at 2^[`MAX_IDLE_BACKOFF_SHIFT`]× that) so
/// an idle front end costs near-zero CPU even with
/// `round_interval == ZERO`; any byte of activity resets the backoff.
///
/// `completions` must be the receiver taken from the same `service`
/// ([`CappedService::take_completions`]).
pub fn run_net_loop(
    service: &mut CappedService,
    frontend: &mut NetFrontend,
    completions: &Receiver<Completion>,
    opts: &NetLoopOptions,
    stop: &AtomicBool,
) -> NetLoopSummary {
    let dispatcher = service.dispatcher();
    let mut summary = NetLoopSummary {
        rounds_run: 0,
        completions_delivered: 0,
        idle_polls: 0,
        drain_rounds: 0,
    };
    let mut idle_streak: u32 = 0;
    let one_round = |service: &mut CappedService,
                     frontend: &mut NetFrontend,
                     summary: &mut NetLoopSummary,
                     idle_streak: &mut u32| {
        frontend.on_round(service.round() + 1);
        let deadline = Instant::now() + opts.round_interval;
        loop {
            let activity = frontend.poll(&dispatcher);
            if activity == 0 {
                summary.idle_polls += 1;
                *idle_streak = (*idle_streak).saturating_add(1);
                if let Some(p) = obs::probes() {
                    p.net_idle_polls.inc();
                }
            } else {
                *idle_streak = 0;
            }
            let now = Instant::now();
            if now >= deadline || stop.load(Ordering::Relaxed) {
                break;
            }
            if activity == 0 && !opts.idle_sleep.is_zero() {
                let shift = (*idle_streak).min(MAX_IDLE_BACKOFF_SHIFT);
                let backoff = opts.idle_sleep * (1u32 << shift);
                std::thread::sleep(backoff.min(deadline - now));
            }
        }
        service.run_round();
        for id in service.drain_expired_tickets() {
            frontend.forget_ticket(id);
        }
        while let Ok(completion) = completions.try_recv() {
            frontend.notify(&completion);
            summary.completions_delivered += 1;
        }
        frontend.poll(&dispatcher);
        // Back-to-back rounds with a fully idle front end: bound the CPU
        // burned advancing an empty clock.
        if opts.round_interval.is_zero() && *idle_streak > 0 && !opts.idle_sleep.is_zero() {
            let shift = (*idle_streak).min(MAX_IDLE_BACKOFF_SHIFT);
            std::thread::sleep(opts.idle_sleep * (1u32 << shift));
        }
    };
    while summary.rounds_run < opts.max_rounds && !stop.load(Ordering::Relaxed) {
        one_round(service, frontend, &mut summary, &mut idle_streak);
        summary.rounds_run += 1;
    }
    if opts.drain_on_stop {
        frontend.begin_drain();
        while !frontend.drained() && summary.drain_rounds < opts.max_drain_rounds {
            one_round(service, frontend, &mut summary, &mut idle_streak);
            summary.drain_rounds += 1;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_reports_resolved_addr_and_empty_state() {
        let frontend = NetFrontend::bind("127.0.0.1:0").unwrap();
        assert_ne!(frontend.local_addr().port(), 0);
        assert_eq!(frontend.connections(), 0);
        assert_eq!(frontend.pending_tickets(), 0);
        assert_eq!(frontend.stats(), NetStats::default());
    }

    #[test]
    fn head_end_finder() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }
}
