//! Live metrics export: point-in-time service snapshots and their
//! JSON-lines encoding.
//!
//! The service accumulates an exact waiting-time histogram and per-shard
//! load statistics as rounds execute; [`ServeSnapshot`] captures them at
//! one instant and [`ServeSnapshot::to_json_line`] renders the snapshot
//! as one line of JSON through the workspace's shared writer
//! ([`iba_obs::json`]), stamped with the current
//! [`schema version`](iba_obs::json::SCHEMA_VERSION), suitable for
//! appending to a metrics log and ingesting with any JSONL tool.

use iba_core::metrics::WaitQuantiles;
use iba_obs::json::JsonObjWriter;

/// A point-in-time view of a running [`CappedService`]
/// (see [`CappedService::snapshot`]).
///
/// [`CappedService`]: crate::service::CappedService
/// [`CappedService::snapshot`]: crate::service::CappedService::snapshot
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Last completed round.
    pub round: u64,
    /// Live bin count after that round (elastic membership moves this at
    /// runtime; equals the configured `n` for non-elastic services).
    pub bins: u64,
    /// Pool size (balls awaiting allocation) after that round.
    pub pool_size: u64,
    /// Total balls in bin buffers across all shards.
    pub buffered: u64,
    /// Maximum bin load per shard, in shard order.
    pub shard_max_load: Vec<u64>,
    /// Lifetime count of balls entering the system (model arrivals,
    /// admitted requests, and fault surges).
    pub total_generated: u64,
    /// Lifetime count of client requests admitted from the ingress queue.
    pub total_admitted: u64,
    /// Lifetime count of served (deleted) balls.
    pub total_served: u64,
    /// Exact waiting-time quantiles over every ball served so far
    /// (`None` until the first service).
    pub wait: Option<WaitQuantiles>,
}

impl ServeSnapshot {
    /// Renders the snapshot as one JSON line (no trailing newline),
    /// leading with the shared `schema` version field.
    ///
    /// # Examples
    ///
    /// ```
    /// use iba_serve::metrics::ServeSnapshot;
    /// let snap = ServeSnapshot {
    ///     round: 3,
    ///     bins: 16,
    ///     pool_size: 10,
    ///     buffered: 4,
    ///     shard_max_load: vec![2, 1],
    ///     total_generated: 50,
    ///     total_admitted: 50,
    ///     total_served: 36,
    ///     wait: None,
    /// };
    /// assert!(snap.to_json_line().starts_with("{\"schema\":1,\"round\":3,"));
    /// ```
    pub fn to_json_line(&self) -> String {
        let mut w = JsonObjWriter::with_schema();
        w.field_u64("round", self.round);
        w.field_u64("bins", self.bins);
        w.field_u64("pool_size", self.pool_size);
        w.field_u64("buffered", self.buffered);
        w.field_u64_array("shard_max_load", &self.shard_max_load);
        w.field_u64("total_generated", self.total_generated);
        w.field_u64("total_admitted", self.total_admitted);
        w.field_u64("total_served", self.total_served);
        match &self.wait {
            None => w.field_null("wait"),
            Some(q) => {
                let mut wait = JsonObjWriter::new();
                wait.field_u64("count", q.count);
                wait.field_f64_fixed("mean", q.mean, 6);
                wait.field_u64("p50", q.p50);
                wait.field_u64("p99", q.p99);
                wait.field_u64("p999", q.p999);
                wait.field_u64("max", q.max);
                w.field_raw("wait", &wait.finish());
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_sim::stats::Histogram;

    fn snapshot(wait: Option<WaitQuantiles>) -> ServeSnapshot {
        ServeSnapshot {
            round: 12,
            bins: 24,
            pool_size: 345,
            buffered: 67,
            shard_max_load: vec![2, 0, 1],
            total_generated: 1000,
            total_admitted: 900,
            total_served: 800,
            wait,
        }
    }

    #[test]
    fn json_line_without_quantiles() {
        let line = snapshot(None).to_json_line();
        assert_eq!(
            line,
            "{\"schema\":1,\"round\":12,\"bins\":24,\"pool_size\":345,\"buffered\":67,\
             \"shard_max_load\":[2,0,1],\"total_generated\":1000,\
             \"total_admitted\":900,\"total_served\":800,\"wait\":null}"
        );
    }

    #[test]
    fn json_line_with_quantiles_parses() {
        let hist: Histogram = (0..100).collect();
        let q = WaitQuantiles::from_histogram(&hist).unwrap();
        let line = snapshot(Some(q)).to_json_line();
        assert!(line.contains("\"p999\":"));
        assert!(line.contains("\"mean\":49.5"));
        assert!(!line.contains('\n'));
        // Structurally valid per the shared parser, with the schema stamp.
        let v = iba_obs::json::parse(&line).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_u64()),
            Some(iba_obs::json::SCHEMA_VERSION)
        );
        let wait = v.get("wait").unwrap();
        assert_eq!(wait.get("count").and_then(|c| c.as_u64()), Some(100));
        assert_eq!(wait.get("mean").and_then(|m| m.as_f64()), Some(49.5));
    }
}
