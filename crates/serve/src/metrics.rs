//! Live metrics export: point-in-time service snapshots and their
//! JSON-lines encoding.
//!
//! The service accumulates an exact waiting-time histogram and per-shard
//! load statistics as rounds execute; [`ServeSnapshot`] captures them at
//! one instant and [`ServeSnapshot::to_json_line`] renders the snapshot
//! as one line of JSON (hand-rolled — the build environment is std-only)
//! suitable for appending to a metrics log and ingesting with any JSONL
//! tool.

use std::fmt::Write as _;

use iba_core::metrics::WaitQuantiles;

/// A point-in-time view of a running [`CappedService`]
/// (see [`CappedService::snapshot`]).
///
/// [`CappedService`]: crate::service::CappedService
/// [`CappedService::snapshot`]: crate::service::CappedService::snapshot
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Last completed round.
    pub round: u64,
    /// Pool size (balls awaiting allocation) after that round.
    pub pool_size: u64,
    /// Total balls in bin buffers across all shards.
    pub buffered: u64,
    /// Maximum bin load per shard, in shard order.
    pub shard_max_load: Vec<u64>,
    /// Lifetime count of balls entering the system (model arrivals,
    /// admitted requests, and fault surges).
    pub total_generated: u64,
    /// Lifetime count of client requests admitted from the ingress queue.
    pub total_admitted: u64,
    /// Lifetime count of served (deleted) balls.
    pub total_served: u64,
    /// Exact waiting-time quantiles over every ball served so far
    /// (`None` until the first service).
    pub wait: Option<WaitQuantiles>,
}

impl ServeSnapshot {
    /// Renders the snapshot as one JSON line (no trailing newline).
    ///
    /// # Examples
    ///
    /// ```
    /// use iba_serve::metrics::ServeSnapshot;
    /// let snap = ServeSnapshot {
    ///     round: 3,
    ///     pool_size: 10,
    ///     buffered: 4,
    ///     shard_max_load: vec![2, 1],
    ///     total_generated: 50,
    ///     total_admitted: 50,
    ///     total_served: 36,
    ///     wait: None,
    /// };
    /// assert!(snap.to_json_line().starts_with("{\"round\":3,"));
    /// ```
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(192);
        let _ = write!(
            out,
            "{{\"round\":{},\"pool_size\":{},\"buffered\":{},\"shard_max_load\":[",
            self.round, self.pool_size, self.buffered
        );
        for (i, load) in self.shard_max_load.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{load}");
        }
        let _ = write!(
            out,
            "],\"total_generated\":{},\"total_admitted\":{},\"total_served\":{}",
            self.total_generated, self.total_admitted, self.total_served
        );
        match &self.wait {
            None => out.push_str(",\"wait\":null}"),
            Some(q) => {
                let _ = write!(
                    out,
                    ",\"wait\":{{\"count\":{},\"mean\":{:.6},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}}}}",
                    q.count, q.mean, q.p50, q.p99, q.p999, q.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_sim::stats::Histogram;

    fn snapshot(wait: Option<WaitQuantiles>) -> ServeSnapshot {
        ServeSnapshot {
            round: 12,
            pool_size: 345,
            buffered: 67,
            shard_max_load: vec![2, 0, 1],
            total_generated: 1000,
            total_admitted: 900,
            total_served: 800,
            wait,
        }
    }

    #[test]
    fn json_line_without_quantiles() {
        let line = snapshot(None).to_json_line();
        assert_eq!(
            line,
            "{\"round\":12,\"pool_size\":345,\"buffered\":67,\
             \"shard_max_load\":[2,0,1],\"total_generated\":1000,\
             \"total_admitted\":900,\"total_served\":800,\"wait\":null}"
        );
    }

    #[test]
    fn json_line_with_quantiles_is_balanced() {
        let hist: Histogram = (0..100).collect();
        let q = WaitQuantiles::from_histogram(&hist).unwrap();
        let line = snapshot(Some(q)).to_json_line();
        assert!(line.contains("\"p999\":"));
        assert!(line.contains("\"mean\":49.5"));
        // Structurally valid: braces and brackets balance, line ends the
        // object it opened.
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "{line}"
        );
        assert_eq!(line.matches('[').count(), line.matches(']').count());
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
    }
}
