//! The length-prefixed wire protocol of the TCP front end.
//!
//! A connection that wants to speak the allocation protocol opens with the
//! 4-byte magic preface [`MAGIC`] (`b"IBA1"`); the listener sniffs this
//! preface to distinguish protocol clients from HTTP scrapers on the same
//! port. After the preface the stream is a sequence of frames:
//!
//! ```text
//! +----------------+--------+--------------------------+
//! | u32 LE length  | opcode | fields (u64 LE each)     |
//! +----------------+--------+--------------------------+
//!        4 bytes      1 byte     8 bytes per field
//! ```
//!
//! The length covers the opcode byte plus the fields, so every frame is
//! `4 + 1 + 8k` bytes on the wire. Clients send [`Frame::Alloc`]; the
//! server answers each allocation with exactly one of
//! [`Frame::Accepted`], [`Frame::Saturated`] (ingress backpressure — the
//! request was shed, resubmit to retry) or [`Frame::Closed`], and later
//! streams one [`Frame::Completed`] per accepted ticket when its ball is
//! served by a bin.
//!
//! Decoding is incremental ([`FrameDecoder`]): bytes are pushed as they
//! arrive off a non-blocking socket and frames are popped once complete.
//! Truncated input is never an error — the decoder just waits for more
//! bytes — while structurally invalid input (oversized length, unknown
//! opcode, a length that does not match the opcode's field count) is
//! rejected with a [`ProtoError`] so the connection can be dropped.

use std::error::Error;
use std::fmt;

/// The connection preface identifying the allocation protocol (version 1).
pub const MAGIC: [u8; 4] = *b"IBA1";

/// Upper bound on the declared frame length (opcode + fields). The
/// largest real frame ([`Frame::Completed`]) is 41 bytes; anything larger
/// is garbage and rejected before buffering.
pub const MAX_FRAME_LEN: u32 = 64;

/// Why the server refused a request with [`Frame::Closed`] (and, for
/// request id 0, why it is about to hang up the connection).
///
/// The reason travels as a second `u64` field on the `Closed` frame.
/// Version tolerance is deliberate in both directions: decoders accept a
/// reason-less 9-byte `Closed` from old peers (defaulting to
/// [`CloseReason::Shutdown`]), and unknown future codes also map to
/// `Shutdown` — the conservative reading, since every reason means "stop
/// sending on this connection".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CloseReason {
    /// The service has shut down; no further requests will ever be
    /// accepted.
    #[default]
    Shutdown,
    /// The server is draining: it stops admitting but still flushes
    /// in-flight completions. Retry against another instance.
    Drain,
    /// The connection exceeded its per-connection admission quota this
    /// round. Back off and retry.
    Quota,
    /// The peer stopped reading and its outbound queue overflowed.
    SlowConsumer,
}

impl CloseReason {
    /// The wire code for this reason.
    pub fn code(self) -> u64 {
        match self {
            CloseReason::Shutdown => 0,
            CloseReason::Drain => 1,
            CloseReason::Quota => 2,
            CloseReason::SlowConsumer => 3,
        }
    }

    /// Decodes a wire code; unknown codes map to [`CloseReason::Shutdown`]
    /// so newer servers can add reasons without breaking old clients.
    pub fn from_code(code: u64) -> Self {
        match code {
            1 => CloseReason::Drain,
            2 => CloseReason::Quota,
            3 => CloseReason::SlowConsumer,
            _ => CloseReason::Shutdown,
        }
    }
}

impl fmt::Display for CloseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CloseReason::Shutdown => "shutdown",
            CloseReason::Drain => "drain",
            CloseReason::Quota => "quota",
            CloseReason::SlowConsumer => "slow-consumer",
        })
    }
}

/// One protocol frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: submit one allocation request. `req_id` is chosen
    /// by the client and echoed verbatim in the admission reply.
    Alloc {
        /// Client-chosen request correlation id.
        req_id: u64,
    },
    /// Server → client: the request was admitted; `ticket` identifies the
    /// eventual [`Frame::Completed`] notification.
    Accepted {
        /// Echo of the client's request id.
        req_id: u64,
        /// Service-assigned ticket id ([`crate::Ticket`]).
        ticket: u64,
    },
    /// Server → client: the bounded ingress queue was full — the request
    /// was shed (open-loop backpressure). Resubmit to retry.
    Saturated {
        /// Echo of the client's request id.
        req_id: u64,
    },
    /// Server → client: the request was refused and will never be
    /// admitted on this connection; [`CloseReason`] says why (shed vs
    /// drain vs shutdown) so clients can pick a retry strategy.
    Closed {
        /// Echo of the client's request id (0 when the close is not tied
        /// to a specific request, e.g. a slow-consumer disconnect).
        req_id: u64,
        /// Why the server refused.
        reason: CloseReason,
    },
    /// Server → client: the ticket's ball was served.
    Completed {
        /// The ticket from the matching [`Frame::Accepted`].
        ticket: u64,
        /// Global index of the bin that served the request.
        bin: u64,
        /// Round in which the request was admitted into the pool.
        admitted_round: u64,
        /// Round in which a bin served the request.
        served_round: u64,
        /// `served_round − admitted_round` — the paper's waiting time.
        waiting_rounds: u64,
    },
}

const OP_ALLOC: u8 = 1;
const OP_ACCEPTED: u8 = 2;
const OP_SATURATED: u8 = 3;
const OP_CLOSED: u8 = 4;
const OP_COMPLETED: u8 = 5;

/// Canonical payload length (opcode byte + fields) for `opcode` as
/// encoded by this version, or `None` if the opcode is unknown.
///
/// `Closed` is special: this version encodes it with a reason field
/// (17 bytes), but the decoder also accepts the legacy 9-byte form from
/// peers predating [`CloseReason`].
pub fn payload_len(opcode: u8) -> Option<u32> {
    match opcode {
        OP_ALLOC | OP_SATURATED => Some(1 + 8),
        OP_ACCEPTED | OP_CLOSED => Some(1 + 2 * 8),
        OP_COMPLETED => Some(1 + 5 * 8),
        _ => None,
    }
}

/// Legacy reason-less `Closed` payload length, still accepted on decode.
const CLOSED_LEGACY_LEN: u32 = 1 + 8;

impl Frame {
    /// The frame's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Frame::Alloc { .. } => OP_ALLOC,
            Frame::Accepted { .. } => OP_ACCEPTED,
            Frame::Saturated { .. } => OP_SATURATED,
            Frame::Closed { .. } => OP_CLOSED,
            Frame::Completed { .. } => OP_COMPLETED,
        }
    }

    /// Appends the encoded frame (length prefix + opcode + fields) to
    /// `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let fields: &[u64] = match *self {
            Frame::Alloc { req_id } => &[req_id],
            Frame::Accepted { req_id, ticket } => &[req_id, ticket],
            Frame::Saturated { req_id } => &[req_id],
            Frame::Closed { req_id, reason } => &[req_id, reason.code()],
            Frame::Completed {
                ticket,
                bin,
                admitted_round,
                served_round,
                waiting_rounds,
            } => &[ticket, bin, admitted_round, served_round, waiting_rounds],
        };
        let len = 1 + 8 * fields.len() as u32;
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.opcode());
        for field in fields {
            out.extend_from_slice(&field.to_le_bytes());
        }
    }

    /// The encoded frame as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 5 * 8);
        self.encode_into(&mut out);
        out
    }
}

/// A structural wire-protocol violation. Any of these means the peer is
/// not speaking the protocol; the connection should be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The declared frame length exceeds [`MAX_FRAME_LEN`].
    Oversize {
        /// The declared length.
        len: u32,
    },
    /// The declared frame length was zero (no opcode byte).
    EmptyFrame,
    /// The opcode byte is not a known frame type.
    UnknownOpcode(u8),
    /// The declared length does not match the opcode's field count.
    BadLength {
        /// The frame's opcode.
        opcode: u8,
        /// The declared length.
        len: u32,
        /// The length the opcode requires.
        expected: u32,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Oversize { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            ProtoError::EmptyFrame => write!(f, "zero-length frame (no opcode)"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtoError::BadLength {
                opcode,
                len,
                expected,
            } => write!(
                f,
                "opcode {opcode} declares length {len}, requires {expected}"
            ),
        }
    }
}

impl Error for ProtoError {}

/// Incremental frame decoder for a non-blocking byte stream.
///
/// Push bytes as they arrive ([`push`](Self::push)), pop complete frames
/// with [`next_frame`](Self::next_frame). Arbitrary chunking — including
/// one byte at a time — decodes identically to a single contiguous push
/// (property-tested in `tests/proto_props.rs`).
///
/// # Examples
///
/// ```
/// use iba_serve::proto::{Frame, FrameDecoder};
///
/// let mut decoder = FrameDecoder::new();
/// let bytes = Frame::Alloc { req_id: 7 }.encode();
/// decoder.push(&bytes[..3]); // truncated: not an error, just incomplete
/// assert_eq!(decoder.next_frame(), Ok(None));
/// decoder.push(&bytes[3..]);
/// assert_eq!(decoder.next_frame(), Ok(Some(Frame::Alloc { req_id: 7 })));
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes received from the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so the buffer stays
        // bounded by one frame plus one socket read.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, if any.
    ///
    /// `Ok(None)` means the buffered bytes are a valid (possibly empty)
    /// prefix — push more and retry.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on a structural violation. The decoder is not
    /// usable after an error (the stream has no recoverable framing);
    /// drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len == 0 {
            return Err(ProtoError::EmptyFrame);
        }
        if len > MAX_FRAME_LEN {
            return Err(ProtoError::Oversize { len });
        }
        // Validate the header before waiting for the body, so garbage is
        // rejected as early as the opcode arrives.
        if avail.len() < 5 {
            return Ok(None);
        }
        let opcode = avail[4];
        let expected = payload_len(opcode).ok_or(ProtoError::UnknownOpcode(opcode))?;
        // Version tolerance: a reason-less Closed from an old peer is
        // still a valid frame (the reason defaults to Shutdown).
        let legacy_closed = opcode == OP_CLOSED && len == CLOSED_LEGACY_LEN;
        if len != expected && !legacy_closed {
            return Err(ProtoError::BadLength {
                opcode,
                len,
                expected,
            });
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let mut fields = [0u64; 5];
        for (i, chunk) in avail[5..total].chunks_exact(8).enumerate() {
            fields[i] = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        }
        self.pos += total;
        let frame = match opcode {
            OP_ALLOC => Frame::Alloc { req_id: fields[0] },
            OP_ACCEPTED => Frame::Accepted {
                req_id: fields[0],
                ticket: fields[1],
            },
            OP_SATURATED => Frame::Saturated { req_id: fields[0] },
            OP_CLOSED => Frame::Closed {
                req_id: fields[0],
                reason: if legacy_closed {
                    CloseReason::Shutdown
                } else {
                    CloseReason::from_code(fields[1])
                },
            },
            OP_COMPLETED => Frame::Completed {
                ticket: fields[0],
                bin: fields[1],
                admitted_round: fields[2],
                served_round: fields[3],
                waiting_rounds: fields[4],
            },
            _ => unreachable!("payload_len vetted the opcode"),
        };
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Alloc { req_id: 0 },
            Frame::Alloc { req_id: u64::MAX },
            Frame::Accepted {
                req_id: 7,
                ticket: 99,
            },
            Frame::Saturated { req_id: 3 },
            Frame::Closed {
                req_id: 4,
                reason: CloseReason::Shutdown,
            },
            Frame::Closed {
                req_id: 5,
                reason: CloseReason::Drain,
            },
            Frame::Closed {
                req_id: 6,
                reason: CloseReason::Quota,
            },
            Frame::Closed {
                req_id: 0,
                reason: CloseReason::SlowConsumer,
            },
            Frame::Completed {
                ticket: 99,
                bin: 12,
                admitted_round: 5,
                served_round: 9,
                waiting_rounds: 4,
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut decoder = FrameDecoder::new();
        let mut wire = Vec::new();
        for frame in all_frames() {
            frame.encode_into(&mut wire);
        }
        decoder.push(&wire);
        for frame in all_frames() {
            assert_eq!(decoder.next_frame(), Ok(Some(frame)));
        }
        assert_eq!(decoder.next_frame(), Ok(None));
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn truncated_prefix_is_incomplete_not_an_error() {
        let bytes = Frame::Completed {
            ticket: 1,
            bin: 2,
            admitted_round: 3,
            served_round: 4,
            waiting_rounds: 1,
        }
        .encode();
        for cut in 0..bytes.len() {
            let mut decoder = FrameDecoder::new();
            decoder.push(&bytes[..cut]);
            assert_eq!(decoder.next_frame(), Ok(None), "cut at {cut}");
        }
    }

    #[test]
    fn legacy_reasonless_closed_decodes_as_shutdown() {
        // A 9-byte Closed as emitted by peers predating CloseReason.
        let mut wire = Vec::new();
        wire.extend_from_slice(&9u32.to_le_bytes());
        wire.push(OP_CLOSED);
        wire.extend_from_slice(&42u64.to_le_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire);
        assert_eq!(
            decoder.next_frame(),
            Ok(Some(Frame::Closed {
                req_id: 42,
                reason: CloseReason::Shutdown,
            }))
        );
        assert_eq!(decoder.next_frame(), Ok(None));
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn unknown_close_reason_code_maps_to_shutdown() {
        // A future server sends a reason code this binary has never heard
        // of; the conservative reading is Shutdown, not a decode error.
        let mut wire = Vec::new();
        wire.extend_from_slice(&17u32.to_le_bytes());
        wire.push(OP_CLOSED);
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.extend_from_slice(&999u64.to_le_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire);
        assert_eq!(
            decoder.next_frame(),
            Ok(Some(Frame::Closed {
                req_id: 9,
                reason: CloseReason::Shutdown,
            }))
        );
        assert_eq!(
            CloseReason::from_code(CloseReason::Quota.code()),
            CloseReason::Quota
        );
        for reason in [
            CloseReason::Shutdown,
            CloseReason::Drain,
            CloseReason::Quota,
            CloseReason::SlowConsumer,
        ] {
            assert_eq!(CloseReason::from_code(reason.code()), reason);
            assert!(!reason.to_string().is_empty());
        }
    }

    #[test]
    fn garbage_is_rejected() {
        let mut oversize = FrameDecoder::new();
        oversize.push(&1_000_000u32.to_le_bytes());
        assert_eq!(
            oversize.next_frame(),
            Err(ProtoError::Oversize { len: 1_000_000 })
        );

        let mut empty = FrameDecoder::new();
        empty.push(&0u32.to_le_bytes());
        assert_eq!(empty.next_frame(), Err(ProtoError::EmptyFrame));

        let mut unknown = FrameDecoder::new();
        unknown.push(&9u32.to_le_bytes());
        unknown.push(&[200]);
        assert_eq!(unknown.next_frame(), Err(ProtoError::UnknownOpcode(200)));

        let mut mismatched = FrameDecoder::new();
        mismatched.push(&17u32.to_le_bytes());
        mismatched.push(&[OP_ALLOC]);
        assert_eq!(
            mismatched.next_frame(),
            Err(ProtoError::BadLength {
                opcode: OP_ALLOC,
                len: 17,
                expected: 9,
            })
        );
    }

    #[test]
    fn byte_at_a_time_decoding_matches_bulk() {
        let mut wire = Vec::new();
        for frame in all_frames() {
            frame.encode_into(&mut wire);
        }
        let mut decoder = FrameDecoder::new();
        let mut seen = Vec::new();
        for &byte in &wire {
            decoder.push(&[byte]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                seen.push(frame);
            }
        }
        assert_eq!(seen, all_frames());
    }

    #[test]
    fn errors_display() {
        assert!(ProtoError::Oversize { len: 70 }.to_string().contains("cap"));
        assert!(ProtoError::EmptyFrame.to_string().contains("zero-length"));
        assert!(ProtoError::UnknownOpcode(9).to_string().contains('9'));
        let e = ProtoError::BadLength {
            opcode: 2,
            len: 9,
            expected: 17,
        };
        assert!(e.to_string().contains("requires 17"));
    }
}
