//! The sharded CAPPED(c, λ) dispatch service.
//!
//! [`CappedService::spawn`] partitions the configured bins into `S`
//! contiguous shards, starts one worker thread per shard, and wires up
//! the admission front end. The driver (the thread calling
//! [`run_round`](CappedService::run_round)) then executes the paper's
//! Algorithm 1 once per call:
//!
//! 1. apply scheduled fault events ([`FaultPlan`] semantics identical to
//!    [`iba_sim::faults::FaultedProcess`]);
//! 2. generate arrivals — the configured arrival model, client requests
//!    admitted from the bounded ingress queue, or both — into the pool;
//! 3. draw one uniform bin per pooled ball (oldest-first) and broadcast
//!    the routed requests to the shard workers over mpsc channels;
//! 4. merge the workers' replies: rejected balls re-enter the global pool
//!    (retrying next round), served balls produce waiting times and
//!    ticket [`Completion`]s.
//!
//! Rejected requests never time out — exactly the paper's pool
//! semantics, which is what makes the service's trajectory provably
//! identical to `CappedProcess` in [`RngMode::Central`].

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender};
use std::thread::JoinHandle;

use iba_analysis::bounds::theorem2_pool_bound;
use iba_core::metrics::WaitQuantiles;
use iba_core::shard::{shard_range, BinShard};
use iba_core::{AcceptancePolicy, Ball, Capacity, CappedConfig, KernelMode, Pool};
use iba_membership::{Autoscaler, MembershipEvent, MembershipPlan};
use iba_sim::codec::{Decoder, Encoder};
use iba_sim::error::ConfigError;
use iba_sim::faults::{FaultEvent, FaultPlan};
use iba_sim::process::RoundReport;
use iba_sim::stats::Histogram;
use iba_sim::{AllocationProcess, SimRng};

use crate::checkpoint::ResumeError;
use crate::dispatch::{Completion, Dispatcher, Ticket};
use crate::metrics::ServeSnapshot;
use crate::obs;
use crate::shard::{worker_loop, FaultOp, ShardCmd, ShardReply, ShardSnapshot};

/// Service checkpoint envelope tag ("IBa SerVe"). The envelope wraps a
/// complete `iba_core::checkpoint` payload (tag `IBA1`) as an opaque byte
/// blob and adds the serve-only state around it: RNG distribution,
/// per-shard RNG streams, the ticket-id watermark, and the pending ticket
/// map. Version 2 appends the membership section (live bin count, shard
/// range ends, balls-moved and membership-event counters) so crash
/// recovery works mid-resize; version-1 envelopes stay readable.
const ENVELOPE_TAG: &str = "IBSV";
/// Current envelope format version.
const ENVELOPE_VERSION: u32 = 2;

/// How randomness is distributed between the driver and the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RngMode {
    /// The driver owns the single RNG stream and consumes it in exactly
    /// the order [`iba_core::process::CappedProcess`] does, making the
    /// service trajectory bit-identical to the bare process under the
    /// same seed (any shard count). Randomness generation is serial.
    Central,
    /// Each worker draws from its own stream, split deterministically
    /// from the master seed ([`SimRng::family`]); the driver keeps the
    /// last stream for arrivals and shard assignment. Scalable, and
    /// statistically equivalent (each ball's bin is still uniform), but
    /// not bit-equal to the bare process.
    #[default]
    PerShard,
}

/// Configuration of a [`CappedService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The CAPPED(c, λ) parameters (must use one choice per ball and the
    /// oldest-first acceptance policy — the paper's process).
    pub capped: CappedConfig,
    /// Number of shards = worker threads (`1..=n`).
    pub shards: usize,
    /// Master seed; every RNG stream in the service derives from it.
    pub seed: u64,
    /// Randomness distribution; see [`RngMode`].
    pub rng_mode: RngMode,
    /// Whether each round also generates the configured arrival model's
    /// balls (in addition to admitted client requests). Enable for
    /// simulator-faithful runs and the differential tests; disable for a
    /// pure request-driven service.
    pub model_arrivals: bool,
    /// Capacity of the bounded ingress queue (backpressure threshold).
    pub ingress_capacity: usize,
    /// Upper bound on client requests admitted per round; `None` drains
    /// the whole ingress queue every round.
    pub max_admit_per_round: Option<u64>,
    /// Rounds an admitted ticket may wait before the service reaps its
    /// completion-notification state (the client's deadline has long
    /// passed; the ball itself still gets served — paper semantics are
    /// untouched). `None` keeps tickets forever.
    pub ticket_ttl_rounds: Option<u64>,
    /// Acceptance kernel every shard runs (see [`KernelMode`]). All
    /// variants are bit-exact; within a shard `ArenaParallel` runs the
    /// same SWAR sweep as `ArenaSimd` because the service's parallelism
    /// is already one thread per shard.
    pub kernel: KernelMode,
}

impl ServiceConfig {
    /// Creates a configuration with the defaults: per-shard RNG, no model
    /// arrivals (request-driven), ingress capacity 65 536, unbounded
    /// per-round admission.
    pub fn new(capped: CappedConfig, shards: usize, seed: u64) -> Self {
        ServiceConfig {
            capped,
            shards,
            seed,
            rng_mode: RngMode::PerShard,
            model_arrivals: false,
            ingress_capacity: 1 << 16,
            max_admit_per_round: None,
            ticket_ttl_rounds: None,
            kernel: KernelMode::default(),
        }
    }

    /// Sets the RNG mode.
    #[must_use]
    pub fn with_rng_mode(mut self, mode: RngMode) -> Self {
        self.rng_mode = mode;
        self
    }

    /// Enables or disables model-generated arrivals.
    #[must_use]
    pub fn with_model_arrivals(mut self, enabled: bool) -> Self {
        self.model_arrivals = enabled;
        self
    }

    /// Sets the bounded ingress queue capacity.
    #[must_use]
    pub fn with_ingress_capacity(mut self, capacity: usize) -> Self {
        self.ingress_capacity = capacity;
        self
    }

    /// Caps the number of requests admitted per round.
    #[must_use]
    pub fn with_max_admit_per_round(mut self, cap: Option<u64>) -> Self {
        self.max_admit_per_round = cap;
        self
    }

    /// Sets the ticket time-to-live in rounds (deadline reaping).
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is `Some(0)` — a zero TTL would reap tickets the
    /// round they are admitted, before they can ever complete.
    #[must_use]
    pub fn with_ticket_ttl_rounds(mut self, ttl: Option<u64>) -> Self {
        assert!(ttl != Some(0), "ticket TTL must be at least one round");
        self.ticket_ttl_rounds = ttl;
        self
    }

    /// Selects the acceptance kernel the shard workers run.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }
}

struct Worker {
    /// Stable worker id, unique for the service's lifetime. Replies carry
    /// it; the driver maps it back to the worker's current *position*
    /// (= range order), which shifts as shards split, merge, and retire.
    id: usize,
    cmds: Sender<ShardCmd>,
    join: JoinHandle<()>,
}

/// A running sharded CAPPED(c, λ) service. See the [module docs](self)
/// for the per-round protocol.
///
/// Dropping the service shuts the workers down; call
/// [`shutdown`](Self::shutdown) to do so explicitly and join the threads.
pub struct CappedService {
    config: CappedConfig,
    shards: usize,
    ranges: Vec<Range<usize>>,
    /// Live bin count; starts at `config.bins()` and moves with
    /// membership events. Always `ranges.last().end`.
    live_n: usize,
    /// Next stable worker id to hand out (split shards get fresh ids).
    next_worker_id: usize,
    rng_mode: RngMode,
    /// Acceptance kernel handed to every shard (split shards inherit it).
    kernel: KernelMode,
    model_arrivals: bool,
    max_admit: Option<u64>,
    driver_rng: SimRng,
    workers: Vec<Worker>,
    reply_tx: Sender<ShardReply>,
    replies: Receiver<ShardReply>,
    ingress: Receiver<u64>,
    dispatcher: Dispatcher,
    completions_tx: Sender<Completion>,
    completions_rx: Option<Receiver<Completion>>,
    plan: FaultPlan,
    /// Scheduled membership changes (applied at round boundaries, before
    /// that round's faults).
    mplan: MembershipPlan,
    /// Optional scaling policy; observed once per round, its events are
    /// scheduled for the next round boundary.
    autoscaler: Option<Autoscaler>,
    /// Lifetime count of membership events that changed the topology.
    membership_events: u64,
    /// Lifetime count of balls physically relocated by membership changes
    /// (drained from removed bins or transferred between workers).
    balls_moved: u64,
    /// Active arrival bursts as `(last_round_inclusive, extra_per_round)`.
    bursts: Vec<(u64, u64)>,
    pool: Pool,
    /// Tickets admitted in round `label`, awaiting service, FIFO. Balls
    /// with equal labels are interchangeable, so matching a served ball
    /// to the longest-waiting ticket of its label is consistent.
    pending: HashMap<u64, VecDeque<u64>>,
    round: u64,
    total_generated: u64,
    total_admitted: u64,
    total_served: u64,
    shard_buffered: Vec<u64>,
    shard_max_load: Vec<u64>,
    wait_hist: Histogram,
    ticket_ttl: Option<u64>,
    /// Ticket ids reaped by TTL expiry since the last
    /// [`drain_expired_tickets`](Self::drain_expired_tickets) call.
    expired_tickets: Vec<u64>,
    total_expired: u64,
    stopped: bool,
}

impl std::fmt::Debug for CappedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CappedService")
            .field("config", &self.config)
            .field("live_bins", &self.live_n)
            .field("shards", &self.shards)
            .field("rng_mode", &self.rng_mode)
            .field("round", &self.round)
            .field("pool_size", &self.pool.len())
            .finish_non_exhaustive()
    }
}

impl CappedService {
    /// Partitions the bins, spawns the worker threads, and returns the
    /// running service.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfDomain`] if the configuration uses
    /// more than one choice per ball, a non-oldest-first acceptance
    /// policy, or a shard count outside `1..=n`.
    pub fn spawn(config: ServiceConfig) -> Result<Self, ConfigError> {
        let shards = config.shards;
        Self::validate(&config)?;
        let (seed, rng_mode) = (config.seed, config.rng_mode);
        let (driver_rng, shard_rngs): (SimRng, Vec<Option<SimRng>>) = match rng_mode {
            RngMode::Central => (SimRng::seed_from(seed), (0..shards).map(|_| None).collect()),
            RngMode::PerShard => {
                let mut family = SimRng::family(seed, shards + 1);
                let driver = family.pop().expect("family has shards + 1 streams");
                (driver, family.into_iter().map(Some).collect())
            }
        };
        let ranges: Vec<Range<usize>> = (0..shards)
            .map(|s| shard_range(config.capped.bins(), shards, s))
            .collect();
        let shard_states: Vec<(BinShard, Option<SimRng>)> = ranges
            .iter()
            .cloned()
            .zip(shard_rngs)
            .map(|(range, rng)| {
                (
                    BinShard::new(&config.capped, range).with_kernel(config.kernel),
                    rng,
                )
            })
            .collect();
        let live_n = config.capped.bins();
        Ok(Self::assemble(
            &config,
            driver_rng,
            shard_states,
            ranges,
            live_n,
            0,
        ))
    }

    fn validate(config: &ServiceConfig) -> Result<(), ConfigError> {
        if config.capped.choices() != 1 {
            return Err(ConfigError::OutOfDomain {
                name: "choices",
                domain: "the serving layer implements the 1-choice process",
            });
        }
        if config.capped.policy() != AcceptancePolicy::OldestFirst {
            return Err(ConfigError::OutOfDomain {
                name: "policy",
                domain: "the serving layer implements oldest-first acceptance",
            });
        }
        if config.shards == 0 || config.shards > config.capped.bins() {
            return Err(ConfigError::OutOfDomain {
                name: "shards",
                domain: "1..=n",
            });
        }
        Ok(())
    }

    /// Builds the service around prepared per-shard state; shared by
    /// [`spawn`](Self::spawn) (fresh shards) and [`resume`](Self::resume)
    /// (checkpointed shards).
    fn assemble(
        config: &ServiceConfig,
        driver_rng: SimRng,
        shard_states: Vec<(BinShard, Option<SimRng>)>,
        ranges: Vec<Range<usize>>,
        live_n: usize,
        first_ticket_id: u64,
    ) -> Self {
        let shards = ranges.len();
        let capped = config.capped.clone();
        let (reply_tx, replies) = channel();
        let mut workers = Vec::with_capacity(shards);
        for (s, (bins, rng)) in shard_states.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = channel();
            let worker_reply_tx = reply_tx.clone();
            let join = std::thread::Builder::new()
                .name(format!("iba-serve-shard-{s}"))
                .spawn(move || worker_loop(s, bins, rng, cmd_rx, worker_reply_tx))
                .expect("spawn shard worker thread");
            workers.push(Worker {
                id: s,
                cmds: cmd_tx,
                join,
            });
        }

        let capacity = config.ingress_capacity.max(1);
        let (ingress_tx, ingress) = sync_channel(capacity);
        let dispatcher = Dispatcher::with_first_id(ingress_tx, capacity, first_ticket_id);
        let (completions_tx, completions_rx) = channel();

        CappedService {
            shards,
            ranges,
            live_n,
            next_worker_id: shards,
            rng_mode: config.rng_mode,
            kernel: config.kernel,
            model_arrivals: config.model_arrivals,
            max_admit: config.max_admit_per_round,
            driver_rng,
            workers,
            reply_tx,
            replies,
            ingress,
            dispatcher,
            completions_tx,
            completions_rx: Some(completions_rx),
            plan: FaultPlan::new(),
            mplan: MembershipPlan::new(),
            autoscaler: None,
            membership_events: 0,
            balls_moved: 0,
            bursts: Vec::new(),
            pool: Pool::with_capacity(capped.predicted_stationary_pool()),
            pending: HashMap::new(),
            round: 0,
            total_generated: 0,
            total_admitted: 0,
            total_served: 0,
            shard_buffered: vec![0; shards],
            shard_max_load: vec![0; shards],
            wait_hist: Histogram::new(),
            ticket_ttl: config.ticket_ttl_rounds,
            expired_tickets: Vec::new(),
            total_expired: 0,
            stopped: false,
            config: capped,
        }
    }

    /// Resumes a service from bytes produced by
    /// [`checkpoint_bytes`](Self::checkpoint_bytes), mid-traffic.
    ///
    /// The embedded core checkpoint restores the full process state (pool,
    /// bin queues with live capacities, fault mask, RNG stream) through
    /// `iba_core::checkpoint::restore` — inheriting all of its validation:
    /// CRC, pool order, ball conservation. The envelope restores the
    /// serve-only state: per-shard RNG streams, the ticket-id watermark
    /// (new tickets never collide with pre-crash ids), the lifetime
    /// admission counter, and the pending ticket map. In
    /// [`RngMode::Central`] the resumed trajectory is **bit-identical** to
    /// the uninterrupted run (any shard count — the differential test pins
    /// this); in [`RngMode::PerShard`] the shard count must match the
    /// checkpoint's.
    ///
    /// Not restored (by design): scheduled fault plans and active bursts
    /// (re-[`schedule`](Self::schedule) after resume, shifting rounds as
    /// needed) and the waiting-time histogram (quantiles restart from the
    /// resume point).
    ///
    /// # Errors
    ///
    /// [`ResumeError`] if the bytes are corrupt or truncated, the caller's
    /// CAPPED configuration differs from the checkpoint's, or the RNG
    /// distribution is incompatible (mode or per-shard stream count).
    pub fn resume(config: ServiceConfig, bytes: &[u8]) -> Result<Self, ResumeError> {
        Self::validate(&config).map_err(|_| ResumeError::Invalid {
            what: "service configuration",
        })?;
        let mut dec = Decoder::new(bytes)?;
        let version = dec.header(ENVELOPE_TAG, ENVELOPE_VERSION)?;
        let core_bytes = dec.byte_seq("core checkpoint")?.to_vec();
        let saved_mode = match dec.u32("rng mode")? {
            0 => RngMode::Central,
            1 => RngMode::PerShard,
            _ => return Err(ResumeError::Invalid { what: "rng mode" }),
        };
        let saved_shards = dec.usize("shard count")?;
        let mut shard_rng_states = Vec::new();
        if saved_mode == RngMode::PerShard {
            let words = dec.u64_seq("shard rng states")?;
            if words.len() != saved_shards * 4 {
                return Err(ResumeError::Invalid {
                    what: "shard rng state count",
                });
            }
            for chunk in words.chunks_exact(4) {
                shard_rng_states.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
        }
        let next_ticket_id = dec.u64("ticket watermark")?;
        let total_admitted = dec.u64("total admitted")?;
        let total_expired = dec.u64("total expired")?;
        let pending_len = dec.usize("pending ticket map")?;
        let mut pending: HashMap<u64, VecDeque<u64>> = HashMap::with_capacity(pending_len);
        let mut prev_label = None;
        for _ in 0..pending_len {
            let label = dec.u64("pending label")?;
            if prev_label.is_some_and(|p| p >= label) {
                return Err(ResumeError::Invalid {
                    what: "pending label order",
                });
            }
            prev_label = Some(label);
            let ids = dec.u64_seq("pending ticket ids")?;
            if ids.is_empty() {
                return Err(ResumeError::Invalid {
                    what: "empty pending queue",
                });
            }
            pending.insert(label, ids.into_iter().collect());
        }
        // Version 2 appends the membership section; a v1 envelope is a
        // fixed-topology run (live n = configured n, balanced ranges).
        let (live_n, saved_ends, balls_moved, membership_events) = if version >= 2 {
            let live_n = dec.usize("live bin count")?;
            let ends: Vec<u64> = dec.u64_seq("shard range ends")?;
            let balls_moved = dec.u64("balls moved")?;
            let membership_events = dec.u64("membership events")?;
            (live_n, Some(ends), balls_moved, membership_events)
        } else {
            (config.capped.bins(), None, 0, 0)
        };
        if !dec.is_exhausted() {
            return Err(ResumeError::Invalid {
                what: "trailing bytes",
            });
        }
        if let Some(ends) = &saved_ends {
            let contiguous = ends.len() == saved_shards
                && !ends.is_empty()
                && *ends.last().expect("non-empty") == live_n as u64
                && ends.windows(2).all(|w| w[0] < w[1])
                && ends[0] >= 1;
            if !contiguous {
                return Err(ResumeError::Invalid {
                    what: "shard range ends",
                });
            }
        }
        if config.rng_mode != saved_mode {
            return Err(ResumeError::Invalid {
                what: "rng mode (checkpoint used the other distribution)",
            });
        }
        if saved_mode == RngMode::PerShard && config.shards != saved_shards {
            return Err(ResumeError::Invalid {
                what: "shard count (per-shard RNG streams are per-checkpoint-shard)",
            });
        }

        let sim = iba_core::checkpoint::restore(&core_bytes)?;
        let process = sim.process();
        // Mid-resize checkpoints embed the *resized* configuration so the
        // core restore path validates conservation against the live bin
        // count; the caller still passes the original configuration.
        let expected = if live_n == config.capped.bins() {
            config.capped.clone()
        } else {
            config
                .capped
                .clone()
                .resized(live_n)
                .map_err(|_| ResumeError::ConfigMismatch)?
        };
        if *process.config() != expected {
            return Err(ResumeError::ConfigMismatch);
        }
        let driver_rng = SimRng::from_state(sim.rng().state());
        // Topology: a no-churn Central checkpoint resumes onto whatever
        // shard count the caller asked for (the driver owns all the
        // randomness, so the partition is free); otherwise the saved
        // ranges are authoritative — mid-resize Central runs keep their
        // shape, and in per-shard RNG mode each saved stream belongs to
        // its saved shard.
        let ranges: Vec<Range<usize>> =
            if saved_mode == RngMode::Central && live_n == config.capped.bins() {
                (0..config.shards)
                    .map(|s| shard_range(live_n, config.shards, s))
                    .collect()
            } else {
                match &saved_ends {
                    Some(ends) => {
                        let mut start = 0usize;
                        ends.iter()
                            .map(|&end| {
                                let range = start..end as usize;
                                start = end as usize;
                                range
                            })
                            .collect()
                    }
                    None => (0..saved_shards)
                        .map(|s| shard_range(live_n, saved_shards, s))
                        .collect(),
                }
            };
        let shards = ranges.len();
        let mut shard_states = Vec::with_capacity(shards);
        for (s, range) in ranges.iter().enumerate() {
            let range = range.clone();
            let caps: Vec<Capacity> = range.clone().map(|i| process.bin(i).capacity()).collect();
            let contents: Vec<Vec<Ball>> = range
                .clone()
                .map(|i| process.bin(i).iter().copied().collect())
                .collect();
            let offline: Vec<bool> = range.clone().map(|i| process.is_bin_offline(i)).collect();
            let bins = BinShard::from_state(&expected, range, caps, contents, offline)
                .with_kernel(config.kernel);
            let rng = match saved_mode {
                RngMode::Central => None,
                RngMode::PerShard => Some(SimRng::from_state(shard_rng_states[s])),
            };
            shard_states.push((bins, rng));
        }

        let mut service = Self::assemble(
            &config,
            driver_rng,
            shard_states,
            ranges.clone(),
            live_n,
            next_ticket_id,
        );
        service.round = process.round();
        service.total_generated = process.total_generated();
        service.total_served = process.total_deleted();
        service.total_admitted = total_admitted;
        service.total_expired = total_expired;
        service.balls_moved = balls_moved;
        service.membership_events = membership_events;
        service.pool = process.pool().clone();
        service.pending = pending;
        for (s, range) in ranges.iter().enumerate() {
            let loads: Vec<usize> = range.clone().map(|i| process.bin(i).len()).collect();
            service.shard_buffered[s] = loads.iter().map(|&l| l as u64).sum();
            service.shard_max_load[s] = loads.iter().map(|&l| l as u64).max().unwrap_or(0);
        }
        if let Some(p) = obs::probes() {
            p.checkpoint_resumes.inc();
            p.resume_round.set(service.round);
        }
        Ok(service)
    }

    /// Serializes the full service state for a later
    /// [`resume`](Self::resume): the embedded core checkpoint (`IBA1`,
    /// byte-compatible with `iba_core::checkpoint`) wrapped in the serve
    /// envelope (`IBSV`). Workers are quiesced with a snapshot command
    /// between rounds, so the capture is consistent.
    ///
    /// # Panics
    ///
    /// Panics if the service was shut down or a worker thread died.
    pub fn checkpoint_bytes(&mut self) -> Vec<u8> {
        assert!(!self.stopped, "service was shut down");
        let (snap_tx, snap_rx) = channel();
        for worker in &self.workers {
            worker
                .cmds
                .send(ShardCmd::Snapshot {
                    reply: snap_tx.clone(),
                })
                .expect("shard worker alive");
        }
        let mut snapshots: Vec<Option<ShardSnapshot>> = (0..self.shards).map(|_| None).collect();
        for _ in 0..self.shards {
            let snap = snap_rx.recv().expect("shard worker alive");
            let pos = self.worker_pos(snap.shard);
            snapshots[pos] = Some(snap);
        }

        // The inner core checkpoint, hand-assembled field-for-field to the
        // `iba_core::checkpoint::save` layout (tag IBA1 v2): restore-side
        // validation (CRC, conservation, pool order) comes for free. A
        // mid-resize service embeds the resized configuration so that
        // validation runs against the live bin count.
        let inner_config = if self.live_n == self.config.bins() {
            self.config.clone()
        } else {
            self.config
                .clone()
                .resized(self.live_n)
                .expect("membership is gated to resizable configurations")
        };
        let mut core = Encoder::new();
        core.header("IBA1", 2);
        for word in self.driver_rng.state() {
            core.u64(word);
        }
        inner_config.encode_into(&mut core);
        core.u64(self.round);
        core.u64(self.total_generated);
        core.u64(self.total_served);
        let pool_labels: Vec<u64> = self.pool.iter().map(Ball::label).collect();
        core.u64_seq(pool_labels.into_iter());
        core.usize(self.live_n);
        // Shards own contiguous ascending ranges, so concatenating the
        // snapshots in shard order walks the bins globally in order.
        for snap in snapshots.iter().map(|s| s.as_ref().expect("collected")) {
            for (cap, contents) in snap.caps.iter().zip(&snap.contents) {
                core.u64(match cap {
                    Capacity::Finite(c) => u64::from(c.get()),
                    Capacity::Infinite => 0,
                });
                core.u64_seq(contents.iter().map(Ball::label));
            }
        }
        for snap in snapshots.iter().map(|s| s.as_ref().expect("collected")) {
            for &offline in &snap.offline {
                core.bool(offline);
            }
        }
        let core_bytes = core.finish();

        let mut enc = Encoder::new();
        enc.header(ENVELOPE_TAG, ENVELOPE_VERSION);
        enc.byte_seq(&core_bytes);
        enc.u32(match self.rng_mode {
            RngMode::Central => 0,
            RngMode::PerShard => 1,
        });
        enc.usize(self.shards);
        if self.rng_mode == RngMode::PerShard {
            let words: Vec<u64> = snapshots
                .iter()
                .map(|s| s.as_ref().expect("collected"))
                .flat_map(|s| s.rng_state.expect("per-shard mode has worker RNGs"))
                .collect();
            enc.u64_seq(words.into_iter());
        }
        enc.u64(self.dispatcher.next_id());
        enc.u64(self.total_admitted);
        enc.u64(self.total_expired);
        let mut labels: Vec<u64> = self.pending.keys().copied().collect();
        labels.sort_unstable();
        enc.usize(labels.len());
        for label in labels {
            enc.u64(label);
            enc.u64_seq(self.pending[&label].iter().copied());
        }
        // Membership section (envelope v2).
        enc.usize(self.live_n);
        enc.u64_seq(self.ranges.iter().map(|r| r.end as u64));
        enc.u64(self.balls_moved);
        enc.u64(self.membership_events);
        if let Some(p) = obs::probes() {
            p.checkpoint_saves.inc();
        }
        enc.finish()
    }

    /// A cloneable client handle for submitting requests.
    pub fn dispatcher(&self) -> Dispatcher {
        self.dispatcher.clone()
    }

    /// Takes the completion-notification receiver. Callable once; later
    /// calls return `None`. If never taken, completions are discarded.
    pub fn take_completions(&mut self) -> Option<Receiver<Completion>> {
        self.completions_rx.take()
    }

    /// Schedules `plan`'s fault events against the service's round
    /// counter, merging with any previously scheduled events
    /// (same-round events keep insertion order; already-past rounds never
    /// fire — [`FaultedProcess`](iba_sim::faults::FaultedProcess)
    /// semantics).
    pub fn schedule(&mut self, plan: FaultPlan) {
        for (round, events) in plan.iter() {
            for event in events {
                self.plan.insert(round, event.clone());
            }
        }
    }

    /// Schedules `plan`'s membership events against the service's round
    /// counter, merging with any previously scheduled events. Events are
    /// applied at round boundaries, *before* that round's faults;
    /// already-past rounds never fire.
    ///
    /// # Errors
    ///
    /// [`ConfigError::OutOfDomain`] unless the configuration uses one
    /// uniform finite capacity class — elastic membership adds and removes
    /// bins of the configured capacity, which a heterogeneous capacity
    /// profile or unbounded bins cannot express.
    pub fn schedule_membership(&mut self, plan: MembershipPlan) -> Result<(), ConfigError> {
        self.ensure_elastic()?;
        for (round, events) in plan.iter() {
            for event in events {
                self.mplan.insert(round, event.clone());
            }
        }
        Ok(())
    }

    /// Installs (or replaces) the autoscaling policy. Observed once per
    /// round with the live bin count, the pool size, and the Theorem-2
    /// stationary pool bound for the *current* capacity; its events are
    /// scheduled for the next round boundary. Pass-through of the same
    /// gate as [`schedule_membership`](Self::schedule_membership).
    ///
    /// # Errors
    ///
    /// [`ConfigError::OutOfDomain`] unless the configuration uses one
    /// uniform finite capacity class.
    pub fn set_autoscaler(&mut self, scaler: Autoscaler) -> Result<(), ConfigError> {
        self.ensure_elastic()?;
        self.autoscaler = Some(scaler);
        Ok(())
    }

    fn ensure_elastic(&self) -> Result<(), ConfigError> {
        if self.config.capacity_profile().is_some() || self.config.capacity().as_finite().is_none()
        {
            return Err(ConfigError::OutOfDomain {
                name: "capacity",
                domain: "one uniform finite capacity class (elastic membership)",
            });
        }
        Ok(())
    }

    /// The CAPPED configuration the service runs.
    pub fn config(&self) -> &CappedConfig {
        &self.config
    }

    /// Number of shards (= worker threads). Moves with shard split/merge
    /// events and shrink-driven retirements.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Live bin count; starts at `config().bins()` and moves with
    /// membership events.
    pub fn live_bins(&self) -> usize {
        self.live_n
    }

    /// Lifetime count of membership events that changed the topology.
    pub fn membership_events(&self) -> u64 {
        self.membership_events
    }

    /// Lifetime count of balls physically relocated by membership changes
    /// (drained from removed bins back into the pool, or transferred
    /// between workers by a shard merge).
    pub fn balls_moved(&self) -> u64 {
        self.balls_moved
    }

    /// Acceptance kernel every shard runs.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Worker threads serving rounds (one per shard).
    pub fn kernel_threads(&self) -> usize {
        self.shards
    }

    /// Last completed round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current pool size (balls awaiting allocation).
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Total balls buffered across all shards (as of the last round).
    pub fn buffered(&self) -> u64 {
        self.shard_buffered.iter().sum()
    }

    /// Lifetime count of balls that entered the system (model arrivals +
    /// admitted requests + fault surges).
    pub fn total_generated(&self) -> u64 {
        self.total_generated
    }

    /// Lifetime count of admitted client requests.
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// Lifetime count of served balls.
    pub fn total_served(&self) -> u64 {
        self.total_served
    }

    /// Number of admitted requests not yet served.
    pub fn pending_tickets(&self) -> usize {
        self.pending.values().map(VecDeque::len).sum()
    }

    /// Lifetime count of tickets reaped by TTL expiry.
    pub fn total_expired(&self) -> u64 {
        self.total_expired
    }

    /// Takes the ticket ids reaped by TTL expiry since the last call, so
    /// the transport layer can drop its notification routing for them.
    pub fn drain_expired_tickets(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.expired_tickets)
    }

    /// Ball conservation: everything that entered the system is served,
    /// pooled, or buffered.
    pub fn conserves_balls(&self) -> bool {
        self.total_generated == self.total_served + self.pool.len() as u64 + self.buffered()
    }

    /// Exact waiting-time quantiles over every ball served so far.
    pub fn wait_quantiles(&self) -> Option<WaitQuantiles> {
        WaitQuantiles::from_histogram(&self.wait_hist)
    }

    /// Captures a metrics snapshot (see [`ServeSnapshot`]).
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            round: self.round,
            bins: self.live_n as u64,
            pool_size: self.pool.len() as u64,
            buffered: self.buffered(),
            shard_max_load: self.shard_max_load.clone(),
            total_generated: self.total_generated,
            total_admitted: self.total_admitted,
            total_served: self.total_served,
            wait: self.wait_quantiles(),
        }
    }

    /// Executes one round of Algorithm 1 across the shards and returns
    /// the same [`RoundReport`] the bare process would produce.
    ///
    /// # Panics
    ///
    /// Panics if the service was shut down, or if a worker thread died.
    pub fn run_round(&mut self) -> RoundReport {
        assert!(!self.stopped, "service was shut down");
        let round_timer = iba_obs::PhaseTimer::start();
        let round = self.round + 1;

        // 1. Membership changes at the round boundary fix this round's
        // topology; then the round's faults (which target the possibly
        // resized bin set — surge balls keep the pre-round label, matching
        // FaultedProcess + inject_pool).
        self.apply_membership(round);
        self.apply_faults(round);
        self.round = round;
        let n = self.live_n;

        // 2. Arrivals: model generation first, then admitted requests —
        // all labeled with the new round.
        let model = if self.model_arrivals {
            let generated = self.config.arrivals().sample(&mut self.driver_rng);
            self.pool.push_generation(round, generated);
            generated
        } else {
            0
        };
        let admitted = self.admit(round);
        self.total_generated += model + admitted;
        let thrown = self.pool.len() as u64;

        // 3. Allocation broadcast: route every pooled ball (oldest-first)
        // to the shard owning its uniformly drawn bin.
        let route_timer = iba_obs::PhaseTimer::start();
        let balls = self.pool.take();
        match self.rng_mode {
            RngMode::Central => {
                let mut routed: Vec<Vec<(u32, Ball)>> =
                    (0..self.shards).map(|_| Vec::new()).collect();
                for ball in balls {
                    let bin = self.driver_rng.uniform_bin(n);
                    let s = self.owner_of(bin);
                    routed[s].push(((bin - self.ranges[s].start) as u32, ball));
                }
                for (worker, requests) in self.workers.iter().zip(routed) {
                    worker
                        .cmds
                        .send(ShardCmd::RoundRouted { round, requests })
                        .expect("shard worker alive");
                }
            }
            RngMode::PerShard => {
                // The driver picks the owning shard (probability
                // proportional to shard size); the worker draws the local
                // bin from its own stream. The composition is uniform
                // over all n bins.
                let mut assigned: Vec<Vec<Ball>> = (0..self.shards).map(|_| Vec::new()).collect();
                for ball in balls {
                    let bin = self.driver_rng.uniform_bin(n);
                    let s = self.owner_of(bin);
                    assigned[s].push(ball);
                }
                for (worker, balls) in self.workers.iter().zip(assigned) {
                    worker
                        .cmds
                        .send(ShardCmd::RoundDraw { round, balls })
                        .expect("shard worker alive");
                }
            }
        }

        // 4. Collect and merge the shard replies.
        let merge_timer = iba_obs::PhaseTimer::start();
        if let Some(p) = obs::probes() {
            route_timer.observe(&p.phase_route_nanos);
        }
        let mut slots: Vec<Option<ShardReply>> = (0..self.shards).map(|_| None).collect();
        for _ in 0..self.shards {
            let reply = self.replies.recv().expect("shard worker alive");
            debug_assert_eq!(reply.round, round);
            let pos = self.worker_pos(reply.shard);
            slots[pos] = Some(reply);
        }

        let mut accepted = 0u64;
        let mut failed_deletions = 0u64;
        let mut buffered = 0u64;
        let mut max_load = 0u64;
        let served_before = self.total_served;
        let mut rejected: Vec<Ball> = Vec::new();
        let mut waiting_times: Vec<u64> = Vec::new();
        for (s, slot) in slots.into_iter().enumerate() {
            let reply = slot.expect("every shard replied exactly once");
            accepted += reply.accepted;
            failed_deletions += reply.failed_deletions;
            buffered += reply.buffered;
            max_load = max_load.max(reply.max_load);
            self.shard_buffered[s] = reply.buffered;
            self.shard_max_load[s] = reply.max_load;
            rejected.extend_from_slice(&reply.rejected);
            let first_bin = self.ranges[s].start as u64;
            for ((ball, &wait), &local) in reply
                .served
                .iter()
                .zip(&reply.waits)
                .zip(&reply.served_bins)
            {
                self.complete(ball.label(), round, wait, first_bin + u64::from(local));
            }
            // Shards own contiguous bin ranges, so concatenating in shard
            // order reproduces the bare process's bin-order vector.
            waiting_times.extend_from_slice(&reply.waits);
        }
        self.total_served += waiting_times.len() as u64;
        self.wait_hist.extend(waiting_times.iter().copied());

        // Per-shard reject lists are age-sorted; balls are ordered by
        // label only, so one sort reproduces the merged oldest-first pool.
        rejected.sort();
        self.pool.restore(rejected);

        // 5. Deadline reaping: forget completion-notification state for
        // tickets past the TTL. The balls themselves stay pooled/buffered
        // and still get served — only the notification is dropped, so the
        // paper's process trajectory is untouched.
        if let Some(ttl) = self.ticket_ttl {
            let expired: Vec<u64> = self
                .pending
                .keys()
                .copied()
                .filter(|&label| round.saturating_sub(label) >= ttl)
                .collect();
            let mut reaped = 0u64;
            for label in expired {
                if let Some(queue) = self.pending.remove(&label) {
                    reaped += queue.len() as u64;
                    self.expired_tickets.extend(queue);
                }
            }
            if reaped > 0 {
                self.total_expired += reaped;
                if let Some(p) = obs::probes() {
                    p.tickets_expired.add(reaped);
                }
            }
        }

        // 6. Autoscaling: compare the pool against the Theorem-2 bound
        // for the *live* capacity; a triggered event lands at the next
        // round boundary.
        if let Some(scaler) = self.autoscaler.as_mut() {
            let c = self
                .config
                .capacity()
                .as_finite()
                .expect("autoscaler install is gated to finite capacities");
            let bound = theorem2_pool_bound(self.live_n, c, self.config.lambda());
            let (_decision, event) =
                scaler.observe(round, self.live_n, self.pool.len() as u64, bound);
            if let Some(event) = event {
                self.mplan.insert(round + 1, event);
            }
        }

        if let Some(p) = obs::probes() {
            merge_timer.observe(&p.phase_merge_nanos);
            round_timer.observe(&p.round_nanos);
            p.live_bins.set(self.live_n as u64);
            p.live_shards.set(self.shards as u64);
            p.pool_size.set(self.pool.len() as u64);
            p.buffered.set(buffered);
            p.pending_tickets.set(self.pending_tickets() as u64);
            p.max_load_high_water.record_max(max_load);
            p.served.add(self.total_served - served_before);
            iba_obs::flight::recorder().record_round(iba_obs::flight::RoundSample {
                round,
                generated: model + admitted,
                accepted,
                deleted: waiting_times.len() as u64,
                failed_deletions,
                pool_size: self.pool.len() as u64,
                buffered,
                max_load,
            });
        }

        RoundReport {
            round,
            generated: model + admitted,
            thrown,
            accepted,
            deleted: waiting_times.len() as u64,
            failed_deletions,
            pool_size: self.pool.len() as u64,
            buffered,
            max_load,
            waiting_times,
        }
    }

    /// Runs `count` rounds back-to-back, returning the last report.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` (there would be no report to return).
    pub fn run_rounds(&mut self, count: u64) -> RoundReport {
        assert!(count > 0, "must run at least one round");
        let mut last = None;
        for _ in 0..count {
            last = Some(self.run_round());
        }
        last.expect("count >= 1")
    }

    /// Stops the workers and joins their threads. Statistics accessors
    /// remain usable; further `run_round` calls panic.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        for worker in &self.workers {
            let _ = worker.cmds.send(ShardCmd::Stop);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join.join();
        }
    }

    fn apply_faults(&mut self, round: u64) {
        let n = self.live_n;
        let events = self.plan.events_at(round).to_vec();
        for event in events {
            match event {
                FaultEvent::CrashBins { bins } => {
                    for i in bins.into_iter().filter(|&i| i < n) {
                        self.send_fault(i, FaultOp::Offline(true));
                    }
                }
                FaultEvent::RecoverBins { bins } => {
                    for i in bins.into_iter().filter(|&i| i < n) {
                        self.send_fault(i, FaultOp::Offline(false));
                    }
                }
                FaultEvent::DegradeCapacity { bins, capacity } => {
                    if capacity == Some(0) {
                        continue; // malformed: capacities are >= 1 or unbounded
                    }
                    for i in bins.into_iter().filter(|&i| i < n) {
                        self.send_fault(i, FaultOp::Capacity(capacity));
                    }
                }
                FaultEvent::ArrivalBurst {
                    extra_per_round,
                    rounds,
                } => {
                    if extra_per_round > 0 && rounds > 0 {
                        self.bursts.push((round + rounds - 1, extra_per_round));
                    }
                }
                FaultEvent::PoolSurge { extra } => {
                    if extra > 0 {
                        self.surge(extra);
                    }
                }
            }
        }
        if !self.bursts.is_empty() {
            self.bursts.retain(|&(until, _)| until >= round);
            let extras: Vec<u64> = self.bursts.iter().map(|&(_, extra)| extra).collect();
            for extra in extras {
                self.surge(extra);
            }
        }
    }

    /// Injects unticketed balls labeled with the *current* (pre-step)
    /// round — `CappedProcess::inject_pool` semantics.
    fn surge(&mut self, extra: u64) {
        self.pool.push_generation(self.round, extra);
        self.total_generated += extra;
        if let Some(p) = obs::probes() {
            p.surge_balls.add(extra);
        }
    }

    /// Drains the ingress queue (up to the per-round cap) into the pool.
    fn admit(&mut self, round: u64) -> u64 {
        let mut admitted = 0u64;
        while self.max_admit.is_none_or(|cap| admitted < cap) {
            let Ok(id) = self.ingress.try_recv() else {
                break;
            };
            self.pool.push_generation(round, 1);
            self.pending.entry(round).or_default().push_back(id);
            admitted += 1;
        }
        self.dispatcher.note_admitted(admitted as usize);
        self.total_admitted += admitted;
        if let Some(p) = obs::probes() {
            p.admitted.add(admitted);
        }
        admitted
    }

    /// Matches a served ball to the longest-waiting ticket of its label
    /// (balls with equal labels are interchangeable) and notifies the
    /// completion channel. Model-arrival and surge balls have no ticket.
    fn complete(&mut self, label: u64, served_round: u64, waiting_rounds: u64, bin: u64) {
        let Some(queue) = self.pending.get_mut(&label) else {
            return;
        };
        if let Some(id) = queue.pop_front() {
            let _ = self.completions_tx.send(Completion {
                ticket: Ticket::from_id(id),
                bin,
                admitted_round: label,
                served_round,
                waiting_rounds,
            });
        }
        if queue.is_empty() {
            self.pending.remove(&label);
        }
    }

    fn send_fault(&self, bin: usize, op: FaultOp) {
        let s = self.owner_of(bin);
        let local = (bin - self.ranges[s].start) as u32;
        self.workers[s]
            .cmds
            .send(ShardCmd::Fault { local, op })
            .expect("shard worker alive");
    }

    /// Position of the shard owning global `bin`. Shards own contiguous
    /// ascending ranges, so this is a binary search over range ends — and
    /// for the balanced no-churn partition it agrees bin-for-bin with
    /// `iba_core::shard::shard_of`, preserving Central-mode bit-exactness.
    fn owner_of(&self, bin: usize) -> usize {
        debug_assert!(bin < self.live_n);
        self.ranges.partition_point(|r| r.end <= bin)
    }

    /// Current position (= range order) of the worker with stable id
    /// `id`.
    fn worker_pos(&self, id: usize) -> usize {
        self.workers
            .iter()
            .position(|w| w.id == id)
            .expect("reply from a live worker")
    }

    /// Applies the membership events scheduled at `round`, in insertion
    /// order.
    fn apply_membership(&mut self, round: u64) {
        if self.mplan.is_empty() {
            return;
        }
        let events = self.mplan.events_at(round).to_vec();
        for event in events {
            let changed = match event {
                MembershipEvent::AddBins { count } => self.add_bins(count),
                MembershipEvent::RemoveBins { count } => self.remove_bins(count),
                MembershipEvent::SplitShard { shard } => self.split_shard(shard),
                MembershipEvent::MergeShards { left } => self.merge_shards(left),
            };
            if changed {
                self.membership_events += 1;
                if let Some(p) = obs::probes() {
                    p.membership_events.inc();
                }
            }
        }
    }

    /// Grows the bin set by `count`: the new bins enter at the top of the
    /// index space, online and empty — their first acceptance round primes
    /// them with their full capacity as quota.
    fn add_bins(&mut self, count: usize) -> bool {
        if count == 0 {
            return false;
        }
        let capacity = self.config.capacity();
        let parts: Vec<(Capacity, Vec<Ball>, bool)> =
            (0..count).map(|_| (capacity, Vec::new(), false)).collect();
        let last = self.shards - 1;
        self.workers[last]
            .cmds
            .send(ShardCmd::PushBins { parts })
            .expect("shard worker alive");
        self.ranges[last].end += count;
        self.live_n += count;
        true
    }

    /// Shrinks the bin set by up to `count` bins from the top (always
    /// keeping at least one). The removed bins' FIFO contents drain back
    /// into the pool with their original labels and retry from the next
    /// round; workers left with no bins retire.
    fn remove_bins(&mut self, count: usize) -> bool {
        let to_remove = count.min(self.live_n - 1);
        if to_remove == 0 {
            return false;
        }
        let mut remaining = to_remove;
        let mut drained: Vec<Ball> = Vec::new();
        while remaining > 0 {
            let pos = self.shards - 1;
            let bins_here = self.ranges[pos].len();
            if remaining >= bins_here && self.shards > 1 {
                // The whole top shard goes: capture its state, retire the
                // worker, drain every ring.
                let parts = self.snapshot_parts(pos);
                self.retire_worker(pos);
                self.ranges.pop();
                self.shards -= 1;
                self.shard_buffered.pop();
                self.shard_max_load.pop();
                for (_, contents, _) in parts {
                    drained.extend(contents);
                }
                remaining -= bins_here;
            } else {
                let take = remaining.min(bins_here - 1);
                let (tx, rx) = channel();
                self.workers[pos]
                    .cmds
                    .send(ShardCmd::PopBins {
                        count: take,
                        reply: tx,
                    })
                    .expect("shard worker alive");
                let parts = rx.recv().expect("shard worker alive");
                let mut popped_buffered = 0u64;
                for (_, contents, _) in parts {
                    popped_buffered += contents.len() as u64;
                    drained.extend(contents);
                }
                self.ranges[pos].end -= take;
                self.shard_buffered[pos] = self.shard_buffered[pos].saturating_sub(popped_buffered);
                remaining -= take;
            }
        }
        self.live_n -= to_remove;
        if !drained.is_empty() {
            self.count_balls_moved(drained.len() as u64);
            // Merge the drained rings into the pool: balls order by label
            // alone, so one sort restores the oldest-first pool invariant.
            let mut balls = self.pool.take();
            balls.extend(drained);
            balls.sort();
            self.pool.restore(balls);
        }
        true
    }

    /// Splits shard `shard`'s range at its midpoint, spawning a new
    /// worker for the upper half. Only ownership moves — no ball leaves
    /// its ring, so nothing counts as moved.
    fn split_shard(&mut self, shard: usize) -> bool {
        if shard >= self.shards || self.ranges[shard].len() < 2 {
            return false;
        }
        let range = self.ranges[shard].clone();
        let at = range.len() / 2;
        let (tx, rx) = channel();
        self.workers[shard]
            .cmds
            .send(ShardCmd::SplitOff { at, reply: tx })
            .expect("shard worker alive");
        let parts = rx.recv().expect("shard worker alive");
        let upper_buffered: u64 = parts.iter().map(|(_, c, _)| c.len() as u64).sum();
        let first_bin = range.start + at;
        let bins =
            BinShard::from_parts(first_bin, self.config.capacity(), parts).with_kernel(self.kernel);
        let rng = match self.rng_mode {
            RngMode::Central => None,
            // A fresh deterministic stream: split off the driver's
            // (per-shard mode has no bit-exactness contract to keep).
            RngMode::PerShard => Some(self.driver_rng.split()),
        };
        self.spawn_worker(shard + 1, bins, rng);
        self.ranges[shard].end = first_bin;
        self.ranges.insert(shard + 1, first_bin..range.end);
        self.shards += 1;
        self.shard_buffered[shard] = self.shard_buffered[shard].saturating_sub(upper_buffered);
        self.shard_buffered.insert(shard + 1, upper_buffered);
        let stale_max = self.shard_max_load[shard];
        self.shard_max_load.insert(shard + 1, stale_max);
        true
    }

    /// Merges shard `left + 1` into shard `left`, retiring the right
    /// worker. Its buffered balls transfer between workers and count as
    /// moved.
    fn merge_shards(&mut self, left: usize) -> bool {
        let right = left + 1;
        if right >= self.shards {
            return false;
        }
        let parts = self.snapshot_parts(right);
        let moved: u64 = parts.iter().map(|(_, c, _)| c.len() as u64).sum();
        self.retire_worker(right);
        self.workers[left]
            .cmds
            .send(ShardCmd::PushBins { parts })
            .expect("shard worker alive");
        let removed_range = self.ranges.remove(right);
        self.ranges[left].end = removed_range.end;
        self.shards -= 1;
        let right_buffered = self.shard_buffered.remove(right);
        self.shard_buffered[left] += right_buffered;
        let right_max = self.shard_max_load.remove(right);
        self.shard_max_load[left] = self.shard_max_load[left].max(right_max);
        self.count_balls_moved(moved);
        true
    }

    fn count_balls_moved(&mut self, moved: u64) {
        if moved > 0 {
            self.balls_moved += moved;
            if let Some(p) = obs::probes() {
                p.balls_moved.add(moved);
            }
        }
    }

    /// Captures the full state of the worker at `pos` as push-ready parts
    /// (capacity, contents, offline) in ascending bin order.
    fn snapshot_parts(&self, pos: usize) -> Vec<(Capacity, Vec<Ball>, bool)> {
        let (tx, rx) = channel();
        self.workers[pos]
            .cmds
            .send(ShardCmd::Snapshot { reply: tx })
            .expect("shard worker alive");
        let snap = rx.recv().expect("shard worker alive");
        snap.caps
            .into_iter()
            .zip(snap.contents)
            .zip(snap.offline)
            .map(|((cap, contents), offline)| (cap, contents, offline))
            .collect()
    }

    /// Stops and joins the worker at `pos`, removing it from the fleet.
    fn retire_worker(&mut self, pos: usize) {
        let worker = self.workers.remove(pos);
        let _ = worker.cmds.send(ShardCmd::Stop);
        let _ = worker.join.join();
    }

    /// Spawns a new worker at position `pos` with a fresh stable id.
    fn spawn_worker(&mut self, pos: usize, bins: BinShard, rng: Option<SimRng>) {
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        let (cmd_tx, cmd_rx) = channel();
        let reply_tx = self.reply_tx.clone();
        let join = std::thread::Builder::new()
            .name(format!("iba-serve-shard-{id}"))
            .spawn(move || worker_loop(id, bins, rng, cmd_rx, reply_tx))
            .expect("spawn shard worker thread");
        self.workers.insert(
            pos,
            Worker {
                id,
                cmds: cmd_tx,
                join,
            },
        );
    }
}

impl Drop for CappedService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_sim::faults::FaultEvent;

    fn config(n: usize, c: u32, lambda: f64) -> CappedConfig {
        CappedConfig::new(n, c, lambda).unwrap()
    }

    fn model_service(n: usize, c: u32, lambda: f64, shards: usize, mode: RngMode) -> CappedService {
        CappedService::spawn(
            ServiceConfig::new(config(n, c, lambda), shards, 42)
                .with_rng_mode(mode)
                .with_model_arrivals(true),
        )
        .unwrap()
    }

    #[test]
    fn spawn_rejects_invalid_configs() {
        let base = config(8, 2, 0.75);
        assert!(CappedService::spawn(ServiceConfig::new(base.clone(), 0, 1)).is_err());
        assert!(CappedService::spawn(ServiceConfig::new(base.clone(), 9, 1)).is_err());
        let d2 = base.clone().with_choices(2).unwrap();
        assert!(CappedService::spawn(ServiceConfig::new(d2, 2, 1)).is_err());
        let random = base.with_policy(AcceptancePolicy::Random);
        assert!(CappedService::spawn(ServiceConfig::new(random, 2, 1)).is_err());
    }

    #[test]
    fn model_rounds_conserve_and_report() {
        for mode in [RngMode::Central, RngMode::PerShard] {
            let mut service = model_service(32, 2, 0.75, 4, mode);
            for _ in 0..100 {
                let report = service.run_round();
                assert!(report.conserves_balls(), "{mode:?}");
                assert!(service.conserves_balls(), "{mode:?}");
                assert!(report.max_load <= 2, "{mode:?}");
                assert_eq!(report.generated, 24, "{mode:?}");
            }
            assert_eq!(service.round(), 100);
            assert!(service.total_served() > 0);
            service.shutdown();
            assert!(service.conserves_balls());
        }
    }

    #[test]
    fn submitted_requests_complete_with_waiting_times() {
        let mut service =
            CappedService::spawn(ServiceConfig::new(config(16, 2, 0.0), 2, 7)).unwrap();
        let completions = service.take_completions().unwrap();
        assert!(service.take_completions().is_none(), "receiver taken once");
        let dispatcher = service.dispatcher();
        let tickets: Vec<Ticket> = (0..10).map(|_| dispatcher.submit().unwrap()).collect();
        let report = service.run_round();
        assert_eq!(report.generated, 10);
        assert_eq!(service.total_admitted(), 10);
        // Drain until everything is served.
        let mut done = Vec::new();
        while done.len() < 10 {
            while let Ok(completion) = completions.try_recv() {
                done.push(completion);
            }
            if done.len() < 10 {
                service.run_round();
            }
        }
        assert_eq!(service.pending_tickets(), 0);
        let mut served_ids: Vec<u64> = done.iter().map(|c| c.ticket.id()).collect();
        served_ids.sort_unstable();
        let mut expected: Vec<u64> = tickets.iter().map(Ticket::id).collect();
        expected.sort_unstable();
        assert_eq!(served_ids, expected);
        for completion in &done {
            assert_eq!(completion.admitted_round, 1);
            assert!(completion.bin < 16, "bin index is global and in range");
            assert_eq!(
                completion.waiting_rounds,
                completion.served_round - completion.admitted_round
            );
        }
        assert!(service.conserves_balls());
    }

    #[test]
    fn admission_cap_defers_excess_to_later_rounds() {
        let mut service = CappedService::spawn(
            ServiceConfig::new(config(16, 2, 0.0), 2, 7).with_max_admit_per_round(Some(3)),
        )
        .unwrap();
        let dispatcher = service.dispatcher();
        for _ in 0..8 {
            dispatcher.submit().unwrap();
        }
        assert_eq!(service.run_round().generated, 3);
        assert_eq!(service.run_round().generated, 3);
        assert_eq!(service.run_round().generated, 2);
        assert_eq!(service.total_admitted(), 8);
    }

    #[test]
    fn ingress_backpressure_saturates() {
        let mut service = CappedService::spawn(
            ServiceConfig::new(config(16, 2, 0.0), 2, 7).with_ingress_capacity(4),
        )
        .unwrap();
        let dispatcher = service.dispatcher();
        for _ in 0..4 {
            dispatcher.submit().unwrap();
        }
        assert_eq!(
            dispatcher.submit(),
            Err(crate::dispatch::SubmitError::Saturated)
        );
        // Admission drains the queue; submission works again.
        service.run_round();
        assert!(dispatcher.submit().is_ok());
    }

    #[test]
    fn scheduled_crash_rejects_that_bins_requests() {
        // n = 2, 2 shards: bin 0 is shard 0's only bin. Crash it; model
        // arrivals (λ = 0.5 → 1 ball/round) can then only land in bin 1.
        let mut service = CappedService::spawn(
            ServiceConfig::new(config(2, 1, 0.5), 2, 11)
                .with_rng_mode(RngMode::Central)
                .with_model_arrivals(true),
        )
        .unwrap();
        service.schedule(FaultPlan::new().with(1, FaultEvent::CrashBins { bins: vec![0] }));
        let mut served_total = 0;
        for _ in 0..50 {
            let report = service.run_round();
            assert!(report.conserves_balls());
            assert!(service.conserves_balls());
            served_total += report.deleted;
        }
        // Bin 1 can serve at most one ball per round; with bin 0 down the
        // pool backs up rather than losing balls.
        assert!(served_total <= 50);
        assert!(service.pool_size() > 0 || service.buffered() > 0 || served_total == 50);
    }

    #[test]
    fn pool_surge_enters_with_pre_round_label() {
        let mut service = model_service(8, 1, 0.5, 2, RngMode::Central);
        service.run_round();
        service.schedule(FaultPlan::new().with(2, FaultEvent::PoolSurge { extra: 5 }));
        let report = service.run_round();
        // 4 model balls + 5 surged (labeled round 1) all compete.
        assert_eq!(report.generated, 4);
        assert!(report.thrown >= 9);
        assert!(service.conserves_balls());
    }

    #[test]
    fn snapshot_reflects_counters() {
        let mut service = model_service(32, 2, 0.75, 4, RngMode::PerShard);
        for _ in 0..20 {
            service.run_round();
        }
        let snap = service.snapshot();
        assert_eq!(snap.round, 20);
        assert_eq!(snap.total_generated, 20 * 24);
        assert_eq!(snap.shard_max_load.len(), 4);
        assert_eq!(snap.pool_size, service.pool_size() as u64);
        assert!(snap.wait.is_some());
        let line = snap.to_json_line();
        assert!(line.contains("\"round\":20"));
    }

    #[test]
    #[should_panic(expected = "shut down")]
    fn run_after_shutdown_panics() {
        let mut service = model_service(8, 1, 0.5, 2, RngMode::PerShard);
        service.shutdown();
        service.run_round();
    }

    #[test]
    fn checkpoint_resume_continues_bit_identically() {
        for mode in [RngMode::Central, RngMode::PerShard] {
            let config = ServiceConfig::new(config(32, 2, 0.75), 4, 42)
                .with_rng_mode(mode)
                .with_model_arrivals(true);
            let mut original = CappedService::spawn(config.clone()).unwrap();
            for _ in 0..30 {
                original.run_round();
            }
            let bytes = original.checkpoint_bytes();
            let mut resumed = CappedService::resume(config, &bytes).unwrap();
            assert_eq!(resumed.round(), 30, "{mode:?}");
            assert_eq!(resumed.total_generated(), original.total_generated());
            assert_eq!(resumed.pool_size(), original.pool_size());
            assert_eq!(resumed.buffered(), original.buffered());
            assert!(resumed.conserves_balls(), "{mode:?}");
            for r in 0..25 {
                assert_eq!(
                    original.run_round(),
                    resumed.run_round(),
                    "{mode:?} diverged at +{r}"
                );
            }
        }
    }

    #[test]
    fn central_resume_works_across_shard_counts() {
        let capped = config(32, 2, 0.75);
        let cfg4 = ServiceConfig::new(capped.clone(), 4, 9)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true);
        let mut original = CappedService::spawn(cfg4.clone()).unwrap();
        for _ in 0..20 {
            original.run_round();
        }
        let bytes = original.checkpoint_bytes();
        // Central mode owns all randomness in the driver, so the resumed
        // topology is free to differ.
        let cfg2 = ServiceConfig::new(capped, 2, 9)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true);
        let mut resumed = CappedService::resume(cfg2, &bytes).unwrap();
        for _ in 0..20 {
            assert_eq!(original.run_round(), resumed.run_round());
        }
    }

    #[test]
    fn resume_rejects_incompatible_configs() {
        let base = ServiceConfig::new(config(16, 2, 0.5), 2, 7)
            .with_rng_mode(RngMode::PerShard)
            .with_model_arrivals(true);
        let mut service = CappedService::spawn(base.clone()).unwrap();
        service.run_rounds(5);
        let bytes = service.checkpoint_bytes();

        let other_capped = ServiceConfig::new(config(16, 3, 0.5), 2, 7)
            .with_rng_mode(RngMode::PerShard)
            .with_model_arrivals(true);
        assert!(matches!(
            CappedService::resume(other_capped, &bytes),
            Err(ResumeError::ConfigMismatch)
        ));

        let other_shards = ServiceConfig::new(config(16, 2, 0.5), 4, 7)
            .with_rng_mode(RngMode::PerShard)
            .with_model_arrivals(true);
        assert!(matches!(
            CappedService::resume(other_shards, &bytes),
            Err(ResumeError::Invalid { .. })
        ));

        let other_mode = ServiceConfig::new(config(16, 2, 0.5), 2, 7)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true);
        assert!(matches!(
            CappedService::resume(other_mode, &bytes),
            Err(ResumeError::Invalid { .. })
        ));

        // Corruption fails the CRC before any field parses.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        assert!(matches!(
            CappedService::resume(base.clone(), &corrupt),
            Err(ResumeError::Codec(_))
        ));
        assert!(CappedService::resume(base, &bytes[..20]).is_err());
    }

    #[test]
    fn pending_tickets_survive_a_checkpoint() {
        let cfg = ServiceConfig::new(config(16, 2, 0.0), 2, 7);
        let mut service = CappedService::spawn(cfg.clone()).unwrap();
        // Crash every bin so admitted requests stay pooled, pinning their
        // tickets in the pending map across the checkpoint.
        service.schedule(FaultPlan::new().with(
            1,
            FaultEvent::CrashBins {
                bins: (0..16).collect(),
            },
        ));
        let dispatcher = service.dispatcher();
        let tickets: Vec<u64> = (0..6).map(|_| dispatcher.submit().unwrap().id()).collect();
        service.run_round();
        assert_eq!(service.pending_tickets(), 6);
        let bytes = service.checkpoint_bytes();

        let mut resumed = CappedService::resume(cfg, &bytes).unwrap();
        assert_eq!(resumed.pending_tickets(), 6);
        let completions = resumed.take_completions().unwrap();
        // New submissions never collide with pre-crash ticket ids.
        let fresh = resumed.dispatcher().submit().unwrap().id();
        assert!(fresh > *tickets.iter().max().unwrap());
        // Recover the bins; the pre-crash tickets complete on the resumed
        // service with their original ids.
        resumed.schedule(FaultPlan::new().with(
            2,
            FaultEvent::RecoverBins {
                bins: (0..16).collect(),
            },
        ));
        let mut done = Vec::new();
        for _ in 0..50 {
            resumed.run_round();
            while let Ok(c) = completions.try_recv() {
                done.push(c.ticket.id());
            }
            if done.len() >= 7 {
                break;
            }
        }
        for id in &tickets {
            assert!(done.contains(id), "pre-crash ticket {id} completed");
        }
    }

    #[test]
    fn ticket_ttl_reaps_notification_state() {
        let mut service = CappedService::spawn(
            ServiceConfig::new(config(4, 1, 0.0), 2, 3).with_ticket_ttl_rounds(Some(3)),
        )
        .unwrap();
        // No bin ever serves: all crashed from round 1.
        service.schedule(FaultPlan::new().with(
            1,
            FaultEvent::CrashBins {
                bins: vec![0, 1, 2, 3],
            },
        ));
        let dispatcher = service.dispatcher();
        for _ in 0..5 {
            dispatcher.submit().unwrap();
        }
        service.run_round(); // admitted at round 1
        assert_eq!(service.pending_tickets(), 5);
        service.run_round(); // waited 1
        service.run_round(); // waited 2
        assert_eq!(service.pending_tickets(), 5, "not yet expired");
        service.run_round(); // waited 3 = TTL: reaped
        assert_eq!(service.pending_tickets(), 0);
        assert_eq!(service.total_expired(), 5);
        assert_eq!(service.drain_expired_tickets().len(), 5);
        assert!(service.drain_expired_tickets().is_empty(), "drained once");
        // The balls themselves are still conserved (pooled, not lost).
        assert!(service.conserves_balls());
        assert_eq!(service.pool_size(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_ttl_is_rejected() {
        let _ = ServiceConfig::new(config(4, 1, 0.0), 1, 3).with_ticket_ttl_rounds(Some(0));
    }
}
