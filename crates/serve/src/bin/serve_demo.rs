//! End-to-end demonstration and smoke test of the serving layer.
//!
//! Spawns a sharded [`CappedService`], pushes `rounds × λn` requests
//! through it from concurrent generator threads (blocking on ingress
//! backpressure), drains completion notifications on a collector thread,
//! checks the conservation and capacity invariants every round, and
//! prints a throughput / waiting-time report. Exits non-zero on any
//! invariant violation, which makes it directly usable as a CI smoke job:
//!
//! ```text
//! cargo run --release -p iba-serve --bin serve_demo -- \
//!     --rounds 200 --shards 4 --n 4096
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iba_core::CappedConfig;
use iba_membership::{Autoscaler, AutoscalerConfig};
use iba_serve::{
    run_net_loop, CappedService, Completion, Dispatcher, KernelMode, NetFault, NetFaultPlan,
    NetFrontend, NetLoopOptions, Pacing, RngMode, RoundClock, ServeAutosaver, ServiceConfig,
};

struct Options {
    rounds: u64,
    shards: usize,
    n: usize,
    c: u32,
    lambda: f64,
    seed: u64,
    generators: usize,
    pace_us: u64,
    metrics_every: u64,
    mode: RngMode,
    kernel: KernelMode,
    ingress_capacity: usize,
    telemetry: bool,
    listen: Option<String>,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    resume: bool,
    chaos: Option<String>,
    chaos_seed: Option<u64>,
    elastic: bool,
}

impl Options {
    fn defaults() -> Self {
        Options {
            rounds: 100,
            shards: 8,
            n: 16_384,
            c: 4,
            lambda: 0.75,
            seed: 2021,
            generators: 4,
            pace_us: 0,
            metrics_every: 0,
            mode: RngMode::PerShard,
            kernel: KernelMode::default(),
            ingress_capacity: 1 << 16,
            telemetry: false,
            listen: None,
            checkpoint: None,
            checkpoint_every: 25,
            resume: false,
            chaos: None,
            chaos_seed: None,
            elastic: false,
        }
    }
}

const USAGE: &str =
    "serve_demo: push an open-loop CAPPED(c, lambda) workload through a sharded service

USAGE: serve_demo [--rounds N] [--shards S] [--n BINS] [--c CAP] [--lambda L]
                  [--seed SEED] [--generators G] [--pace-us MICROS]
                  [--metrics-every K] [--mode central|pershard] [--ingress-cap Q]
                  [--kernel scalar|arena|simd|parallel]
                  [--telemetry] [--listen ADDR] [--elastic]
                  [--checkpoint PATH] [--checkpoint-every K] [--resume]
                  [--chaos SPEC] [--chaos-seed SEED]

The demo submits rounds x lambda*n requests total, runs rounds until all of
them are served (bounded by a safety cap), verifies conservation and
capacity invariants every round, and prints a throughput/latency report.
--telemetry (or IBA_TELEMETRY=1) additionally enables the iba-obs registry
and flight recorder, prints the Prometheus exposition at exit (self-checked
through the strict parser), and dumps a post-mortem on invariant violation.

--listen ADDR switches to network mode: instead of in-process generators,
the demo serves the length-prefixed wire protocol on ADDR (port 0 picks an
ephemeral port) and answers GET /metrics with the live Prometheus
exposition on the same listener. It runs --rounds rounds paced at --pace-us
(default 500 us) and exits; telemetry is enabled automatically so the
scrape plane has data. Drive it with:
cargo run --release -p iba-bench --bin serve_net_baseline -- --connect ADDR

Network-mode resilience (all require --listen):
--checkpoint PATH      autosave the full service state to PATH every
                       --checkpoint-every rounds (default 25), with .prev
                       rotation; --resume restarts from the newest loadable
                       generation instead of a fresh service
--chaos SPEC           arm the deterministic socket fault injector. SPEC is
                       a comma list of round:kind[:a[:b]] tokens with kinds
                       drop[:conns], stall-read[:conns[:rounds]],
                       stall-write[:conns[:rounds]],
                       partial[:max_bytes[:rounds]], garbage[:conns[:bytes]]
                       e.g. --chaos 10:drop:2,20:partial:8:5,30:garbage:1:64
--chaos-seed SEED      seed for victim picks and garbage (default --seed)

--kernel picks the round kernel (default arena): every mode computes the
bit-identical trajectory, so this is purely a speed knob — simd adds the
u64-SWAR meta sweeps, parallel additionally arms the intra-round worker
pool in single-process mode (within a shard it equals simd; worker count
honors IBA_THREADS). See DESIGN.md 'Round kernel'.

--elastic arms the membership autoscaler: the service watches its pool
against the Theorem 1 bound each round and grows the fleet (up to 4n bins)
under sustained pressure, handing bins back (down to n/4) when the pool
stays slack. Bin count and balls moved are reported at exit.";

fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value for {flag}: {value}"))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::defaults();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        if flag == "--telemetry" {
            opts.telemetry = true;
            continue;
        }
        if flag == "--resume" {
            opts.resume = true;
            continue;
        }
        if flag == "--elastic" {
            opts.elastic = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--rounds" => opts.rounds = parse_value(&flag, &value)?,
            "--shards" => opts.shards = parse_value(&flag, &value)?,
            "--n" => opts.n = parse_value(&flag, &value)?,
            "--c" => opts.c = parse_value(&flag, &value)?,
            "--lambda" => opts.lambda = parse_value(&flag, &value)?,
            "--seed" => opts.seed = parse_value(&flag, &value)?,
            "--generators" => opts.generators = parse_value(&flag, &value)?,
            "--pace-us" => opts.pace_us = parse_value(&flag, &value)?,
            "--metrics-every" => opts.metrics_every = parse_value(&flag, &value)?,
            "--ingress-cap" => opts.ingress_capacity = parse_value(&flag, &value)?,
            "--listen" => opts.listen = Some(value),
            "--checkpoint" => opts.checkpoint = Some(value),
            "--checkpoint-every" => opts.checkpoint_every = parse_value(&flag, &value)?,
            "--chaos" => opts.chaos = Some(value),
            "--chaos-seed" => opts.chaos_seed = Some(parse_value(&flag, &value)?),
            "--mode" => {
                opts.mode = match value.as_str() {
                    "central" => RngMode::Central,
                    "pershard" => RngMode::PerShard,
                    _ => return Err(format!("--mode must be central or pershard, got {value}")),
                }
            }
            "--kernel" => {
                opts.kernel = match value.as_str() {
                    "scalar" => KernelMode::Scalar,
                    "arena" => KernelMode::Arena,
                    "simd" => KernelMode::ArenaSimd,
                    "parallel" => KernelMode::ArenaParallel,
                    _ => {
                        return Err(format!(
                            "--kernel must be scalar|arena|simd|parallel, got {value}"
                        ))
                    }
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.rounds == 0 || opts.generators == 0 {
        return Err("--rounds and --generators must be at least 1".into());
    }
    if opts.checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if opts.listen.is_none() && (opts.checkpoint.is_some() || opts.chaos.is_some()) {
        return Err("--checkpoint and --chaos require --listen".into());
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err("--resume requires --checkpoint PATH".into());
    }
    Ok(opts)
}

/// Parses a `--chaos` spec: comma-separated `round:kind[:a[:b]]` tokens.
fn parse_chaos(spec: &str) -> Result<NetFaultPlan, String> {
    let mut plan = NetFaultPlan::new();
    for token in spec.split(',').filter(|t| !t.is_empty()) {
        let parts: Vec<&str> = token.split(':').collect();
        if parts.len() < 2 || parts.len() > 4 {
            return Err(format!("bad chaos token {token}: want round:kind[:a[:b]]"));
        }
        let round: u64 = parse_value("--chaos round", parts[0])?;
        if round == 0 {
            return Err(format!("bad chaos token {token}: rounds start at 1"));
        }
        let a = parts
            .get(2)
            .map(|v| parse_value::<u32>("--chaos arg", v))
            .transpose()?;
        let b = parts
            .get(3)
            .map(|v| parse_value::<u32>("--chaos arg", v))
            .transpose()?;
        let fault = match parts[1] {
            "drop" => NetFault::DropConns {
                conns: a.unwrap_or(1),
            },
            "stall-read" => NetFault::StallReads {
                conns: a.unwrap_or(1),
                rounds: b.unwrap_or(1),
            },
            "stall-write" => NetFault::StallWrites {
                conns: a.unwrap_or(1),
                rounds: b.unwrap_or(1),
            },
            "partial" => NetFault::PartialWrites {
                max_bytes: a.unwrap_or(8),
                rounds: b.unwrap_or(1),
            },
            "garbage" => NetFault::InjectGarbage {
                conns: a.unwrap_or(1),
                bytes: b.unwrap_or(64),
            },
            other => {
                return Err(format!(
                    "unknown chaos kind {other}: want drop, stall-read, stall-write, \
                     partial, or garbage"
                ))
            }
        };
        plan.insert(round, fault);
    }
    if plan.is_empty() {
        return Err("--chaos spec contains no events".into());
    }
    Ok(plan)
}

/// Generator threads split `target` submissions evenly and block on
/// ingress backpressure, so the offered load is exact.
fn spawn_generators(
    dispatcher: &Dispatcher,
    generators: usize,
    target: u64,
) -> Vec<std::thread::JoinHandle<u64>> {
    let base = target / generators as u64;
    let extra = target % generators as u64;
    (0..generators)
        .map(|g| {
            let dispatcher = dispatcher.clone();
            let quota = base + u64::from((g as u64) < extra);
            std::thread::Builder::new()
                .name(format!("iba-serve-gen-{g}"))
                .spawn(move || {
                    let mut sent = 0;
                    while sent < quota && dispatcher.submit_blocking().is_ok() {
                        sent += 1;
                    }
                    sent
                })
                .expect("spawn generator thread")
        })
        .collect()
}

fn spawn_collector(
    completions: std::sync::mpsc::Receiver<Completion>,
    collected: Arc<AtomicU64>,
) -> std::thread::JoinHandle<u64> {
    std::thread::Builder::new()
        .name("iba-serve-collector".into())
        .spawn(move || {
            let mut max_wait = 0;
            for completion in completions {
                collected.fetch_add(1, Ordering::Relaxed);
                max_wait = max_wait.max(completion.waiting_rounds);
            }
            max_wait
        })
        .expect("spawn collector thread")
}

/// Installs the pool-bound-driven autoscaler (`--elastic`): grow under
/// sustained pressure up to 4n bins, hand capacity back down to n/4.
fn arm_elastic(service: &mut CappedService, opts: &Options) -> Result<(), String> {
    let min_bins = (opts.n / 4).max(1);
    let max_bins = opts.n.saturating_mul(4);
    service
        .set_autoscaler(Autoscaler::new(AutoscalerConfig::new(min_bins, max_bins)))
        .map_err(|e| format!("--elastic needs a uniform finite-capacity config: {e}"))?;
    println!("serve_demo: elastic autoscaler armed: bins in [{min_bins}, {max_bins}]");
    Ok(())
}

/// Reports an invariant violation: with telemetry on, marks the flight
/// recorder and dumps a post-mortem (last rounds + registry snapshot) to
/// stderr before failing the run.
fn violation(round: u64, message: String) -> String {
    if iba_obs::enabled() {
        iba_obs::flight::fault_triggered(round, "invariant-violation");
        eprintln!(
            "{}",
            iba_obs::flight::PostMortem::capture(&message).to_json()
        );
    }
    message
}

/// Network mode: serve the wire protocol and the `GET /metrics` scrape
/// plane on `addr` for `opts.rounds` rounds, then report and exit.
/// Telemetry is always enabled here — a scrape plane with an empty
/// registry would be pointless.
fn run_listen(opts: &Options, addr: &str) -> Result<(), String> {
    iba_obs::set_enabled(true);
    iba_obs::flight::install_panic_hook();
    iba_obs::flight::set_run_context(
        iba_obs::json::Provenance::collect().with_kernel(opts.kernel.name(), opts.shards),
    );
    let capped = CappedConfig::new(opts.n, opts.c, opts.lambda)
        .map_err(|e| format!("invalid CAPPED parameters: {e}"))?;
    let service_config = ServiceConfig::new(capped, opts.shards, opts.seed)
        .with_rng_mode(opts.mode)
        .with_kernel(opts.kernel)
        .with_ingress_capacity(opts.ingress_capacity);
    let mut autosaver = opts
        .checkpoint
        .as_ref()
        .map(|path| ServeAutosaver::new(path, opts.checkpoint_every));
    let mut service = match (&autosaver, opts.resume) {
        (Some(saver), true) => {
            let service = saver
                .recover(service_config.clone())
                .map_err(|e| format!("cannot resume from {}: {e}", saver.path().display()))?;
            println!(
                "serve_demo: resumed from {} at round {}",
                saver.path().display(),
                service.round()
            );
            service
        }
        _ => CappedService::spawn(service_config)
            .map_err(|e| format!("invalid service configuration: {e}"))?,
    };
    if opts.elastic {
        arm_elastic(&mut service, opts)?;
    }
    let completions = service.take_completions().expect("fresh service");
    let mut frontend = NetFrontend::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    if let Some(spec) = &opts.chaos {
        let plan = parse_chaos(spec)?;
        let chaos_seed = opts.chaos_seed.unwrap_or(opts.seed);
        println!(
            "serve_demo: chaos armed: {} fault rounds, seed {chaos_seed}",
            plan.len()
        );
        frontend.arm_faults(plan, chaos_seed);
    }
    let pace_us = if opts.pace_us == 0 { 500 } else { opts.pace_us };
    // The "listening on" line is the readiness signal scripted drivers
    // key off; flush so it is visible even through a pipe.
    println!("serve_demo: listening on {}", frontend.local_addr());
    println!(
        "serve_demo: n={} c={} lambda={} shards={} mode={:?} rounds={} pace={pace_us}us",
        opts.n, opts.c, opts.lambda, opts.shards, opts.mode, opts.rounds
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let start = Instant::now();
    let loop_options = NetLoopOptions {
        round_interval: Duration::from_micros(pace_us),
        ..NetLoopOptions::default()
    };
    let stop = AtomicBool::new(false);
    let mut summary = iba_serve::NetLoopSummary::default();
    let mut checkpoints_written = 0u64;
    let mut rounds_left = opts.rounds;
    // With autosaving on, run the loop in checkpoint-interval segments and
    // save between them; otherwise one uninterrupted run.
    while rounds_left > 0 {
        let chunk = match &autosaver {
            Some(_) => opts.checkpoint_every.min(rounds_left),
            None => rounds_left,
        };
        let segment = run_net_loop(
            &mut service,
            &mut frontend,
            &completions,
            &NetLoopOptions {
                max_rounds: chunk,
                ..loop_options.clone()
            },
            &stop,
        );
        rounds_left -= segment.rounds_run.min(rounds_left);
        summary.rounds_run += segment.rounds_run;
        summary.completions_delivered += segment.completions_delivered;
        summary.idle_polls += segment.idle_polls;
        if let Some(saver) = &mut autosaver {
            saver
                .save_now(&mut service)
                .map_err(|e| format!("checkpoint save failed: {e}"))?;
            checkpoints_written += 1;
        }
    }
    if checkpoints_written > 0 {
        println!(
            "serve_demo: {checkpoints_written} checkpoints written to {}",
            opts.checkpoint.as_deref().unwrap_or("?")
        );
    }
    if !service.conserves_balls() {
        return Err(violation(
            service.round(),
            "network run violates service conservation".into(),
        ));
    }
    let stats = frontend.stats();
    println!("--- report ---");
    println!(
        "rounds: {} in {:.3} s wall, {} completions delivered",
        summary.rounds_run,
        start.elapsed().as_secs_f64(),
        summary.completions_delivered
    );
    println!(
        "net: {} conns, {} frames in, {} accepted, {} saturated, {} closed, {} scrapes, {} proto errors",
        stats.accepted_conns,
        stats.frames,
        stats.allocs_accepted,
        stats.allocs_saturated,
        stats.allocs_closed,
        stats.scrapes,
        stats.proto_errors
    );
    match service.wait_quantiles() {
        Some(wait) => println!("waiting time (rounds): {wait}"),
        None => println!("waiting time: no balls served"),
    }
    if opts.elastic {
        println!(
            "elastic: {} bins live after {} membership events, {} balls moved",
            service.live_bins(),
            service.membership_events(),
            service.balls_moved()
        );
    }
    let exposition = iba_obs::expo::render_registry(iba_obs::global());
    let parsed = iba_obs::expo::parse(&exposition)
        .map_err(|e| format!("telemetry exposition failed to parse: {e}"))?;
    println!(
        "telemetry self-check: {} samples parsed strictly",
        parsed.samples.len()
    );
    println!("invariants: conservation held over the network run");
    Ok(())
}

fn run(opts: &Options) -> Result<(), String> {
    iba_obs::init_from_env();
    if let Some(addr) = opts.listen.clone() {
        return run_listen(opts, &addr);
    }
    if opts.telemetry {
        iba_obs::set_enabled(true);
    }
    if iba_obs::enabled() {
        iba_obs::flight::install_panic_hook();
        iba_obs::flight::set_run_context(
            iba_obs::json::Provenance::collect().with_kernel(opts.kernel.name(), opts.shards),
        );
    }
    let capped = CappedConfig::new(opts.n, opts.c, opts.lambda)
        .map_err(|e| format!("invalid CAPPED parameters: {e}"))?;
    let per_round = (opts.lambda * opts.n as f64).round() as u64;
    let target = opts.rounds * per_round;
    let mut service = CappedService::spawn(
        ServiceConfig::new(capped, opts.shards, opts.seed)
            .with_rng_mode(opts.mode)
            .with_kernel(opts.kernel)
            .with_ingress_capacity(opts.ingress_capacity)
            .with_max_admit_per_round(Some(per_round)),
    )
    .map_err(|e| format!("invalid service configuration: {e}"))?;
    if opts.elastic {
        arm_elastic(&mut service, opts)?;
    }

    println!(
        "serve_demo: n={} c={} lambda={} shards={} mode={:?} target={} requests ({} rounds x {}/round)",
        opts.n, opts.c, opts.lambda, opts.shards, opts.mode, target, opts.rounds, per_round
    );

    let generators = spawn_generators(&service.dispatcher(), opts.generators, target);
    let collected = Arc::new(AtomicU64::new(0));
    let completion_rx = service.take_completions().expect("fresh service");
    let collector = spawn_collector(completion_rx, Arc::clone(&collected));

    let pacing = if opts.pace_us == 0 {
        Pacing::Immediate
    } else {
        Pacing::Interval(Duration::from_micros(opts.pace_us))
    };
    let mut clock = RoundClock::new(pacing);
    // The pool drains after submission stops; allow generous extra rounds
    // before declaring the run stuck.
    let round_cap = opts.rounds * 10 + 1_000;
    let start = Instant::now();
    let mut rounds_run = 0;
    while service.total_served() < target {
        if rounds_run >= round_cap {
            return Err(format!(
                "stuck: served {}/{target} after {rounds_run} rounds",
                service.total_served()
            ));
        }
        clock.wait();
        let report = service.run_round();
        rounds_run += 1;
        if !report.conserves_balls() {
            return Err(violation(
                report.round,
                format!("round {} violates report conservation", report.round),
            ));
        }
        if !service.conserves_balls() {
            return Err(violation(
                report.round,
                format!("round {} violates service conservation", report.round),
            ));
        }
        if report.max_load > u64::from(opts.c) {
            return Err(violation(
                report.round,
                format!(
                    "round {}: max load {} exceeds capacity {}",
                    report.round, report.max_load, opts.c
                ),
            ));
        }
        if opts.metrics_every > 0 && rounds_run % opts.metrics_every == 0 {
            println!("{}", service.snapshot().to_json_line());
        }
    }
    let elapsed = start.elapsed();

    let mut offered = 0;
    for generator in generators {
        offered += generator.join().expect("generator thread panicked");
    }
    if offered != target {
        return Err(format!("generators offered {offered}, expected {target}"));
    }
    let snapshot = service.snapshot();
    let elastic_state = (
        service.live_bins(),
        service.membership_events(),
        service.balls_moved(),
    );
    // Dropping the service joins the workers AND closes the completion
    // channel, which is what lets the collector's loop terminate.
    drop(service);
    let max_wait_seen = collector.join().expect("collector thread panicked");
    let notified = collected.load(Ordering::Relaxed);

    if snapshot.total_served != target {
        return Err(format!(
            "served {} != target {target}",
            snapshot.total_served
        ));
    }
    if notified != target {
        return Err(format!("completions {notified} != target {target}"));
    }

    let secs = elapsed.as_secs_f64().max(1e-9);
    println!("--- report ---");
    println!(
        "requests: {target} served in {rounds_run} rounds, {:.3} s wall",
        elapsed.as_secs_f64()
    );
    println!(
        "throughput: {:.0} requests/s, {:.1} rounds/s",
        target as f64 / secs,
        rounds_run as f64 / secs
    );
    match &snapshot.wait {
        Some(wait) => println!("waiting time (rounds): {wait} (completion max {max_wait_seen})"),
        None => println!("waiting time: no balls served"),
    }
    println!(
        "final state: pool={} buffered={} shard max loads {:?}",
        snapshot.pool_size, snapshot.buffered, snapshot.shard_max_load
    );
    if opts.elastic {
        let (live_bins, events, moved) = elastic_state;
        println!(
            "elastic: {live_bins} bins live after {events} membership events, {moved} balls moved"
        );
    }
    println!("invariants: conservation and capacity held every round");

    if iba_obs::enabled() {
        // Print the Prometheus exposition and round-trip it through the
        // strict parser — the CI observability smoke job keys off this.
        let exposition = iba_obs::expo::render_registry(iba_obs::global());
        let parsed = iba_obs::expo::parse(&exposition)
            .map_err(|e| format!("telemetry exposition failed to parse: {e}"))?;
        let dump = iba_obs::flight::PostMortem::capture("serve_demo exit");
        let round_trip = iba_obs::flight::PostMortem::from_json(&dump.to_json())
            .map_err(|e| format!("post-mortem dump failed to round-trip: {e}"))?;
        if round_trip.events.len() != dump.events.len() {
            return Err("post-mortem round-trip lost flight events".into());
        }
        println!("--- telemetry ---");
        print!("{exposition}");
        println!(
            "telemetry self-check: {} samples parsed, {} flight events round-tripped",
            parsed.samples.len(),
            dump.events.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("serve_demo FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}
