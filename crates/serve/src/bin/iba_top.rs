//! `iba-top`: a live terminal dashboard over a running CAPPED(c, λ)
//! dispatch service.
//!
//! Spawns a sharded [`CappedService`] under the configured model arrival
//! load with telemetry force-enabled, drives it round by round, and
//! refreshes a `top`-style dashboard: pool size against the paper's
//! Theorem 1 bound `4·c⁻¹·ln(1/(1−λ))·n + O(c·n)`, exact waiting-time
//! quantiles, per-shard max loads, and the phase-timing breakdown from
//! the telemetry registry's histograms.
//!
//! ```text
//! cargo run --release -p iba-serve --bin iba-top -- \
//!     --n 16384 --c 4 --lambda 0.95 --shards 8 --rounds 2000
//! ```
//!
//! When stdout is a terminal the dashboard redraws in place (ANSI cursor
//! homing); otherwise (CI, pipes) each refresh is printed as a plain
//! frame. `--rounds 0` runs until interrupted.

use std::fmt::Write as _;
use std::io::{IsTerminal, Write as _};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use iba_analysis::bounds::theorem2_pool_bound;
use iba_core::CappedConfig;
use iba_exp::registry::{unix_time_now, RunRecord, RunRegistry};
use iba_obs::json::{content_hash, Provenance};
use iba_obs::HistogramSnapshot;
use iba_serve::{CappedService, KernelMode, Pacing, RngMode, RoundClock, ServiceConfig};

struct Options {
    n: usize,
    c: u32,
    lambda: f64,
    shards: usize,
    rounds: u64,
    seed: u64,
    refresh_ms: u64,
    pace_us: u64,
    mode: RngMode,
    kernel: KernelMode,
    /// Write one final plain-text dashboard frame here and exit.
    snapshot: Option<String>,
    /// Append the final state as a registry `RunRecord` JSON line here.
    snapshot_json: Option<String>,
}

impl Options {
    fn defaults() -> Self {
        Options {
            // lambda * n must be integral for the deterministic arrival
            // model, hence 16 000 rather than a power of two.
            n: 16_000,
            c: 4,
            lambda: 0.95,
            shards: 8,
            rounds: 2_000,
            seed: 2021,
            refresh_ms: 250,
            pace_us: 1_000,
            mode: RngMode::PerShard,
            kernel: KernelMode::default(),
            snapshot: None,
            snapshot_json: None,
        }
    }
}

const USAGE: &str = "iba-top: live dashboard over a sharded CAPPED(c, lambda) service

USAGE: iba-top [--n BINS] [--c CAP] [--lambda L] [--shards S] [--rounds N]
               [--seed SEED] [--refresh-ms MS] [--pace-us MICROS]
               [--mode central|pershard] [--kernel scalar|arena|simd|parallel]
               [--snapshot PATH] [--snapshot-json PATH]

Runs the service under model arrivals with telemetry enabled and refreshes
a top-style dashboard: pool vs the Theorem 1 bound, waiting-time quantiles,
per-shard max loads, and the registry's phase-timing breakdown.
--rounds 0 runs until interrupted; otherwise the final frame is printed and
the process exits 0.
--snapshot runs quietly and writes the final frame to PATH as plain text
(one-shot mode, for scripts and dashboards). --snapshot-json appends the
final state to PATH as an experiment-registry run record (provenance,
config hash, metrics) — the same JSONL store the bench harnesses feed.";

fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value for {flag}: {value}"))
}

/// Parses a `--kernel` value; every mode is bit-exact, so this is purely
/// a performance knob (see DESIGN.md "Round kernel").
fn parse_kernel(value: &str) -> Result<KernelMode, String> {
    match value {
        "scalar" => Ok(KernelMode::Scalar),
        "arena" => Ok(KernelMode::Arena),
        "simd" => Ok(KernelMode::ArenaSimd),
        "parallel" => Ok(KernelMode::ArenaParallel),
        other => Err(format!(
            "--kernel must be scalar|arena|simd|parallel, got {other}"
        )),
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::defaults();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--n" => opts.n = parse_value(&flag, &value)?,
            "--c" => opts.c = parse_value(&flag, &value)?,
            "--lambda" => opts.lambda = parse_value(&flag, &value)?,
            "--shards" => opts.shards = parse_value(&flag, &value)?,
            "--rounds" => opts.rounds = parse_value(&flag, &value)?,
            "--seed" => opts.seed = parse_value(&flag, &value)?,
            "--refresh-ms" => opts.refresh_ms = parse_value(&flag, &value)?,
            "--pace-us" => opts.pace_us = parse_value(&flag, &value)?,
            "--mode" => {
                opts.mode = match value.as_str() {
                    "central" => RngMode::Central,
                    "pershard" => RngMode::PerShard,
                    _ => return Err(format!("--mode must be central or pershard, got {value}")),
                }
            }
            "--kernel" => opts.kernel = parse_kernel(&value)?,
            "--snapshot" => opts.snapshot = Some(value),
            "--snapshot-json" => opts.snapshot_json = Some(value),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

/// One phase-timing row: p50/p99/max of a nanosecond histogram, in µs.
fn timing_row(name: &str, snap: &HistogramSnapshot) -> String {
    if snap.count == 0 {
        return format!("  {name:<12} (no samples)");
    }
    let us = |v: Option<u64>| v.map_or(0.0, |v| v as f64 / 1_000.0);
    format!(
        "  {name:<12} p50 {:>9.1} us   p99 {:>9.1} us   max {:>9.1} us   ({} samples)",
        us(snap.quantile(0.50)),
        us(snap.quantile(0.99)),
        us(snap.max_bound()),
        snap.count
    )
}

/// A `[####----]` utilization bar of `width` cells.
fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut out = String::with_capacity(width + 2);
    out.push('[');
    for i in 0..width {
        out.push(if i < filled { '#' } else { '-' });
    }
    out.push(']');
    out
}

fn render_frame(
    opts: &Options,
    service: &CappedService,
    served_per_s: f64,
    started: Instant,
) -> String {
    let snap = service.snapshot();
    let registry = iba_obs::global();
    let mut frame = String::new();

    let total = if opts.rounds == 0 {
        "inf".to_string()
    } else {
        opts.rounds.to_string()
    };
    let _ = writeln!(
        frame,
        "iba-top — CAPPED(c={}, lambda={}) n={} shards={} mode={:?}  round {}/{}  up {:.1}s",
        opts.c,
        opts.lambda,
        opts.n,
        service.shards(),
        opts.mode,
        snap.round,
        total,
        started.elapsed().as_secs_f64()
    );

    // Elastic membership moves n at runtime, so the bin gauge and the
    // pool bound both track the *live* count, not the configured one.
    let bin_fraction = snap.bins as f64 / (2.0 * opts.n as f64);
    let _ = writeln!(
        frame,
        "bins   {:>10} live   {} {:>5.1}% of configured n={}  ({} moved by membership)",
        snap.bins,
        bar(bin_fraction, 40),
        snap.bins as f64 / opts.n as f64 * 100.0,
        opts.n,
        service.balls_moved(),
    );
    let bound = theorem2_pool_bound(snap.bins as usize, opts.c, opts.lambda);
    let fraction = snap.pool_size as f64 / bound;
    let _ = writeln!(
        frame,
        "pool   {:>10} balls  {} {:>5.1}% of Thm-1 bound {:.0}",
        snap.pool_size,
        bar(fraction, 40),
        fraction * 100.0,
        bound
    );
    let _ = writeln!(
        frame,
        "flow   generated {}  served {}  buffered {}  throughput {:.0} served/s",
        snap.total_generated, snap.total_served, snap.buffered, served_per_s
    );
    match &snap.wait {
        Some(wait) => {
            let _ = writeln!(
                frame,
                "wait   p50 {}  p99 {}  p999 {}  max {}  mean {:.2}  (rounds, {} served)",
                wait.p50, wait.p99, wait.p999, wait.max, wait.mean, wait.count
            );
        }
        None => {
            let _ = writeln!(frame, "wait   (no balls served yet)");
        }
    }

    // Per-shard max loads, elided in the middle past 16 shards.
    let loads = &snap.shard_max_load;
    let rendered: Vec<String> = if loads.len() <= 16 {
        loads.iter().map(u64::to_string).collect()
    } else {
        let mut v: Vec<String> = loads[..8].iter().map(u64::to_string).collect();
        v.push(format!("... {} more ...", loads.len() - 16));
        v.extend(loads[loads.len() - 8..].iter().map(u64::to_string));
        v
    };
    let _ = writeln!(
        frame,
        "shards max load [{}]  (capacity {})",
        rendered.join(" "),
        opts.c
    );

    let _ = writeln!(frame, "phase timings (from telemetry registry):");
    for (label, metric) in [
        ("route", "iba_serve_phase_route_nanos"),
        ("merge", "iba_serve_phase_merge_nanos"),
        ("shard round", "iba_serve_shard_round_nanos"),
        ("full round", "iba_serve_round_nanos"),
        // Kernel sub-phases (sampled only on SIMD/parallel kernel modes;
        // "prime" appears only on cold rounds — its absence at steady
        // state means the register-priming sweep is being elided).
        ("krn prime", "iba_core_phase_prime_nanos"),
        ("krn scatter", "iba_core_phase_scatter_nanos"),
        ("krn merge", "iba_core_phase_merge_nanos"),
    ] {
        let _ = writeln!(
            frame,
            "{}",
            timing_row(label, &registry.histogram(metric).snapshot())
        );
    }
    frame
}

/// The canonical config pairs identifying one iba-top run, hashed into
/// the registry record's `config_hash`.
fn config_pairs(opts: &Options) -> Vec<(String, String)> {
    vec![
        ("benchmark".to_string(), "iba_top".to_string()),
        ("n".to_string(), opts.n.to_string()),
        ("c".to_string(), opts.c.to_string()),
        ("lambda".to_string(), format!("{}", opts.lambda)),
        ("shards".to_string(), opts.shards.to_string()),
        ("rounds".to_string(), opts.rounds.to_string()),
        ("seed".to_string(), opts.seed.to_string()),
        ("kernel".to_string(), opts.kernel.name().to_string()),
    ]
}

/// Builds the registry run record for `--snapshot-json`: the final
/// service state flattened to metrics, under the run's provenance.
fn snapshot_record(opts: &Options, service: &CappedService, wall_ms: f64) -> RunRecord {
    let snap = service.snapshot();
    let bound = theorem2_pool_bound(snap.bins as usize, opts.c, opts.lambda);
    let mut metrics = vec![
        ("round".to_string(), snap.round as f64),
        ("bins".to_string(), snap.bins as f64),
        ("pool_size".to_string(), snap.pool_size as f64),
        ("pool_bound".to_string(), bound),
        ("pool_over_bound".to_string(), snap.pool_size as f64 / bound),
        ("buffered".to_string(), snap.buffered as f64),
        ("total_generated".to_string(), snap.total_generated as f64),
        ("total_served".to_string(), snap.total_served as f64),
        ("balls_moved".to_string(), service.balls_moved() as f64),
    ];
    if let Some(wait) = &snap.wait {
        metrics.push(("wait.mean".to_string(), wait.mean));
        metrics.push(("wait.p50".to_string(), wait.p50 as f64));
        metrics.push(("wait.p99".to_string(), wait.p99 as f64));
        metrics.push(("wait.p999".to_string(), wait.p999 as f64));
        metrics.push(("wait.max".to_string(), wait.max as f64));
    }
    RunRecord {
        benchmark: "iba_top".to_string(),
        config_hash: content_hash(&config_pairs(opts)),
        seed: opts.seed,
        provenance: Provenance::collect().with_kernel(opts.kernel.name(), opts.shards),
        wall_ms,
        unix_time: unix_time_now(),
        metrics,
    }
}

fn run(opts: &Options) -> Result<(), String> {
    iba_obs::set_enabled(true);
    iba_obs::flight::install_panic_hook();
    iba_obs::flight::set_run_context(
        Provenance::collect().with_kernel(opts.kernel.name(), opts.shards),
    );

    let capped = CappedConfig::new(opts.n, opts.c, opts.lambda)
        .map_err(|e| format!("invalid CAPPED parameters: {e}"))?;
    let mut service = CappedService::spawn(
        ServiceConfig::new(capped, opts.shards, opts.seed)
            .with_rng_mode(opts.mode)
            .with_kernel(opts.kernel)
            .with_model_arrivals(true),
    )
    .map_err(|e| format!("invalid service configuration: {e}"))?;

    // One-shot modes run quietly: no periodic frames, just the final
    // snapshot artifact(s).
    let quiet = opts.snapshot.is_some() || opts.snapshot_json.is_some();
    let interactive = !quiet && std::io::stdout().is_terminal();
    let refresh = Duration::from_millis(opts.refresh_ms.max(1));
    let pacing = if opts.pace_us == 0 {
        Pacing::Immediate
    } else {
        Pacing::Interval(Duration::from_micros(opts.pace_us))
    };
    let mut clock = RoundClock::new(pacing);

    let started = Instant::now();
    let mut next_refresh = started + refresh;
    let mut last_served = 0u64;
    let mut last_frame_at = started;
    loop {
        clock.wait();
        let report = service.run_round();
        if !report.conserves_balls() || !service.conserves_balls() {
            iba_obs::flight::fault_triggered(report.round, "invariant-violation");
            eprintln!(
                "{}",
                iba_obs::flight::PostMortem::capture("iba-top conservation violation").to_json()
            );
            return Err(format!("round {} violates conservation", report.round));
        }
        let done = opts.rounds != 0 && report.round >= opts.rounds;
        if !quiet && (Instant::now() >= next_refresh || done) {
            let now = Instant::now();
            let dt = now.duration_since(last_frame_at).as_secs_f64().max(1e-9);
            let served_per_s = (service.total_served() - last_served) as f64 / dt;
            last_served = service.total_served();
            last_frame_at = now;
            next_refresh = now + refresh;
            let frame = render_frame(opts, &service, served_per_s, started);
            let mut stdout = std::io::stdout().lock();
            if interactive {
                // Home the cursor and clear to end of screen, then redraw.
                let _ = write!(stdout, "\x1b[H\x1b[J{frame}");
            } else {
                let _ = writeln!(stdout, "{frame}");
            }
            let _ = stdout.flush();
        }
        if done {
            break;
        }
    }
    if interactive {
        println!();
    }
    if let Some(path) = opts.snapshot.as_deref() {
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        let served_per_s = service.total_served() as f64 / elapsed;
        let frame = render_frame(opts, &service, served_per_s, started);
        std::fs::write(path, &frame).map_err(|e| format!("writing snapshot {path}: {e}"))?;
        eprintln!("wrote snapshot frame to {path}");
    }
    if let Some(path) = opts.snapshot_json.as_deref() {
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let record = snapshot_record(opts, &service, wall_ms);
        let mut registry = RunRegistry::open(std::path::Path::new(path))
            .map_err(|e| format!("registry {path}: {e}"))?;
        registry
            .append(record)
            .map_err(|e| format!("registry {path}: {e}"))?;
        eprintln!("appended run record to {path}");
    }
    service.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("iba-top FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}
