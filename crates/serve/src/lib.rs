//! A sharded, multi-threaded dispatch service running the CAPPED(c, λ)
//! discipline of *"Infinite Balanced Allocation via Finite Capacities"*
//! (ICDCS 2021) as a live system instead of an offline simulation.
//!
//! The crate turns [`iba_core::process::CappedProcess`] into a service:
//!
//! - **Sharded bin state** ([`service`]) — the `n` bins are partitioned
//!   into `S` contiguous shards ([`iba_core::shard::BinShard`]), each owned
//!   by one worker thread. The driver broadcasts the allocate/accept/serve
//!   phases of every round to the workers over `std::sync::mpsc` channels
//!   and merges their replies.
//! - **Round clock** ([`clock`]) — rounds are logical epochs; an optional
//!   wall-clock pacing mode spaces them at a fixed interval.
//! - **Admission front end** ([`dispatch`]) — clients submit requests
//!   through a [`Dispatcher`] backed by a *bounded* ingress queue
//!   (backpressure), receive a per-request [`Ticket`], and are notified of
//!   service with a [`Completion`] carrying the measured waiting time.
//! - **Network front end** ([`net`] + [`proto`]) — a std-only,
//!   non-blocking TCP listener speaking a small length-prefixed wire
//!   protocol for allocation requests (explicit saturation replies as
//!   backpressure, streamed completion notifications), with the
//!   [`iba_obs`] Prometheus exposition served over minimal HTTP
//!   (`GET /metrics`) on the same event loop for mid-run scraping.
//! - **Workload generation** ([`workload`]) — open-loop λn-per-round
//!   arrivals plus burst/surge scenarios described by the same
//!   [`iba_sim::faults::FaultPlan`] schedules the simulator uses.
//! - **Live metrics** ([`metrics`]) — periodic JSON-lines snapshots of
//!   pool size, per-shard max load, and exact p50/p99/p999 waiting-time
//!   quantiles ([`iba_core::metrics::WaitQuantiles`]).
//!
//! Everything is std-only: no async runtime, no external crates.
//!
//! # Determinism and the differential guarantee
//!
//! In [`RngMode::Central`] the driver owns the single RNG stream and
//! consumes randomness in exactly the order `CappedProcess` does (the
//! arrival sample, then one uniform bin per pooled ball oldest-first), so
//! the service's round-by-round trajectory — pool size, bin loads,
//! waiting times — is **bit-identical** to the bare process under the same
//! seed, for *any* shard count. The `differential` integration test pins
//! this. [`RngMode::PerShard`] instead splits one decorrelated stream per
//! worker from the master seed for scalable randomness generation; the
//! trajectory is then statistically equivalent rather than bit-equal.
//!
//! # Example
//!
//! ```
//! use iba_core::CappedConfig;
//! use iba_serve::{RngMode, ServiceConfig, CappedService};
//!
//! # fn main() -> Result<(), iba_sim::error::ConfigError> {
//! let capped = CappedConfig::new(64, 2, 0.75)?;
//! let mut service = CappedService::spawn(
//!     ServiceConfig::new(capped, 4, 7)
//!         .with_rng_mode(RngMode::Central)
//!         .with_model_arrivals(true),
//! )?;
//! let report = service.run_round();
//! assert_eq!(report.generated, 48); // λn = 0.75 · 64
//! assert!(service.conserves_balls());
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod checkpoint;
pub mod client;
pub mod clock;
pub mod dispatch;
pub mod metrics;
pub mod net;
mod obs;
pub mod proto;
pub mod service;
mod shard;
pub mod workload;

pub use chaos::{NetFault, NetFaultPlan};
pub use checkpoint::{ResumeError, ServeAutosaver, ServeCheckpointError};
pub use client::{ClientConfig, ClientError, ClientStats, NetClient};
pub use clock::{Pacing, RoundClock};
pub use dispatch::{Completion, Dispatcher, SubmitError, Ticket};
pub use metrics::ServeSnapshot;
pub use net::{
    run_net_loop, AdmissionControl, NetFrontend, NetLoopOptions, NetLoopSummary, NetStats,
};
pub use proto::{CloseReason, Frame, FrameDecoder, ProtoError};
pub use service::{CappedService, RngMode, ServiceConfig};
// Re-exported so serve-layer users can pick a round kernel without a
// direct `iba_core` dependency (`ServiceConfig::with_kernel`).
pub use iba_core::KernelMode;
pub use workload::{run_open_loop, OpenLoop, WorkloadSummary};
