//! A deadline-and-retry wire-protocol client for the network front end.
//!
//! [`NetClient`] is the client half the chaos harness measures through: a
//! single blocking connection to a [`NetFrontend`](crate::net::NetFrontend)
//! that survives everything the fault injector throws at the transport —
//! resets, stalls, typed refusals — by layering three mechanisms:
//!
//! - **Deadlines**: every submission carries a wall-clock budget; when it
//!   runs out the attempt is abandoned with
//!   [`ClientError::DeadlineExpired`] rather than hanging.
//! - **Jittered exponential backoff**: retryable refusals
//!   ([`Frame::Saturated`], [`CloseReason::Quota`],
//!   [`CloseReason::Drain`]) and transport failures back off
//!   `base · 2^attempt`, capped, with ±25 % deterministic jitter from a
//!   seeded [`SimRng`] so a thundering herd decorrelates reproducibly.
//! - **Idempotent re-submission**: the request id is assigned once per
//!   logical request and reused verbatim across retries and reconnects,
//!   so a duplicate acceptance is *observable* (the second
//!   [`Frame::Accepted`] for the same id is counted as a duplicate
//!   rather than a new ticket) — the retry-amplification metric in the
//!   chaos bench comes straight from these counters.
//!
//! Completion frames are harvested opportunistically on every read and
//! buffered; [`NetClient::take_completions`] hands them out. A dropped
//! connection loses the server-side ticket routing (the server serves
//! the ball regardless — the paper's pool semantics), so under chaos
//! `completed ≤ accepted`: exactly the goodput gap the bench reports.

use std::collections::VecDeque;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use iba_sim::SimRng;

use crate::proto::{self, CloseReason, Frame, FrameDecoder};

/// Configuration of a [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The front end's address.
    pub addr: SocketAddr,
    /// Budget for establishing (and re-establishing) the connection.
    pub connect_timeout: Duration,
    /// Default per-request deadline used by [`NetClient::submit`].
    pub deadline: Duration,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff delay.
    pub backoff_max: Duration,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl ClientConfig {
    /// Defaults tuned for in-process tests and benches: 1 s connect
    /// budget, 2 s deadline, 1 ms → 100 ms backoff.
    pub fn new(addr: SocketAddr) -> Self {
        ClientConfig {
            addr,
            connect_timeout: Duration::from_secs(1),
            deadline: Duration::from_secs(2),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(100),
            seed: 0,
        }
    }

    /// Sets the default per-request deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the backoff range.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_max = max;
        self
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Why a submission failed for good.
#[derive(Debug)]
pub enum ClientError {
    /// The deadline elapsed before an acceptance arrived.
    DeadlineExpired,
    /// The server refused with a non-retryable close (shutdown).
    Closed(CloseReason),
    /// The connection could not be (re-)established within the deadline.
    Connect(std::io::Error),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::DeadlineExpired => write!(f, "request deadline expired"),
            ClientError::Closed(reason) => write!(f, "server closed the request: {reason}"),
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect(e) => Some(e),
            _ => None,
        }
    }
}

/// Lifetime counters of one client (the chaos bench's raw material).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Logical requests submitted (each gets one request id).
    pub submitted: u64,
    /// Wire attempts, including retries of the same request id.
    pub attempts: u64,
    /// Requests accepted (first acceptance per request id).
    pub accepted: u64,
    /// Extra acceptances for an already-accepted request id (the cost of
    /// retrying: the same logical request was admitted twice).
    pub duplicate_accepts: u64,
    /// Completion frames received.
    pub completed: u64,
    /// `Saturated` replies observed (backpressure + shed).
    pub saturated: u64,
    /// `Closed` replies with [`CloseReason::Quota`].
    pub closed_quota: u64,
    /// `Closed` replies with [`CloseReason::Drain`].
    pub closed_drain: u64,
    /// `Closed` replies with [`CloseReason::SlowConsumer`].
    pub closed_slow_consumer: u64,
    /// `Closed` replies with [`CloseReason::Shutdown`].
    pub closed_shutdown: u64,
    /// Requests abandoned at their deadline.
    pub deadline_expired: u64,
    /// Successful reconnects after a transport failure.
    pub reconnects: u64,
    /// Retry sleeps taken (≈ attempts − submitted, plus transport
    /// retries).
    pub retries: u64,
}

/// One completion notification, decoded from [`Frame::Completed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionEvent {
    /// The server-assigned ticket.
    pub ticket: u64,
    /// Global bin index that served the request.
    pub bin: u64,
    /// Round the request was admitted.
    pub admitted_round: u64,
    /// Round the request was served.
    pub served_round: u64,
    /// `served_round − admitted_round`.
    pub waiting_rounds: u64,
}

/// What one pump of the reply stream produced for a specific request id.
enum Reply {
    Accepted(u64),
    Saturated,
    Closed(CloseReason),
    /// Transport failed (EOF, reset, protocol garbage) — reconnect.
    Transport,
}

/// The deadline/retry client. See the [module docs](self).
#[derive(Debug)]
pub struct NetClient {
    config: ClientConfig,
    stream: Option<TcpStream>,
    decoder: FrameDecoder,
    rng: SimRng,
    next_req_id: u64,
    /// Request ids already accepted once — further acceptances are
    /// duplicates (idempotent re-submission made visible).
    accepted_ids: std::collections::HashSet<u64>,
    completions: VecDeque<CompletionEvent>,
    stats: ClientStats,
}

impl NetClient {
    /// A client for `config.addr`. Does not connect yet — the first
    /// submission does.
    pub fn new(config: ClientConfig) -> Self {
        let seed = config.seed;
        NetClient {
            config,
            stream: None,
            decoder: FrameDecoder::new(),
            rng: SimRng::seed_from(seed),
            next_req_id: 1,
            accepted_ids: std::collections::HashSet::new(),
            completions: VecDeque::new(),
            stats: ClientStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Buffered completion events, in arrival order.
    pub fn take_completions(&mut self) -> Vec<CompletionEvent> {
        self.completions.drain(..).collect()
    }

    /// Submits one request with the configured default deadline.
    ///
    /// # Errors
    ///
    /// See [`submit_with_deadline`](Self::submit_with_deadline).
    pub fn submit(&mut self) -> Result<u64, ClientError> {
        self.submit_with_deadline(self.config.deadline)
    }

    /// Submits one request, retrying with jittered exponential backoff
    /// until it is accepted or `deadline` elapses, and returns the
    /// server-assigned ticket.
    ///
    /// The request id is fixed up front and reused across every retry
    /// and reconnect (idempotent re-submission); completions arriving
    /// while waiting are buffered for [`take_completions`].
    ///
    /// # Errors
    ///
    /// [`ClientError::DeadlineExpired`] when the budget runs out,
    /// [`ClientError::Closed`] on a shutdown refusal,
    /// [`ClientError::Connect`] when the transport cannot be established
    /// at all.
    pub fn submit_with_deadline(&mut self, deadline: Duration) -> Result<u64, ClientError> {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.stats.submitted += 1;
        let deadline = Instant::now() + deadline;
        let mut attempt: u32 = 0;
        loop {
            if Instant::now() >= deadline {
                self.stats.deadline_expired += 1;
                return Err(ClientError::DeadlineExpired);
            }
            match self.attempt_once(req_id, deadline) {
                Ok(Reply::Accepted(ticket)) => return Ok(ticket),
                Ok(Reply::Saturated) => {}
                Ok(Reply::Closed(CloseReason::Shutdown)) => {
                    return Err(ClientError::Closed(CloseReason::Shutdown));
                }
                Ok(Reply::Closed(_)) => {} // quota/drain/slow-consumer: retry
                Ok(Reply::Transport) => self.disconnect(),
                Err(e) => {
                    // Could not even connect; if the deadline still has
                    // room, back off and try again, else surface it.
                    if Instant::now() + self.backoff(attempt) >= deadline {
                        self.stats.deadline_expired += 1;
                        return Err(ClientError::Connect(e));
                    }
                }
            }
            self.stats.retries += 1;
            let sleep = self
                .backoff(attempt)
                .min(deadline.saturating_duration_since(Instant::now()));
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
            attempt = attempt.saturating_add(1);
        }
    }

    /// Reads the reply stream for up to `wait`, buffering any completion
    /// frames that arrive. Returns how many completions were buffered.
    /// Transport failures just disconnect (the next submission
    /// reconnects); they are not errors here.
    pub fn pump_completions(&mut self, wait: Duration) -> usize {
        let deadline = Instant::now() + wait;
        let before = self.completions.len();
        if self.stream.is_none() {
            return 0;
        }
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.read_some(remaining) {
                Ok(true) => {}
                Ok(false) => break,
                Err(()) => {
                    self.disconnect();
                    break;
                }
            }
            // Drain whatever frames the read produced.
            loop {
                match self.decoder.next_frame() {
                    Ok(Some(frame)) => self.note_frame(&frame),
                    Ok(None) => break,
                    Err(_) => {
                        self.disconnect();
                        return self.completions.len() - before;
                    }
                }
            }
        }
        self.completions.len() - before
    }

    /// One wire attempt: ensure the connection, send `Alloc`, then pump
    /// replies until this request id is answered, a transport failure
    /// occurs, or the deadline passes (reported as `Saturated` so the
    /// outer loop re-checks the clock).
    fn attempt_once(&mut self, req_id: u64, deadline: Instant) -> Result<Reply, std::io::Error> {
        self.ensure_connected(deadline)?;
        self.stats.attempts += 1;
        let mut out = Vec::with_capacity(proto::MAX_FRAME_LEN as usize);
        Frame::Alloc { req_id }.encode_into(&mut out);
        let stream = self.stream.as_mut().expect("just connected");
        if stream.write_all(&out).is_err() {
            return Ok(Reply::Transport);
        }
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(Reply::Saturated);
            }
            match self.read_some(remaining.min(Duration::from_millis(20))) {
                Ok(true) => {}
                Ok(false) => return Ok(Reply::Saturated), // re-check clock
                Err(()) => return Ok(Reply::Transport),
            }
            loop {
                match self.decoder.next_frame() {
                    Ok(Some(frame)) => {
                        if let Some(reply) = self.classify(&frame, req_id) {
                            return Ok(reply);
                        }
                    }
                    Ok(None) => break,
                    Err(_) => return Ok(Reply::Transport),
                }
            }
        }
    }

    /// Feeds one `read` into the decoder. `Ok(true)` = bytes arrived,
    /// `Ok(false)` = timed out with nothing, `Err` = transport dead.
    fn read_some(&mut self, timeout: Duration) -> Result<bool, ()> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(());
        };
        // A zero timeout means "no timeout" to the OS; clamp up instead.
        let timeout = timeout.max(Duration::from_millis(1));
        if stream.set_read_timeout(Some(timeout)).is_err() {
            return Err(());
        }
        let mut buf = [0u8; 4096];
        match stream.read(&mut buf) {
            Ok(0) => Err(()),
            Ok(k) => {
                self.decoder.push(&buf[..k]);
                Ok(true)
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                Ok(false)
            }
            Err(_) => Err(()),
        }
    }

    /// Updates counters for `frame`; returns the reply verdict if it
    /// answers `req_id`.
    fn classify(&mut self, frame: &Frame, req_id: u64) -> Option<Reply> {
        match *frame {
            Frame::Completed { .. } => {
                self.note_frame(frame);
                None
            }
            Frame::Accepted {
                req_id: rid,
                ticket,
            } => {
                if self.accepted_ids.insert(rid) {
                    self.stats.accepted += 1;
                    (rid == req_id).then_some(Reply::Accepted(ticket))
                } else {
                    // The same request id was accepted before (a retry
                    // raced its predecessor): count, don't re-deliver.
                    self.stats.duplicate_accepts += 1;
                    None
                }
            }
            Frame::Saturated { req_id: rid } => {
                self.stats.saturated += 1;
                (rid == req_id).then_some(Reply::Saturated)
            }
            Frame::Closed {
                req_id: rid,
                reason,
            } => {
                match reason {
                    CloseReason::Quota => self.stats.closed_quota += 1,
                    CloseReason::Drain => self.stats.closed_drain += 1,
                    CloseReason::SlowConsumer => self.stats.closed_slow_consumer += 1,
                    CloseReason::Shutdown => self.stats.closed_shutdown += 1,
                }
                // req_id 0 is a connection-level close; it answers
                // whatever we were waiting for.
                (rid == req_id || rid == 0).then_some(Reply::Closed(reason))
            }
            Frame::Alloc { .. } => None, // client-only opcode; ignore
        }
    }

    fn note_frame(&mut self, frame: &Frame) {
        if let Frame::Completed {
            ticket,
            bin,
            admitted_round,
            served_round,
            waiting_rounds,
        } = *frame
        {
            self.stats.completed += 1;
            self.completions.push_back(CompletionEvent {
                ticket,
                bin,
                admitted_round,
                served_round,
                waiting_rounds,
            });
        }
    }

    fn ensure_connected(&mut self, deadline: Instant) -> Result<(), std::io::Error> {
        if self.stream.is_some() {
            return Ok(());
        }
        let budget = self
            .config
            .connect_timeout
            .min(deadline.saturating_duration_since(Instant::now()))
            .max(Duration::from_millis(1));
        let stream = TcpStream::connect_timeout(&self.config.addr, budget)?;
        stream.set_nodelay(true)?;
        let mut stream = stream;
        stream.write_all(&proto::MAGIC)?;
        let had_one_before = self.stats.attempts > 0;
        if had_one_before {
            self.stats.reconnects += 1;
        }
        self.decoder = FrameDecoder::new();
        self.stream = Some(stream);
        Ok(())
    }

    fn disconnect(&mut self) {
        self.stream = None;
        self.decoder = FrameDecoder::new();
    }

    /// Backoff for retry number `attempt`: `base · 2^attempt`, capped at
    /// the configured max, jittered to 75–100 % deterministically.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_nanos() as u64;
        let max = self.config.backoff_max.as_nanos() as u64;
        let raw = base.saturating_shl(attempt.min(20)).min(max.max(base));
        let jitter = 0.75 + self.rng.unit_f64() * 0.25;
        Duration::from_nanos((raw as f64 * jitter) as u64)
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> ClientConfig {
        ClientConfig::new("127.0.0.1:1".parse().unwrap())
            .with_deadline(Duration::from_millis(50))
            .with_backoff(Duration::from_millis(1), Duration::from_millis(8))
            .with_seed(7)
    }

    #[test]
    fn backoff_doubles_caps_and_jitters() {
        let mut client = NetClient::new(test_config());
        for attempt in 0..32 {
            let b = client.backoff(attempt);
            let ceiling = Duration::from_millis(8);
            assert!(b <= ceiling, "attempt {attempt}: {b:?} > cap");
            let floor_nanos = (Duration::from_millis(1).as_nanos() as f64 * 0.75) as u64;
            assert!(
                b.as_nanos() as u64 >= floor_nanos.min(ceiling.as_nanos() as u64 * 3 / 4),
                "attempt {attempt}: {b:?} below jitter floor"
            );
        }
        // Determinism: same seed, same sequence.
        let mut a = NetClient::new(test_config());
        let mut b = NetClient::new(test_config());
        let seq_a: Vec<Duration> = (0..8).map(|i| a.backoff(i)).collect();
        let seq_b: Vec<Duration> = (0..8).map(|i| b.backoff(i)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn unreachable_server_expires_the_deadline() {
        // Port 1 refuses connections; the deadline bounds the failure.
        let mut client = NetClient::new(test_config());
        let start = Instant::now();
        let result = client.submit();
        assert!(matches!(
            result,
            Err(ClientError::Connect(_) | ClientError::DeadlineExpired)
        ));
        assert!(start.elapsed() < Duration::from_secs(5), "bounded failure");
        assert_eq!(client.stats().accepted, 0);
        assert_eq!(client.stats().submitted, 1);
    }

    #[test]
    fn errors_display() {
        assert!(ClientError::DeadlineExpired
            .to_string()
            .contains("deadline"));
        assert!(ClientError::Closed(CloseReason::Drain)
            .to_string()
            .contains("drain"));
        let io = std::io::Error::other("nope");
        assert!(ClientError::Connect(io).to_string().contains("nope"));
    }

    #[test]
    fn completion_buffering_counts() {
        let mut client = NetClient::new(test_config());
        let frame = Frame::Completed {
            ticket: 9,
            bin: 3,
            admitted_round: 5,
            served_round: 8,
            waiting_rounds: 3,
        };
        client.note_frame(&frame);
        client.note_frame(&frame);
        assert_eq!(client.stats().completed, 2);
        let events = client.take_completions();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].waiting_rounds, 3);
        assert!(client.take_completions().is_empty());
    }
}
