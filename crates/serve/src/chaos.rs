//! Deterministic socket-layer fault injection for the network front end.
//!
//! [`NetFaultPlan`] is the transport-layer sibling of
//! [`iba_sim::faults::FaultPlan`]: a round-keyed schedule of fault events,
//! applied by [`NetFrontend`](crate::net::NetFrontend) at the start of the
//! round they are scheduled for. Where the sim-layer plan perturbs the
//! *allocation process* (crashed bins, surges), this plan perturbs the
//! *sockets underneath it*: abrupt connection drops, read/write stalls
//! (slow consumers, slowloris writers), partial-write throttling, and
//! garbage injected mid-stream.
//!
//! Everything is deterministic: which connections a fault hits is drawn
//! from a [`SimRng`] stream seeded at
//! [`NetFrontend::arm_faults`](crate::net::NetFrontend::arm_faults), so
//! the same seed + plan + traffic reproduces the same chaos — the property
//! the chaos bench and the injected-fault tests rely on.
//!
//! Plans serialize with the shared checkpoint codec (tag `IBNF`), so a
//! chaos scenario can be stored next to the experiment that ran it.

use std::collections::BTreeMap;

use iba_sim::codec::{CodecError, Decoder, Encoder};

/// One scheduled socket fault.
///
/// `conns` counts are *upper bounds*: if fewer wire connections are
/// active when the event fires, every active one is targeted. Events
/// never target the HTTP metrics plane — chaos must not blind the
/// observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFault {
    /// Abruptly drop up to `conns` random wire connections (no `Closed`
    /// frame — simulates a peer reset or middlebox cut).
    DropConns {
        /// Maximum number of connections to drop.
        conns: u32,
    },
    /// Stop reading from up to `conns` random wire connections for
    /// `rounds` rounds (their requests sit in kernel buffers — a stalled
    /// server thread from the client's view).
    StallReads {
        /// Maximum number of connections to stall.
        conns: u32,
        /// Duration of the stall in rounds.
        rounds: u32,
    },
    /// Stop writing to up to `conns` random wire connections for `rounds`
    /// rounds (a slow consumer: completions pile up in the out-queue and
    /// may trip the slow-consumer guard).
    StallWrites {
        /// Maximum number of connections to stall.
        conns: u32,
        /// Duration of the stall in rounds.
        rounds: u32,
    },
    /// Cap every flush to at most `max_bytes` per connection per poll for
    /// `rounds` rounds (exercises partial-write resume paths end to end).
    PartialWrites {
        /// Per-flush write budget in bytes (≥ 1).
        max_bytes: u32,
        /// Duration of the throttle in rounds.
        rounds: u32,
    },
    /// Feed `bytes` of deterministic garbage into the read stream of up
    /// to `conns` random wire connections, as if the peer had sent it
    /// (exercises protocol-error isolation: only the garbled connection
    /// may drop).
    InjectGarbage {
        /// Maximum number of connections to garble.
        conns: u32,
        /// Number of garbage bytes injected per connection.
        bytes: u32,
    },
}

const EVENT_DROP: u32 = 0;
const EVENT_STALL_READS: u32 = 1;
const EVENT_STALL_WRITES: u32 = 2;
const EVENT_PARTIAL_WRITES: u32 = 3;
const EVENT_GARBAGE: u32 = 4;

impl NetFault {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            NetFault::DropConns { conns } => {
                enc.u32(EVENT_DROP);
                enc.u32(*conns);
            }
            NetFault::StallReads { conns, rounds } => {
                enc.u32(EVENT_STALL_READS);
                enc.u32(*conns);
                enc.u32(*rounds);
            }
            NetFault::StallWrites { conns, rounds } => {
                enc.u32(EVENT_STALL_WRITES);
                enc.u32(*conns);
                enc.u32(*rounds);
            }
            NetFault::PartialWrites { max_bytes, rounds } => {
                enc.u32(EVENT_PARTIAL_WRITES);
                enc.u32(*max_bytes);
                enc.u32(*rounds);
            }
            NetFault::InjectGarbage { conns, bytes } => {
                enc.u32(EVENT_GARBAGE);
                enc.u32(*conns);
                enc.u32(*bytes);
            }
        }
    }

    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let kind = dec.u32("net fault kind")?;
        match kind {
            EVENT_DROP => Ok(NetFault::DropConns {
                conns: dec.u32("drop conns")?,
            }),
            EVENT_STALL_READS => Ok(NetFault::StallReads {
                conns: dec.u32("stall conns")?,
                rounds: dec.u32("stall rounds")?,
            }),
            EVENT_STALL_WRITES => Ok(NetFault::StallWrites {
                conns: dec.u32("stall conns")?,
                rounds: dec.u32("stall rounds")?,
            }),
            EVENT_PARTIAL_WRITES => Ok(NetFault::PartialWrites {
                max_bytes: dec.u32("write budget")?,
                rounds: dec.u32("throttle rounds")?,
            }),
            EVENT_GARBAGE => Ok(NetFault::InjectGarbage {
                conns: dec.u32("garble conns")?,
                bytes: dec.u32("garbage bytes")?,
            }),
            _ => Err(CodecError::Invalid {
                what: "net fault kind",
            }),
        }
    }
}

/// Serialization tag for socket fault plans ("IBa Net Faults").
const PLAN_TAG: &str = "IBNF";
/// Current plan format version.
const PLAN_VERSION: u32 = 1;

/// A round-keyed schedule of socket fault events.
///
/// Rounds are 1-based, matching the service's round counter: an event
/// scheduled at round `r` is applied by the front end at the start of
/// round `r`, before that round's sockets are polled. Events within one
/// round apply in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    events: BTreeMap<u64, Vec<NetFault>>,
}

impl NetFaultPlan {
    /// Creates an empty plan (arming an empty plan injects nothing).
    pub fn new() -> Self {
        NetFaultPlan::default()
    }

    /// Schedules `event` at `round` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` — round 0 is the initial state, no round
    /// executes it.
    pub fn insert(&mut self, round: u64, event: NetFault) {
        assert!(round > 0, "net fault events schedule at rounds >= 1");
        self.events.entry(round).or_default().push(event);
    }

    /// Builder-style [`insert`](Self::insert).
    #[must_use]
    pub fn with(mut self, round: u64, event: NetFault) -> Self {
        self.insert(round, event);
        self
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Earliest round with an event, if any.
    pub fn first_round(&self) -> Option<u64> {
        self.events.keys().next().copied()
    }

    /// Latest round with an event, if any.
    pub fn last_round(&self) -> Option<u64> {
        self.events.keys().next_back().copied()
    }

    /// The events scheduled at `round` (empty for fault-free rounds).
    pub fn events_at(&self, round: u64) -> &[NetFault] {
        self.events.get(&round).map_or(&[], Vec::as_slice)
    }

    /// Iterates over `(round, events)` in round order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[NetFault])> {
        self.events.iter().map(|(&r, evs)| (r, evs.as_slice()))
    }

    /// Returns the plan with every event moved `offset` rounds later
    /// (e.g. to re-arm a plan authored relative to a resume point).
    #[must_use]
    pub fn shifted(self, offset: u64) -> Self {
        NetFaultPlan {
            events: self
                .events
                .into_iter()
                .map(|(r, evs)| (r + offset, evs))
                .collect(),
        }
    }

    /// Serializes the plan (tag `IBNF`, CRC-protected).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.header(PLAN_TAG, PLAN_VERSION);
        enc.usize(self.events.len());
        for (&round, events) in &self.events {
            enc.u64(round);
            enc.usize(events.len());
            for event in events {
                event.encode_into(&mut enc);
            }
        }
        enc.finish()
    }

    /// Deserializes a plan written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// [`CodecError`] if the bytes are corrupt, truncated, or from an
    /// unsupported version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes)?;
        dec.header(PLAN_TAG, PLAN_VERSION)?;
        let rounds = dec.usize("net fault plan rounds")?;
        let mut events: BTreeMap<u64, Vec<NetFault>> = BTreeMap::new();
        let mut prev_round = 0u64;
        for _ in 0..rounds {
            let round = dec.u64("net fault round")?;
            if round == 0 || round <= prev_round {
                return Err(CodecError::Invalid {
                    what: "net fault round order",
                });
            }
            prev_round = round;
            let count = dec.usize("net fault event count")?;
            if count == 0 {
                return Err(CodecError::Invalid {
                    what: "empty net fault round",
                });
            }
            let mut list = Vec::with_capacity(count);
            for _ in 0..count {
                list.push(NetFault::decode_from(&mut dec)?);
            }
            events.insert(round, list);
        }
        if !dec.is_exhausted() {
            return Err(CodecError::Invalid {
                what: "net fault plan trailing bytes",
            });
        }
        Ok(NetFaultPlan { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> NetFaultPlan {
        NetFaultPlan::new()
            .with(1, NetFault::DropConns { conns: 2 })
            .with(
                3,
                NetFault::StallReads {
                    conns: 1,
                    rounds: 5,
                },
            )
            .with(
                3,
                NetFault::StallWrites {
                    conns: 4,
                    rounds: 2,
                },
            )
            .with(
                7,
                NetFault::PartialWrites {
                    max_bytes: 3,
                    rounds: 10,
                },
            )
            .with(
                9,
                NetFault::InjectGarbage {
                    conns: 1,
                    bytes: 64,
                },
            )
    }

    #[test]
    fn plan_accessors() {
        let plan = sample_plan();
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.first_round(), Some(1));
        assert_eq!(plan.last_round(), Some(9));
        assert_eq!(plan.events_at(3).len(), 2);
        assert!(plan.events_at(2).is_empty());
        assert_eq!(plan.iter().count(), 4);
        let shifted = plan.clone().shifted(100);
        assert_eq!(shifted.first_round(), Some(101));
        assert_eq!(shifted.len(), plan.len());
    }

    #[test]
    #[should_panic(expected = "rounds >= 1")]
    fn round_zero_is_rejected() {
        NetFaultPlan::new().insert(0, NetFault::DropConns { conns: 1 });
    }

    #[test]
    fn bytes_roundtrip() {
        let plan = sample_plan();
        let bytes = plan.to_bytes();
        let back = NetFaultPlan::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, plan);
        let empty = NetFaultPlan::new();
        assert_eq!(
            NetFaultPlan::from_bytes(&empty.to_bytes()).expect("decodes"),
            empty
        );
    }

    #[test]
    fn corrupt_bytes_are_rejected() {
        let mut bytes = sample_plan().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(NetFaultPlan::from_bytes(&bytes).is_err(), "CRC catches it");
        assert!(NetFaultPlan::from_bytes(&bytes[..8]).is_err(), "truncated");
    }
}
