//! Live workload generation: open-loop arrival schedules driving a
//! running [`CappedService`].
//!
//! An [`OpenLoop`] workload submits a fixed number of requests per round
//! regardless of how the service is keeping up — the paper's λn-per-round
//! arrival regime as client traffic. Burst and surge scenarios reuse the
//! simulator's [`FaultPlan`] vocabulary: [`FaultEvent::ArrivalBurst`] adds
//! extra submissions for a window of rounds and [`FaultEvent::PoolSurge`]
//! adds a one-shot spike, while the infrastructure events
//! ([`FaultEvent::CrashBins`], [`FaultEvent::RecoverBins`],
//! [`FaultEvent::DegradeCapacity`]) are scheduled onto the service itself.
//! One plan therefore describes a full saturation scenario end to end.
//!
//! Submissions that hit ingress backpressure are counted as *shed* (the
//! open-loop client does not retry), so the summary exposes the classic
//! open-loop overload signature: shed grows once demand exceeds the
//! service's sustainable rate.

use iba_sim::faults::{FaultEvent, FaultPlan};

use crate::dispatch::SubmitError;
use crate::service::CappedService;

/// An open-loop workload: `rate` submissions per round, plus any traffic
/// events from an attached [`FaultPlan`].
#[derive(Debug, Clone, Default)]
pub struct OpenLoop {
    rate: u64,
    plan: FaultPlan,
}

impl OpenLoop {
    /// A constant-rate workload of `rate` submissions per round.
    pub fn new(rate: u64) -> Self {
        OpenLoop {
            rate,
            plan: FaultPlan::new(),
        }
    }

    /// Attaches a scenario plan. Traffic events (bursts, surges) shape
    /// this workload's demand; infrastructure events are applied to the
    /// service by [`run_open_loop`].
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The base per-round submission rate.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Demand (submission count) for 1-based round `round`: the base rate,
    /// plus `extra_per_round` for every burst whose window
    /// `[start, start + rounds)` covers the round, plus any surge
    /// scheduled exactly at the round.
    pub fn demand(&self, round: u64) -> u64 {
        let mut demand = self.rate;
        for (start, events) in self.plan.iter() {
            for event in events {
                match *event {
                    FaultEvent::ArrivalBurst {
                        extra_per_round,
                        rounds,
                    } if round >= start && round - start < rounds => {
                        demand += extra_per_round;
                    }
                    FaultEvent::PoolSurge { extra } if round == start => {
                        demand += extra;
                    }
                    _ => {}
                }
            }
        }
        demand
    }

    /// The infrastructure (non-traffic) events of the attached plan, as a
    /// plan schedulable on a service.
    pub fn infrastructure_plan(&self) -> FaultPlan {
        let mut out = FaultPlan::new();
        for (round, events) in self.plan.iter() {
            for event in events {
                match event {
                    FaultEvent::ArrivalBurst { .. } | FaultEvent::PoolSurge { .. } => {}
                    other => out.insert(round, other.clone()),
                }
            }
        }
        out
    }
}

/// What happened over one [`run_open_loop`] execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkloadSummary {
    /// Rounds executed.
    pub rounds: u64,
    /// Demand presented by the workload (submission attempts).
    pub offered: u64,
    /// Requests accepted into the ingress queue.
    pub submitted: u64,
    /// Requests shed by ingress backpressure (never retried).
    pub shed: u64,
    /// Balls served during the run (including model arrivals, if any).
    pub served: u64,
}

impl WorkloadSummary {
    /// Fraction of offered requests that were accepted (1.0 when nothing
    /// was offered).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.submitted as f64 / self.offered as f64
        }
    }
}

/// Drives `service` for `rounds` rounds under `workload`: each round,
/// submits the workload's demand through the service's [`Dispatcher`]
/// (shedding on backpressure), then executes the round. Infrastructure
/// events in the workload's plan are scheduled on the service first.
///
/// Demand is indexed by the service's own round counter, so scenarios
/// line up with any rounds the service already ran.
///
/// # Panics
///
/// Panics if the service was already shut down.
pub fn run_open_loop(
    service: &mut CappedService,
    workload: &OpenLoop,
    rounds: u64,
) -> WorkloadSummary {
    service.schedule(workload.infrastructure_plan());
    let dispatcher = service.dispatcher();
    let mut summary = WorkloadSummary::default();
    let served_before = service.total_served();
    for _ in 0..rounds {
        let demand = workload.demand(service.round() + 1);
        summary.offered += demand;
        for _ in 0..demand {
            match dispatcher.submit() {
                Ok(_) => summary.submitted += 1,
                Err(SubmitError::Saturated) => summary.shed += 1,
                Err(SubmitError::Closed) => {
                    summary.rounds = service.round();
                    return summary;
                }
            }
        }
        service.run_round();
        summary.rounds += 1;
    }
    summary.served = service.total_served() - served_before;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use iba_core::CappedConfig;

    fn service(n: usize, c: u32, shards: usize, ingress: usize) -> CappedService {
        CappedService::spawn(
            ServiceConfig::new(CappedConfig::new(n, c, 0.0).unwrap(), shards, 99)
                .with_ingress_capacity(ingress),
        )
        .unwrap()
    }

    #[test]
    fn demand_composes_bursts_and_surges() {
        let plan = FaultPlan::new()
            .with(
                5,
                FaultEvent::ArrivalBurst {
                    extra_per_round: 10,
                    rounds: 3,
                },
            )
            .with(6, FaultEvent::PoolSurge { extra: 100 });
        let load = OpenLoop::new(4).with_plan(plan);
        assert_eq!(load.demand(4), 4);
        assert_eq!(load.demand(5), 14);
        assert_eq!(load.demand(6), 114); // burst window + surge
        assert_eq!(load.demand(7), 14);
        assert_eq!(load.demand(8), 4); // burst over
    }

    #[test]
    fn infrastructure_events_are_split_out() {
        let plan = FaultPlan::new()
            .with(2, FaultEvent::CrashBins { bins: vec![0] })
            .with(2, FaultEvent::PoolSurge { extra: 7 })
            .with(4, FaultEvent::RecoverBins { bins: vec![0] });
        let load = OpenLoop::new(1).with_plan(plan);
        let infra = load.infrastructure_plan();
        assert_eq!(infra.events_at(2).len(), 1);
        assert!(matches!(
            infra.events_at(2)[0],
            FaultEvent::CrashBins { .. }
        ));
        assert_eq!(infra.events_at(4).len(), 1);
        assert_eq!(load.demand(2), 8); // surge stays on the traffic side
    }

    #[test]
    fn sustainable_load_is_fully_served() {
        // 32 bins serve up to 32 balls per round; offer 16.
        let mut svc = service(32, 2, 4, 1024);
        let summary = run_open_loop(&mut svc, &OpenLoop::new(16), 50);
        assert_eq!(summary.rounds, 50);
        assert_eq!(summary.offered, 800);
        assert_eq!(summary.submitted, 800);
        assert_eq!(summary.shed, 0);
        assert!(summary.acceptance_ratio() >= 1.0 - f64::EPSILON);
        // Everything admitted is served or still in flight, never lost.
        assert!(svc.conserves_balls());
        assert!(summary.served > 0);
    }

    #[test]
    fn overload_sheds_instead_of_queueing_unboundedly() {
        // 4 bins can serve at most 4 per round; offer 64 with a tiny
        // ingress queue — most of the demand must be shed.
        let mut svc = service(4, 1, 2, 8);
        let summary = run_open_loop(&mut svc, &OpenLoop::new(64), 30);
        assert!(summary.shed > 0);
        assert_eq!(summary.offered, summary.submitted + summary.shed);
        assert!(svc.conserves_balls());
        assert!(svc.pool_size() as u64 + svc.buffered() <= svc.total_admitted());
    }

    #[test]
    fn scenario_plan_drives_service_faults_and_traffic() {
        let plan = FaultPlan::new()
            .with(3, FaultEvent::CrashBins { bins: vec![0, 1] })
            .with(
                5,
                FaultEvent::ArrivalBurst {
                    extra_per_round: 8,
                    rounds: 2,
                },
            )
            .with(8, FaultEvent::RecoverBins { bins: vec![0, 1] });
        let mut svc = service(8, 2, 2, 4096);
        let load = OpenLoop::new(4).with_plan(plan);
        let summary = run_open_loop(&mut svc, &load, 20);
        assert_eq!(summary.offered, 4 * 20 + 8 * 2);
        assert!(svc.conserves_balls());
    }
}
