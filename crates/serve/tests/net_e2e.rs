//! End-to-end tests of the TCP front end: a real client socket against a
//! real listener — ticketed admission, streamed completions, explicit
//! saturation replies, the mid-run `GET /metrics` scrape plane, and
//! rejection of garbage connections.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iba_core::CappedConfig;
use iba_serve::proto::MAGIC;
use iba_serve::{
    run_net_loop, CappedService, Frame, FrameDecoder, NetFrontend, NetLoopOptions, NetStats,
    RngMode, ServiceConfig,
};

const N: usize = 32;

fn spawn_service(ingress_capacity: usize) -> CappedService {
    CappedService::spawn(
        ServiceConfig::new(CappedConfig::new(N, 2, 0.0).expect("valid config"), 4, 7)
            .with_rng_mode(RngMode::PerShard)
            .with_ingress_capacity(ingress_capacity),
    )
    .expect("valid service config")
}

fn connect_wire(addr: std::net::SocketAddr) -> TcpStream {
    let mut client = TcpStream::connect(addr).expect("connect");
    client.set_nodelay(true).expect("nodelay");
    client
        .set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    client.write_all(&MAGIC).expect("preface");
    client
}

/// Reads whatever is available into `decoder`; true if the peer closed.
fn pump(client: &mut TcpStream, decoder: &mut FrameDecoder) -> bool {
    let mut buf = [0u8; 4096];
    match client.read(&mut buf) {
        Ok(0) => true,
        Ok(k) => {
            decoder.push(&buf[..k]);
            false
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => false,
        Err(e) => panic!("client read failed: {e}"),
    }
}

/// A full threaded round-trip: the server runs `run_net_loop` on its own
/// thread while a client submits requests and collects one `Accepted` and
/// one `Completed` per request.
#[test]
fn wire_clients_get_tickets_and_streamed_completions() {
    const REQUESTS: u64 = 200;
    let mut service = spawn_service(1 << 16);
    let completions = service.take_completions().expect("fresh service");
    let frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let addr = frontend.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut service = service;
            let mut frontend = frontend;
            run_net_loop(
                &mut service,
                &mut frontend,
                &completions,
                &NetLoopOptions {
                    round_interval: Duration::from_micros(200),
                    ..NetLoopOptions::default()
                },
                &stop,
            );
            (service.total_admitted(), frontend.stats())
        })
    };

    let mut client = connect_wire(addr);
    let mut wire = Vec::new();
    for req_id in 0..REQUESTS {
        Frame::Alloc { req_id }.encode_into(&mut wire);
    }
    client.write_all(&wire).expect("submit batch");

    let mut decoder = FrameDecoder::new();
    let mut accepted = Vec::new();
    let mut completed = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while completed.len() < REQUESTS as usize {
        assert!(Instant::now() < deadline, "timed out awaiting completions");
        let eof = pump(&mut client, &mut decoder);
        assert!(!eof, "server dropped a well-behaved client");
        while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
            match frame {
                Frame::Accepted { req_id, ticket } => accepted.push((req_id, ticket)),
                Frame::Completed {
                    ticket,
                    bin,
                    admitted_round,
                    served_round,
                    waiting_rounds,
                } => {
                    assert!(bin < N as u64);
                    assert_eq!(waiting_rounds, served_round - admitted_round);
                    completed.push(ticket);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let (total_admitted, stats) = server.join().expect("server thread");

    assert_eq!(accepted.len(), REQUESTS as usize);
    // Every request was echoed exactly once, in submission order.
    let req_ids: Vec<u64> = accepted.iter().map(|&(r, _)| r).collect();
    assert_eq!(req_ids, (0..REQUESTS).collect::<Vec<u64>>());
    // Every ticket completed exactly once.
    let mut tickets: Vec<u64> = accepted.iter().map(|&(_, t)| t).collect();
    let mut done = completed.clone();
    tickets.sort_unstable();
    done.sort_unstable();
    assert_eq!(tickets, done);
    assert_eq!(total_admitted, REQUESTS);
    assert_eq!(stats.allocs_accepted, REQUESTS);
    assert_eq!(stats.allocs_saturated, 0);
    assert_eq!(stats.completions_sent, REQUESTS);
    assert_eq!(stats.proto_errors, 0);
}

/// Backpressure is explicit: with a tiny ingress queue and no rounds
/// draining it, excess requests get `Saturated` replies instead of
/// unbounded buffering.
#[test]
fn saturated_ingress_sheds_with_explicit_replies() {
    let service = spawn_service(2);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let mut client = connect_wire(frontend.local_addr());
    let mut wire = Vec::new();
    for req_id in 0..10 {
        Frame::Alloc { req_id }.encode_into(&mut wire);
    }
    client.write_all(&wire).expect("submit burst");

    let mut decoder = FrameDecoder::new();
    let mut accepted = 0;
    let mut saturated = 0;
    let deadline = Instant::now() + Duration::from_secs(30);
    while accepted + saturated < 10 {
        assert!(Instant::now() < deadline, "timed out awaiting replies");
        frontend.poll(&dispatcher);
        pump(&mut client, &mut decoder);
        while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
            match frame {
                Frame::Accepted { .. } => accepted += 1,
                Frame::Saturated { .. } => saturated += 1,
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    assert_eq!(accepted, 2, "ingress capacity bounds admissions");
    assert_eq!(saturated, 8, "excess requests are shed, not buffered");
    assert_eq!(frontend.stats().allocs_saturated, 8);
}

/// The scrape plane: `GET /metrics` on the same listener answers with
/// exposition the strict `iba-obs` parser accepts, mid-run, and
/// successive scrapes observe advancing (non-stale) counters.
#[test]
fn metrics_scrape_mid_run_parses_strictly_and_is_not_stale() {
    iba_obs::set_enabled(true);
    let mut service = spawn_service(1 << 16);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let addr = frontend.local_addr();

    // A wire client keeps traffic flowing while we scrape.
    let mut wire_client = connect_wire(addr);
    let mut decoder = FrameDecoder::new();
    let submit_and_round = |frontend: &mut NetFrontend,
                            service: &mut CappedService,
                            wire_client: &mut TcpStream,
                            decoder: &mut FrameDecoder,
                            base: u64| {
        let mut wire = Vec::new();
        for req_id in base..base + 8 {
            Frame::Alloc { req_id }.encode_into(&mut wire);
        }
        wire_client.write_all(&wire).expect("submit");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "timed out");
            frontend.poll(&dispatcher);
            pump(wire_client, decoder);
            let mut seen = 0;
            while decoder.next_frame().expect("well-formed").is_some() {
                seen += 1;
            }
            if seen > 0 {
                break;
            }
        }
        service.run_round();
    };

    submit_and_round(
        &mut frontend,
        &mut service,
        &mut wire_client,
        &mut decoder,
        0,
    );
    let first = scrape(&mut frontend, &dispatcher, addr);
    submit_and_round(
        &mut frontend,
        &mut service,
        &mut wire_client,
        &mut decoder,
        100,
    );
    let second = scrape(&mut frontend, &dispatcher, addr);

    for expo in [&first, &second] {
        assert_eq!(
            expo.families.get("iba_serve_pool_size").map(String::as_str),
            Some("gauge"),
            "pool gauge present"
        );
        assert!(
            expo.value("iba_serve_net_connections").is_some(),
            "net connection gauge present"
        );
        assert!(
            expo.value("iba_serve_net_frames_total").is_some(),
            "net frame counter present"
        );
    }
    let frames_first = first.value("iba_serve_net_frames_total").unwrap();
    let frames_second = second.value("iba_serve_net_frames_total").unwrap();
    assert!(
        frames_second > frames_first,
        "scrape is live, not a stale snapshot: {frames_first} -> {frames_second}"
    );
    assert_eq!(frontend.stats().scrapes, 2);
}

/// Performs one HTTP scrape against `frontend` (pumped inline) and
/// returns the strictly parsed exposition.
fn scrape(
    frontend: &mut NetFrontend,
    dispatcher: &iba_serve::Dispatcher,
    addr: std::net::SocketAddr,
) -> iba_obs::expo::Exposition {
    let mut http = TcpStream::connect(addr).expect("connect scraper");
    http.set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: iba\r\n\r\n")
        .expect("request");
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "scrape timed out");
        frontend.poll(dispatcher);
        match http.read(&mut buf) {
            Ok(0) => break, // Connection: close
            Ok(k) => response.extend_from_slice(&buf[..k]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => panic!("scrape read failed: {e}"),
        }
    }
    let text = String::from_utf8(response).expect("utf8 response");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    let body = iba_obs::expo::http_body(&text).expect("header terminator");
    iba_obs::expo::parse(body).expect("strict exposition parse")
}

/// Non-protocol, non-HTTP connections are dropped, and a 404 comes back
/// for unknown HTTP paths.
#[test]
fn garbage_preface_is_dropped_and_unknown_paths_get_404() {
    let service = spawn_service(16);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let addr = frontend.local_addr();

    let mut garbage = TcpStream::connect(addr).expect("connect");
    garbage
        .set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    garbage.write_all(b"XXXXXXXX").expect("garbage");
    let mut http = TcpStream::connect(addr).expect("connect");
    http.set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    http.write_all(b"GET /nope HTTP/1.1\r\n\r\n")
        .expect("request");

    let mut buf = [0u8; 4096];
    let mut not_found = Vec::new();
    let mut garbage_closed = false;
    let mut http_closed = false;
    let deadline = Instant::now() + Duration::from_secs(30);
    while !(garbage_closed && http_closed) {
        assert!(Instant::now() < deadline, "timed out");
        frontend.poll(&dispatcher);
        if !garbage_closed {
            match garbage.read(&mut buf) {
                Ok(0) => garbage_closed = true,
                Ok(_) => panic!("garbage connection should get no reply"),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => garbage_closed = true, // reset also counts as dropped
            }
        }
        if !http_closed {
            match http.read(&mut buf) {
                Ok(0) => http_closed = true,
                Ok(k) => not_found.extend_from_slice(&buf[..k]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => panic!("http read failed: {e}"),
            }
        }
    }
    let text = String::from_utf8(not_found).expect("utf8");
    assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
    assert_eq!(frontend.stats().proto_errors, 1);
    assert_eq!(frontend.connections(), 0);
    assert_eq!(
        frontend.stats(),
        NetStats {
            accepted_conns: 2,
            proto_errors: 1,
            ..NetStats::default()
        }
    );
}
