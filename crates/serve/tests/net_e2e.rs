//! End-to-end tests of the TCP front end: a real client socket against a
//! real listener — ticketed admission, streamed completions, explicit
//! saturation replies, the mid-run `GET /metrics` scrape plane, and
//! rejection of garbage connections.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iba_core::CappedConfig;
use iba_serve::proto::MAGIC;
use iba_serve::{
    run_net_loop, AdmissionControl, CappedService, ClientConfig, CloseReason, Frame, FrameDecoder,
    NetClient, NetFault, NetFaultPlan, NetFrontend, NetLoopOptions, NetStats, RngMode,
    ServiceConfig,
};

const N: usize = 32;

fn spawn_service(ingress_capacity: usize) -> CappedService {
    CappedService::spawn(
        ServiceConfig::new(CappedConfig::new(N, 2, 0.0).expect("valid config"), 4, 7)
            .with_rng_mode(RngMode::PerShard)
            .with_ingress_capacity(ingress_capacity),
    )
    .expect("valid service config")
}

fn connect_wire(addr: std::net::SocketAddr) -> TcpStream {
    let mut client = TcpStream::connect(addr).expect("connect");
    client.set_nodelay(true).expect("nodelay");
    client
        .set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    client.write_all(&MAGIC).expect("preface");
    client
}

/// Reads whatever is available into `decoder`; true if the peer closed.
/// A reset counts as closed: dropping a connection with unread bytes in
/// the socket surfaces as RST rather than FIN.
fn pump(client: &mut TcpStream, decoder: &mut FrameDecoder) -> bool {
    let mut buf = [0u8; 4096];
    match client.read(&mut buf) {
        Ok(0) => true,
        Ok(k) => {
            decoder.push(&buf[..k]);
            false
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => false,
        Err(e) if e.kind() == ErrorKind::ConnectionReset => true,
        Err(e) => panic!("client read failed: {e}"),
    }
}

/// A full threaded round-trip: the server runs `run_net_loop` on its own
/// thread while a client submits requests and collects one `Accepted` and
/// one `Completed` per request.
#[test]
fn wire_clients_get_tickets_and_streamed_completions() {
    const REQUESTS: u64 = 200;
    let mut service = spawn_service(1 << 16);
    let completions = service.take_completions().expect("fresh service");
    let frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let addr = frontend.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut service = service;
            let mut frontend = frontend;
            run_net_loop(
                &mut service,
                &mut frontend,
                &completions,
                &NetLoopOptions {
                    round_interval: Duration::from_micros(200),
                    ..NetLoopOptions::default()
                },
                &stop,
            );
            (service.total_admitted(), frontend.stats())
        })
    };

    let mut client = connect_wire(addr);
    let mut wire = Vec::new();
    for req_id in 0..REQUESTS {
        Frame::Alloc { req_id }.encode_into(&mut wire);
    }
    client.write_all(&wire).expect("submit batch");

    let mut decoder = FrameDecoder::new();
    let mut accepted = Vec::new();
    let mut completed = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while completed.len() < REQUESTS as usize {
        assert!(Instant::now() < deadline, "timed out awaiting completions");
        let eof = pump(&mut client, &mut decoder);
        assert!(!eof, "server dropped a well-behaved client");
        while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
            match frame {
                Frame::Accepted { req_id, ticket } => accepted.push((req_id, ticket)),
                Frame::Completed {
                    ticket,
                    bin,
                    admitted_round,
                    served_round,
                    waiting_rounds,
                } => {
                    assert!(bin < N as u64);
                    assert_eq!(waiting_rounds, served_round - admitted_round);
                    completed.push(ticket);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let (total_admitted, stats) = server.join().expect("server thread");

    assert_eq!(accepted.len(), REQUESTS as usize);
    // Every request was echoed exactly once, in submission order.
    let req_ids: Vec<u64> = accepted.iter().map(|&(r, _)| r).collect();
    assert_eq!(req_ids, (0..REQUESTS).collect::<Vec<u64>>());
    // Every ticket completed exactly once.
    let mut tickets: Vec<u64> = accepted.iter().map(|&(_, t)| t).collect();
    let mut done = completed.clone();
    tickets.sort_unstable();
    done.sort_unstable();
    assert_eq!(tickets, done);
    assert_eq!(total_admitted, REQUESTS);
    assert_eq!(stats.allocs_accepted, REQUESTS);
    assert_eq!(stats.allocs_saturated, 0);
    assert_eq!(stats.completions_sent, REQUESTS);
    assert_eq!(stats.proto_errors, 0);
}

/// Backpressure is explicit: with a tiny ingress queue and no rounds
/// draining it, excess requests get `Saturated` replies instead of
/// unbounded buffering.
#[test]
fn saturated_ingress_sheds_with_explicit_replies() {
    let service = spawn_service(2);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let mut client = connect_wire(frontend.local_addr());
    let mut wire = Vec::new();
    for req_id in 0..10 {
        Frame::Alloc { req_id }.encode_into(&mut wire);
    }
    client.write_all(&wire).expect("submit burst");

    let mut decoder = FrameDecoder::new();
    let mut accepted = 0;
    let mut saturated = 0;
    let deadline = Instant::now() + Duration::from_secs(30);
    while accepted + saturated < 10 {
        assert!(Instant::now() < deadline, "timed out awaiting replies");
        frontend.poll(&dispatcher);
        pump(&mut client, &mut decoder);
        while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
            match frame {
                Frame::Accepted { .. } => accepted += 1,
                Frame::Saturated { .. } => saturated += 1,
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    assert_eq!(accepted, 2, "ingress capacity bounds admissions");
    assert_eq!(saturated, 8, "excess requests are shed, not buffered");
    assert_eq!(frontend.stats().allocs_saturated, 8);
}

/// The scrape plane: `GET /metrics` on the same listener answers with
/// exposition the strict `iba-obs` parser accepts, mid-run, and
/// successive scrapes observe advancing (non-stale) counters.
#[test]
fn metrics_scrape_mid_run_parses_strictly_and_is_not_stale() {
    iba_obs::set_enabled(true);
    let mut service = spawn_service(1 << 16);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let addr = frontend.local_addr();

    // A wire client keeps traffic flowing while we scrape.
    let mut wire_client = connect_wire(addr);
    let mut decoder = FrameDecoder::new();
    let submit_and_round = |frontend: &mut NetFrontend,
                            service: &mut CappedService,
                            wire_client: &mut TcpStream,
                            decoder: &mut FrameDecoder,
                            base: u64| {
        let mut wire = Vec::new();
        for req_id in base..base + 8 {
            Frame::Alloc { req_id }.encode_into(&mut wire);
        }
        wire_client.write_all(&wire).expect("submit");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "timed out");
            frontend.poll(&dispatcher);
            pump(wire_client, decoder);
            let mut seen = 0;
            while decoder.next_frame().expect("well-formed").is_some() {
                seen += 1;
            }
            if seen > 0 {
                break;
            }
        }
        service.run_round();
    };

    submit_and_round(
        &mut frontend,
        &mut service,
        &mut wire_client,
        &mut decoder,
        0,
    );
    let first = scrape(&mut frontend, &dispatcher, addr);
    submit_and_round(
        &mut frontend,
        &mut service,
        &mut wire_client,
        &mut decoder,
        100,
    );
    let second = scrape(&mut frontend, &dispatcher, addr);

    for expo in [&first, &second] {
        assert_eq!(
            expo.families.get("iba_serve_pool_size").map(String::as_str),
            Some("gauge"),
            "pool gauge present"
        );
        assert!(
            expo.value("iba_serve_net_connections").is_some(),
            "net connection gauge present"
        );
        assert!(
            expo.value("iba_serve_net_frames_total").is_some(),
            "net frame counter present"
        );
        assert_eq!(
            expo.families
                .get("iba_serve_tickets_expired_total")
                .map(String::as_str),
            Some("counter"),
            "ticket-TTL reap counter exposed"
        );
        assert!(
            expo.value("iba_serve_tickets_expired_total").is_some(),
            "ticket-TTL reap counter has a sample"
        );
        assert_eq!(
            expo.families.get("iba_serve_bins").map(String::as_str),
            Some("gauge"),
            "live bin count gauge exposed"
        );
    }
    let frames_first = first.value("iba_serve_net_frames_total").unwrap();
    let frames_second = second.value("iba_serve_net_frames_total").unwrap();
    assert!(
        frames_second > frames_first,
        "scrape is live, not a stale snapshot: {frames_first} -> {frames_second}"
    );
    assert_eq!(frontend.stats().scrapes, 2);
}

/// Performs one HTTP scrape against `frontend` (pumped inline) and
/// returns the strictly parsed exposition.
fn scrape(
    frontend: &mut NetFrontend,
    dispatcher: &iba_serve::Dispatcher,
    addr: std::net::SocketAddr,
) -> iba_obs::expo::Exposition {
    let mut http = TcpStream::connect(addr).expect("connect scraper");
    http.set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: iba\r\n\r\n")
        .expect("request");
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "scrape timed out");
        frontend.poll(dispatcher);
        match http.read(&mut buf) {
            Ok(0) => break, // Connection: close
            Ok(k) => response.extend_from_slice(&buf[..k]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => panic!("scrape read failed: {e}"),
        }
    }
    let text = String::from_utf8(response).expect("utf8 response");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    let body = iba_obs::expo::http_body(&text).expect("header terminator");
    iba_obs::expo::parse(body).expect("strict exposition parse")
}

/// Non-protocol, non-HTTP connections are dropped, and a 404 comes back
/// for unknown HTTP paths.
#[test]
fn garbage_preface_is_dropped_and_unknown_paths_get_404() {
    let service = spawn_service(16);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let addr = frontend.local_addr();

    let mut garbage = TcpStream::connect(addr).expect("connect");
    garbage
        .set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    garbage.write_all(b"XXXXXXXX").expect("garbage");
    let mut http = TcpStream::connect(addr).expect("connect");
    http.set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    http.write_all(b"GET /nope HTTP/1.1\r\n\r\n")
        .expect("request");

    let mut buf = [0u8; 4096];
    let mut not_found = Vec::new();
    let mut garbage_closed = false;
    let mut http_closed = false;
    let deadline = Instant::now() + Duration::from_secs(30);
    while !(garbage_closed && http_closed) {
        assert!(Instant::now() < deadline, "timed out");
        frontend.poll(&dispatcher);
        if !garbage_closed {
            match garbage.read(&mut buf) {
                Ok(0) => garbage_closed = true,
                Ok(_) => panic!("garbage connection should get no reply"),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => garbage_closed = true, // reset also counts as dropped
            }
        }
        if !http_closed {
            match http.read(&mut buf) {
                Ok(0) => http_closed = true,
                Ok(k) => not_found.extend_from_slice(&buf[..k]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => panic!("http read failed: {e}"),
            }
        }
    }
    let text = String::from_utf8(not_found).expect("utf8");
    assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
    assert_eq!(frontend.stats().proto_errors, 1);
    assert_eq!(frontend.connections(), 0);
    assert_eq!(
        frontend.stats(),
        NetStats {
            accepted_conns: 2,
            proto_errors: 1,
            ..NetStats::default()
        }
    );
}

/// Decodes every complete frame currently buffered in `decoder`.
fn decoded(decoder: &mut FrameDecoder) -> Vec<Frame> {
    let mut frames = Vec::new();
    while let Some(f) = decoder.next_frame().expect("well-formed stream") {
        frames.push(f);
    }
    frames
}

/// An injected partial-write budget throttles replies to a few bytes per
/// poll: the client still receives every frame intact, it just takes many
/// polls — proving flush correctly resumes mid-frame.
#[test]
fn partial_write_fault_slows_but_never_corrupts_replies() {
    const REQUESTS: u64 = 4;
    const BUDGET: usize = 3;
    let service = spawn_service(1 << 10);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    frontend.arm_faults(
        NetFaultPlan::new().with(
            1,
            NetFault::PartialWrites {
                max_bytes: BUDGET as u32,
                rounds: 1_000,
            },
        ),
        11,
    );
    let mut client = connect_wire(frontend.local_addr());
    let deadline = Instant::now() + Duration::from_secs(30);
    while frontend.connections() < 1 {
        assert!(Instant::now() < deadline, "accept timed out");
        frontend.poll(&dispatcher);
    }
    frontend.on_round(1);

    let mut wire = Vec::new();
    for req_id in 0..REQUESTS {
        Frame::Alloc { req_id }.encode_into(&mut wire);
    }
    client.write_all(&wire).expect("submit");

    let mut decoder = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut polls = 0u64;
    while frames.len() < REQUESTS as usize {
        assert!(Instant::now() < deadline, "timed out under partial writes");
        frontend.poll(&dispatcher);
        polls += 1;
        pump(&mut client, &mut decoder);
        frames.extend(decoded(&mut decoder));
    }
    for (i, frame) in frames.iter().enumerate() {
        assert!(
            matches!(frame, Frame::Accepted { req_id, .. } if *req_id == i as u64),
            "intact in-order reply, got {frame:?}"
        );
    }
    // Each reply frame is 21 bytes on the wire; at BUDGET bytes per poll
    // the budget provably constrained delivery.
    let total_bytes = REQUESTS * 21;
    assert!(
        polls >= total_bytes / BUDGET as u64,
        "budget must throttle: {polls} polls for {total_bytes} bytes"
    );
    assert!(frontend.stats().faults_injected >= 1);
}

/// Injected garbage poisons exactly the victim connection — it is dropped
/// as a protocol error — while the bystander connection keeps working.
#[test]
fn injected_garbage_kills_only_the_victim_connection() {
    let service = spawn_service(1 << 10);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    frontend.arm_faults(
        NetFaultPlan::new().with(
            1,
            NetFault::InjectGarbage {
                conns: 1,
                bytes: 64,
            },
        ),
        3,
    );
    let mut a = connect_wire(frontend.local_addr());
    let mut b = connect_wire(frontend.local_addr());
    let deadline = Instant::now() + Duration::from_secs(30);
    while frontend.connections() < 2 {
        assert!(Instant::now() < deadline, "accept timed out");
        frontend.poll(&dispatcher);
    }
    frontend.on_round(1); // injects 64 garbage bytes into one victim

    let mut eof = [false; 2];
    let mut accepted = [0u32; 2];
    let mut decoders = [FrameDecoder::new(), FrameDecoder::new()];
    a.write_all(&Frame::Alloc { req_id: 1 }.encode()).unwrap();
    b.write_all(&Frame::Alloc { req_id: 2 }.encode()).unwrap();
    while accepted.iter().sum::<u32>() < 1 || !eof.iter().any(|&e| e) {
        assert!(Instant::now() < deadline, "timed out");
        frontend.poll(&dispatcher);
        for (i, client) in [&mut a, &mut b].into_iter().enumerate() {
            if eof[i] {
                continue;
            }
            eof[i] = pump(client, &mut decoders[i]);
            if !eof[i] {
                accepted[i] += decoded(&mut decoders[i])
                    .iter()
                    .filter(|f| matches!(f, Frame::Accepted { .. }))
                    .count() as u32;
            }
        }
    }
    assert_eq!(eof.iter().filter(|&&e| e).count(), 1, "exactly one victim");
    assert_eq!(accepted.iter().sum::<u32>(), 1, "survivor got its ticket");
    assert_eq!(frontend.connections(), 1);
    assert_eq!(
        frontend.stats().proto_errors,
        1,
        "garbage reads as proto error"
    );
}

/// A read stall defers ingest for exactly the scheduled number of rounds,
/// then the buffered request is processed — nothing is lost.
#[test]
fn read_stall_defers_requests_until_release() {
    let service = spawn_service(1 << 10);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    frontend.arm_faults(
        NetFaultPlan::new().with(
            1,
            NetFault::StallReads {
                conns: 1,
                rounds: 2,
            },
        ),
        5,
    );
    let mut client = connect_wire(frontend.local_addr());
    let deadline = Instant::now() + Duration::from_secs(30);
    while frontend.connections() < 1 {
        assert!(Instant::now() < deadline, "accept timed out");
        frontend.poll(&dispatcher);
    }
    frontend.on_round(1);
    client
        .write_all(&Frame::Alloc { req_id: 9 }.encode())
        .unwrap();
    // Give the bytes time to land in the socket, then poll under stall:
    // nothing must come back during rounds 1 and 2.
    std::thread::sleep(Duration::from_millis(20));
    let mut decoder = FrameDecoder::new();
    for round in [1, 2] {
        frontend.on_round(round);
        for _ in 0..10 {
            frontend.poll(&dispatcher);
            pump(&mut client, &mut decoder);
        }
        assert!(decoded(&mut decoder).is_empty(), "stalled in round {round}");
    }
    frontend.on_round(3); // stall expires
    let mut frames = Vec::new();
    while frames.is_empty() {
        assert!(Instant::now() < deadline, "timed out after stall release");
        frontend.poll(&dispatcher);
        pump(&mut client, &mut decoder);
        frames = decoded(&mut decoder);
    }
    assert!(matches!(frames[0], Frame::Accepted { req_id: 9, .. }));
    assert!(frontend.stats().faults_injected >= 1);
}

/// Per-connection quotas: requests beyond the round's token budget get a
/// typed `Closed(Quota)` reply, the connection survives, and the next
/// round's refill admits again.
#[test]
fn quota_exhaustion_closes_with_typed_reason_and_refills() {
    let service = spawn_service(1 << 10);
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    frontend.set_admission_control(AdmissionControl::default().with_quota(2, 2));
    let mut client = connect_wire(frontend.local_addr());
    let deadline = Instant::now() + Duration::from_secs(30);
    while frontend.connections() < 1 {
        assert!(Instant::now() < deadline, "accept timed out");
        frontend.poll(&dispatcher);
    }
    frontend.on_round(1);
    let mut wire = Vec::new();
    for req_id in 0..3 {
        Frame::Alloc { req_id }.encode_into(&mut wire);
    }
    client.write_all(&wire).expect("burst");
    let mut decoder = FrameDecoder::new();
    let mut frames = Vec::new();
    while frames.len() < 3 {
        assert!(Instant::now() < deadline, "timed out");
        frontend.poll(&dispatcher);
        pump(&mut client, &mut decoder);
        frames.extend(decoded(&mut decoder));
    }
    assert!(matches!(frames[0], Frame::Accepted { req_id: 0, .. }));
    assert!(matches!(frames[1], Frame::Accepted { req_id: 1, .. }));
    assert_eq!(
        frames[2],
        Frame::Closed {
            req_id: 2,
            reason: CloseReason::Quota
        },
        "over-quota request is refused with the typed reason"
    );
    assert_eq!(frontend.stats().allocs_quota, 1);
    assert_eq!(frontend.connections(), 1, "quota refusal keeps the conn");

    // Next round refills the bucket: the same connection is admitted again.
    frontend.on_round(2);
    client
        .write_all(&Frame::Alloc { req_id: 3 }.encode())
        .unwrap();
    let mut frames = Vec::new();
    while frames.is_empty() {
        assert!(Instant::now() < deadline, "timed out after refill");
        frontend.poll(&dispatcher);
        pump(&mut client, &mut decoder);
        frames = decoded(&mut decoder);
    }
    assert!(matches!(frames[0], Frame::Accepted { req_id: 3, .. }));
}

/// Probabilistic shedding: with shedding armed from fill ratio 0 and the
/// ingress queue pinned full, every alloc is shed with a `Saturated`
/// reply before it ever reaches the dispatcher.
#[test]
fn full_ingress_with_shedding_sheds_before_the_dispatcher() {
    let service = spawn_service(4);
    let dispatcher = service.dispatcher();
    // Pin the ingress queue full so fill_ratio() == 1.0.
    for _ in 0..4 {
        dispatcher.submit().expect("fill ingress");
    }
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    frontend.set_admission_control(AdmissionControl::default().with_shedding(0.0, 77));
    let mut client = connect_wire(frontend.local_addr());
    let deadline = Instant::now() + Duration::from_secs(30);
    while frontend.connections() < 1 {
        assert!(Instant::now() < deadline, "accept timed out");
        frontend.poll(&dispatcher);
    }
    frontend.on_round(1);
    client
        .write_all(&Frame::Alloc { req_id: 5 }.encode())
        .unwrap();
    let mut decoder = FrameDecoder::new();
    let mut frames = Vec::new();
    while frames.is_empty() {
        assert!(Instant::now() < deadline, "timed out");
        frontend.poll(&dispatcher);
        pump(&mut client, &mut decoder);
        frames = decoded(&mut decoder);
    }
    assert_eq!(frames[0], Frame::Saturated { req_id: 5 });
    assert_eq!(frontend.stats().allocs_shed, 1);
    assert_eq!(dispatcher.depth(), 4, "shed requests never hit the queue");
}

/// Drain mode: in-flight tickets finish and stream their completions, new
/// work is refused with `Closed(Drain)`, and the front end reports
/// `drained()` once the last ticket resolves.
#[test]
fn drain_finishes_old_work_and_refuses_new() {
    let mut service = spawn_service(1 << 10);
    let completions = service.take_completions().expect("fresh service");
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let mut client = connect_wire(frontend.local_addr());
    let deadline = Instant::now() + Duration::from_secs(30);
    while frontend.connections() < 1 {
        assert!(Instant::now() < deadline, "accept timed out");
        frontend.poll(&dispatcher);
    }
    frontend.on_round(1);
    let mut wire = Vec::new();
    for req_id in 0..2 {
        Frame::Alloc { req_id }.encode_into(&mut wire);
    }
    client.write_all(&wire).expect("submit");
    let mut decoder = FrameDecoder::new();
    let mut accepted = 0;
    while accepted < 2 {
        assert!(Instant::now() < deadline, "timed out");
        frontend.poll(&dispatcher);
        pump(&mut client, &mut decoder);
        accepted += decoded(&mut decoder)
            .iter()
            .filter(|f| matches!(f, Frame::Accepted { .. }))
            .count();
    }

    frontend.begin_drain();
    assert!(frontend.is_draining());
    assert!(!frontend.drained(), "two tickets still in flight");
    client
        .write_all(&Frame::Alloc { req_id: 99 }.encode())
        .unwrap();
    let mut refused = Vec::new();
    while refused.is_empty() {
        assert!(Instant::now() < deadline, "timed out");
        frontend.poll(&dispatcher);
        pump(&mut client, &mut decoder);
        refused = decoded(&mut decoder);
    }
    assert_eq!(
        refused[0],
        Frame::Closed {
            req_id: 99,
            reason: CloseReason::Drain
        }
    );
    assert_eq!(frontend.stats().allocs_drained, 1);

    // Let the service finish the admitted work; completions resolve the
    // outstanding tickets and the front end reports fully drained.
    let mut resolved = 0;
    while resolved < 2 {
        assert!(Instant::now() < deadline, "timed out draining");
        service.run_round();
        while let Ok(c) = completions.try_recv() {
            frontend.notify(&c);
            resolved += 1;
        }
        frontend.poll(&dispatcher);
    }
    assert!(frontend.drained(), "all tickets resolved and flushed");
}

/// The robust client against a live serve loop: every submission lands a
/// distinct ticket, all completions stream back, and stopping with
/// `drain_on_stop` leaves the front end drained.
#[test]
fn net_client_round_trips_against_a_live_loop() {
    const REQUESTS: usize = 30;
    let mut service = spawn_service(1 << 16);
    let completions = service.take_completions().expect("fresh service");
    let frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    let addr = frontend.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut service = service;
            let mut frontend = frontend;
            let summary = run_net_loop(
                &mut service,
                &mut frontend,
                &completions,
                &NetLoopOptions {
                    round_interval: Duration::from_micros(200),
                    drain_on_stop: true,
                    ..NetLoopOptions::default()
                },
                &stop,
            );
            (summary, frontend.drained())
        })
    };

    let mut client = NetClient::new(ClientConfig::new(addr).with_seed(5));
    let mut tickets = Vec::new();
    for _ in 0..REQUESTS {
        tickets.push(client.submit().expect("submission within deadline"));
    }
    tickets.sort_unstable();
    tickets.dedup();
    assert_eq!(tickets.len(), REQUESTS, "tickets are distinct");

    let mut events = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while events.len() < REQUESTS {
        assert!(Instant::now() < deadline, "timed out awaiting completions");
        client.pump_completions(Duration::from_millis(5));
        events.extend(client.take_completions());
    }
    for e in &events {
        assert_eq!(e.waiting_rounds, e.served_round - e.admitted_round);
        assert!(tickets.binary_search(&e.ticket).is_ok());
    }
    stop.store(true, Ordering::Relaxed);
    let (summary, drained) = server.join().expect("server thread");
    assert!(drained, "drain_on_stop left no unresolved tickets");
    assert!(
        summary.idle_polls > 0,
        "idle polls were detected and counted"
    );

    let stats = client.stats();
    assert_eq!(stats.submitted, REQUESTS as u64);
    assert_eq!(stats.accepted, REQUESTS as u64);
    assert_eq!(stats.completed, REQUESTS as u64);
    assert_eq!(stats.duplicate_accepts, 0);
    assert_eq!(stats.deadline_expired, 0);
}

/// Typed quota refusals propagate end-to-end: a strict per-round quota
/// forces the client through `Closed(Quota)` retries, yet every
/// submission eventually lands.
#[test]
fn net_client_retries_through_quota_refusals() {
    const REQUESTS: usize = 5;
    let mut service = spawn_service(1 << 16);
    let completions = service.take_completions().expect("fresh service");
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");
    frontend.set_admission_control(AdmissionControl::default().with_quota(1, 1));
    let addr = frontend.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut service = service;
            let mut frontend = frontend;
            run_net_loop(
                &mut service,
                &mut frontend,
                &completions,
                &NetLoopOptions {
                    round_interval: Duration::from_millis(2),
                    ..NetLoopOptions::default()
                },
                &stop,
            );
            frontend.stats()
        })
    };

    let mut client = NetClient::new(
        ClientConfig::new(addr)
            .with_seed(6)
            .with_deadline(Duration::from_secs(10))
            .with_backoff(Duration::from_micros(500), Duration::from_millis(4)),
    );
    for _ in 0..REQUESTS {
        client.submit().expect("retries ride out the quota");
    }
    stop.store(true, Ordering::Relaxed);
    let stats = server.join().expect("server thread");

    let cs = client.stats();
    assert_eq!(cs.accepted, REQUESTS as u64);
    assert!(
        cs.closed_quota >= 1,
        "a 1/round quota must refuse at least one burst submission"
    );
    assert!(cs.retries >= cs.closed_quota);
    // Every attempt resolved as either an acceptance or a quota refusal,
    // and the server's ledger of refusals matches the client's.
    assert_eq!(cs.attempts, cs.accepted + cs.closed_quota);
    assert_eq!(stats.allocs_quota, cs.closed_quota);
}
