//! Elastic-membership validation: runtime grow/shrink, shard split/merge,
//! autoscaling, and crash recovery mid-resize.
//!
//! The anchors:
//! - a Central-mode service with membership *scheduled but never firing*
//!   stays bit-identical to the bare `CappedProcess`;
//! - shard splits and merges move ownership only — the trajectory is
//!   bit-identical to an unsplit service;
//! - a churn + fault + surge gauntlet conserves every ball, by total and
//!   by id;
//! - a checkpoint taken mid-resize resumes bit-identically.

use std::collections::HashMap;

use iba_core::{Ball, CappedConfig, CappedProcess};
use iba_membership::{Autoscaler, AutoscalerConfig, MembershipEvent, MembershipPlan};
use iba_serve::{CappedService, RngMode, ServiceConfig};
use iba_sim::codec::Decoder;
use iba_sim::faults::{FaultEvent, FaultPlan};
use iba_sim::process::AllocationProcess;
use iba_sim::SimRng;

fn config(n: usize, c: u32, lambda: f64) -> CappedConfig {
    CappedConfig::new(n, c, lambda).expect("valid cell")
}

fn central(config: CappedConfig, shards: usize, seed: u64) -> CappedService {
    CappedService::spawn(
        ServiceConfig::new(config, shards, seed)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true),
    )
    .expect("valid service config")
}

/// Every ball still in the system (pool + every bin ring), by label, read
/// out of a service checkpoint. The envelope wraps the core `IBA1`
/// payload as an opaque byte blob; unwrap it and restore the process.
fn resident_labels(service: &mut CappedService) -> Vec<u64> {
    let bytes = service.checkpoint_bytes();
    let mut dec = Decoder::new(&bytes).expect("well-formed envelope");
    dec.header("IBSV", 2).expect("envelope header");
    let core_bytes = dec.byte_seq("core checkpoint").expect("core payload");
    let sim = iba_core::checkpoint::restore(core_bytes).expect("valid core checkpoint");
    let process = sim.process();
    let mut labels: Vec<u64> = process.pool().iter().map(Ball::label).collect();
    for i in 0..process.config().bins() {
        labels.extend(process.bin(i).iter().map(|b| b.label()));
    }
    labels.sort_unstable();
    labels
}

#[test]
fn scheduled_but_unfired_membership_stays_bit_identical_to_capped_process() {
    let cfg = config(64, 2, 0.75);
    let mut reference = CappedProcess::new(cfg.clone());
    let mut rng = SimRng::seed_from(99);
    let mut service = central(cfg, 4, 99);
    // Membership is live (the plan is non-empty) but every event sits far
    // beyond the horizon: the apply path runs each round and must not
    // perturb the trajectory.
    service
        .schedule_membership(
            MembershipPlan::new().with(1_000_000, MembershipEvent::AddBins { count: 8 }),
        )
        .expect("uniform finite capacity");
    for _ in 0..120 {
        assert_eq!(service.run_round(), reference.step(&mut rng));
    }
    assert_eq!(service.live_bins(), 64);
    assert_eq!(service.membership_events(), 0);
    assert_eq!(service.balls_moved(), 0);
}

#[test]
fn shard_splits_and_merges_do_not_perturb_the_trajectory() {
    let cfg = config(64, 2, 0.75);
    let mut plain = central(cfg.clone(), 2, 7);
    let mut churned = central(cfg, 2, 7);
    churned
        .schedule_membership(
            MembershipPlan::new()
                .with(10, MembershipEvent::SplitShard { shard: 0 })
                .with(20, MembershipEvent::SplitShard { shard: 2 })
                .with(40, MembershipEvent::MergeShards { left: 2 })
                .with(50, MembershipEvent::MergeShards { left: 0 }),
        )
        .expect("uniform finite capacity");
    for round in 1..=80 {
        assert_eq!(
            churned.run_round(),
            plain.run_round(),
            "diverged at round {round}"
        );
    }
    assert_eq!(churned.shards(), 2, "two splits, two merges");
    assert_eq!(churned.membership_events(), 4);
    assert_eq!(churned.live_bins(), 64, "splits and merges keep n");
    // Ownership handoffs relocated whatever the merged shards buffered.
    assert!(churned.conserves_balls());
}

#[test]
fn churn_fault_surge_gauntlet_loses_no_ball() {
    for (mode, shards) in [(RngMode::Central, 3), (RngMode::PerShard, 4)] {
        let mut service = CappedService::spawn(
            ServiceConfig::new(config(48, 2, 0.75), shards, 1234)
                .with_rng_mode(mode)
                .with_model_arrivals(true),
        )
        .expect("valid service config");
        service
            .schedule_membership(
                MembershipPlan::new()
                    .with(5, MembershipEvent::AddBins { count: 16 })
                    .with(12, MembershipEvent::SplitShard { shard: shards - 1 })
                    .with(20, MembershipEvent::RemoveBins { count: 24 })
                    .with(30, MembershipEvent::MergeShards { left: 0 })
                    .with(40, MembershipEvent::AddBins { count: 12 })
                    .with(55, MembershipEvent::RemoveBins { count: 40 })
                    .with(70, MembershipEvent::AddBins { count: 20 }),
            )
            .expect("uniform finite capacity");
        service.schedule(
            FaultPlan::new()
                .with(
                    8,
                    FaultEvent::CrashBins {
                        bins: vec![0, 1, 2],
                    },
                )
                .with(15, FaultEvent::PoolSurge { extra: 200 })
                .with(
                    18,
                    FaultEvent::DegradeCapacity {
                        bins: (0..8).collect(),
                        capacity: Some(1),
                    },
                )
                .with(
                    25,
                    FaultEvent::RecoverBins {
                        bins: vec![0, 1, 2],
                    },
                )
                .with(
                    35,
                    FaultEvent::ArrivalBurst {
                        extra_per_round: 30,
                        rounds: 5,
                    },
                ),
        );
        // Track the exact multiset of resident balls: arrivals add labels,
        // a served ball with waiting time w at round r removes label r - w.
        let mut resident: HashMap<u64, i64> = HashMap::new();
        let mut prev_generated = 0u64;
        for round in 1..=100u64 {
            let report = service.run_round();
            assert!(report.conserves_balls(), "{mode:?} round {round}");
            assert!(service.conserves_balls(), "{mode:?} round {round}");
            // `report.generated` covers model arrivals (labeled `round`);
            // surge and burst balls only show up in the lifetime counter
            // and carry the pre-round label.
            let total_generated = service.total_generated();
            let surged = total_generated - prev_generated - report.generated;
            prev_generated = total_generated;
            if surged > 0 {
                *resident.entry(round - 1).or_insert(0) += surged as i64;
            }
            *resident.entry(round).or_insert(0) += report.generated as i64;
            for &wait in &report.waiting_times {
                let label = round - wait;
                let count = resident.get_mut(&label).expect("served a known ball");
                *count -= 1;
                assert!(*count >= 0, "{mode:?}: ball labeled {label} over-served");
                if *count == 0 {
                    resident.remove(&label);
                }
            }
        }
        assert!(service.membership_events() >= 7, "{mode:?}");
        assert!(service.balls_moved() > 0, "{mode:?}: drains moved balls");
        // Per-ball id conservation: what the checkpoint says is resident
        // is exactly what the arrival/serve ledger says should be.
        let mut expected: Vec<u64> = resident
            .iter()
            .flat_map(|(&label, &count)| {
                std::iter::repeat_n(label, usize::try_from(count).expect("non-negative"))
            })
            .collect();
        expected.sort_unstable();
        assert_eq!(resident_labels(&mut service), expected, "{mode:?}");
    }
}

#[test]
fn mid_resize_checkpoint_resumes_bit_identically() {
    // Central mode: resize events straddle the checkpoint; the resumed
    // service re-schedules the still-future ones (plans are deliberately
    // not checkpointed, matching fault-plan semantics).
    let cfg = ServiceConfig::new(config(32, 2, 0.75), 4, 2024)
        .with_rng_mode(RngMode::Central)
        .with_model_arrivals(true);
    let past = MembershipPlan::new()
        .with(5, MembershipEvent::AddBins { count: 10 })
        .with(12, MembershipEvent::SplitShard { shard: 3 })
        .with(20, MembershipEvent::RemoveBins { count: 6 });
    let future = MembershipPlan::new()
        .with(40, MembershipEvent::RemoveBins { count: 12 })
        .with(50, MembershipEvent::AddBins { count: 4 });
    let mut original = CappedService::spawn(cfg.clone()).expect("valid service config");
    original.schedule_membership(past).expect("uniform");
    original
        .schedule_membership(future.clone())
        .expect("uniform");
    for _ in 0..30 {
        original.run_round();
    }
    assert_ne!(original.live_bins(), 32, "checkpoint lands mid-resize");
    let bytes = original.checkpoint_bytes();

    let mut resumed = CappedService::resume(cfg, &bytes).expect("mid-resize resume");
    assert_eq!(resumed.live_bins(), original.live_bins());
    assert_eq!(resumed.shards(), original.shards());
    assert_eq!(resumed.balls_moved(), original.balls_moved());
    assert_eq!(resumed.membership_events(), original.membership_events());
    assert!(resumed.conserves_balls());
    resumed.schedule_membership(future).expect("uniform");
    for r in 0..35 {
        assert_eq!(
            original.run_round(),
            resumed.run_round(),
            "diverged at +{r}"
        );
    }
    assert_eq!(original.live_bins(), resumed.live_bins());
}

#[test]
fn per_shard_mid_resize_checkpoint_resumes_bit_identically() {
    // Per-shard RNG with add/remove churn (no splits, so the shard count
    // the caller passes still matches the checkpoint).
    let cfg = ServiceConfig::new(config(24, 2, 0.75), 3, 77)
        .with_rng_mode(RngMode::PerShard)
        .with_model_arrivals(true);
    let mut original = CappedService::spawn(cfg.clone()).expect("valid service config");
    original
        .schedule_membership(
            MembershipPlan::new()
                .with(4, MembershipEvent::AddBins { count: 9 })
                .with(10, MembershipEvent::RemoveBins { count: 5 }),
        )
        .expect("uniform");
    for _ in 0..15 {
        original.run_round();
    }
    assert_eq!(original.live_bins(), 28);
    let bytes = original.checkpoint_bytes();
    let mut resumed = CappedService::resume(cfg, &bytes).expect("per-shard mid-resize resume");
    assert_eq!(resumed.live_bins(), 28);
    for r in 0..20 {
        assert_eq!(
            original.run_round(),
            resumed.run_round(),
            "diverged at +{r}"
        );
    }
}

#[test]
fn autoscaler_grows_under_surge_and_shrinks_when_idle() {
    let mut service = CappedService::spawn(
        ServiceConfig::new(config(8, 1, 0.875), 2, 5)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true),
    )
    .expect("valid service config");
    service
        .set_autoscaler(Autoscaler::new(
            AutoscalerConfig::new(4, 64)
                .with_ratios(0.0005, 0.5)
                .with_patience(2)
                .with_step(8)
                .with_cooldown(4),
        ))
        .expect("uniform finite capacity");
    // A massive standing surge pushes the pool far over the bound.
    service.schedule(FaultPlan::new().with(1, FaultEvent::PoolSurge { extra: 5_000 }));
    let mut peak = service.live_bins();
    for _ in 0..200 {
        service.run_round();
        peak = peak.max(service.live_bins());
        assert!(service.conserves_balls());
    }
    assert!(peak > 8, "surge forced a scale-up (peaked at {peak})");
    assert!(service.membership_events() > 0);
    // Once the backlog drains, sustained slack hands capacity back.
    for _ in 0..400 {
        service.run_round();
        assert!(service.conserves_balls());
    }
    assert!(
        service.live_bins() < peak,
        "idle pool shrank the fleet from its {peak}-bin peak to {}",
        service.live_bins()
    );
}

#[test]
fn membership_is_rejected_for_non_uniform_capacity_configs() {
    let profiled = CappedConfig::new(8, 2, 0.5)
        .unwrap()
        .with_capacity_profile(vec![1, 2, 3, 4, 1, 2, 3, 4])
        .unwrap();
    let mut service =
        CappedService::spawn(ServiceConfig::new(profiled, 2, 1)).expect("profiles serve fine");
    assert!(service
        .schedule_membership(MembershipPlan::new().with(1, MembershipEvent::AddBins { count: 1 }))
        .is_err());
    assert!(service
        .set_autoscaler(Autoscaler::new(AutoscalerConfig::new(1, 16)))
        .is_err());

    let unbounded = CappedConfig::unbounded(8, 0.5).unwrap();
    let mut service =
        CappedService::spawn(ServiceConfig::new(unbounded, 2, 1)).expect("unbounded serves fine");
    assert!(service
        .schedule_membership(MembershipPlan::new().with(1, MembershipEvent::AddBins { count: 1 }))
        .is_err());
}

#[test]
fn removing_bins_drains_their_rings_back_into_the_pool() {
    // Load the system, then shrink hard: drained balls must retry (pool
    // grows by exactly what the removed bins buffered) and eventually get
    // served by the survivors.
    let mut service = central(config(32, 4, 0.875), 4, 314);
    for _ in 0..20 {
        service.run_round();
    }
    let buffered_before = service.buffered();
    let pool_before = service.pool_size();
    service
        .schedule_membership(
            MembershipPlan::new().with(21, MembershipEvent::RemoveBins { count: 28 }),
        )
        .expect("uniform");
    service.run_round();
    assert_eq!(service.live_bins(), 4);
    assert!(service.conserves_balls());
    assert!(
        service.balls_moved() > 0 || buffered_before == 0,
        "shrink drained {} buffered balls (pool was {pool_before})",
        buffered_before
    );
    for _ in 0..2000 {
        if service.pool_size() == 0 && service.buffered() == 0 {
            break;
        }
        service.run_round();
    }
    assert!(service.conserves_balls());
}
