//! Property-based tests of the sharded service: ball conservation and
//! ticket accounting under arbitrary fault plans, per-shard RNG mode, and
//! open-loop client traffic.
//!
//! The laws pinned here hold for *any* fault sequence:
//!
//! - lifetime conservation — everything that entered the system is
//!   served, pooled, or buffered (`admitted = completed + pending` on the
//!   ticket side);
//! - per-round report conservation (`thrown = accepted + pool`);
//! - the capacity invariant, whenever the plan never alters capacities.

use proptest::prelude::*;

use iba_core::CappedConfig;
use iba_serve::workload::{run_open_loop, OpenLoop};
use iba_serve::{CappedService, RngMode, ServiceConfig};
use iba_sim::faults::{FaultEvent, FaultPlan};

const N: usize = 24;

fn fault_event() -> BoxedStrategy<FaultEvent> {
    // Bin indices deliberately range past n so out-of-range sanitization
    // is exercised; capacity 0 encodes "unbounded" here (the service
    // separately skips the malformed Some(0)).
    prop_oneof![
        prop::collection::vec(0usize..N + 8, 1..6).prop_map(|bins| FaultEvent::CrashBins { bins }),
        prop::collection::vec(0usize..N + 8, 1..6)
            .prop_map(|bins| FaultEvent::RecoverBins { bins }),
        (prop::collection::vec(0usize..N + 8, 1..6), 0u32..5).prop_map(|(bins, c)| {
            FaultEvent::DegradeCapacity {
                bins,
                capacity: (c > 0).then_some(c),
            }
        }),
        (1u64..20, 1u64..8).prop_map(|(extra_per_round, rounds)| FaultEvent::ArrivalBurst {
            extra_per_round,
            rounds,
        }),
        (1u64..60).prop_map(|extra| FaultEvent::PoolSurge { extra }),
    ]
    .boxed()
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((1u64..40, fault_event()), 0..12).prop_map(|events| {
        let mut plan = FaultPlan::new();
        for (round, event) in events {
            plan.insert(round, event);
        }
        plan
    })
}

fn alters_capacity(plan: &FaultPlan) -> bool {
    plan.iter().any(|(_, events)| {
        events
            .iter()
            .any(|e| matches!(e, FaultEvent::DegradeCapacity { .. }))
    })
}

fn service(c: u32, shards: usize, seed: u64, mode: RngMode) -> CappedService {
    CappedService::spawn(
        ServiceConfig::new(
            CappedConfig::new(N, c, 0.5).expect("valid config"),
            shards,
            seed,
        )
        .with_rng_mode(mode)
        .with_model_arrivals(true),
    )
    .expect("valid service config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under an arbitrary fault plan, every round of a sharded service
    /// conserves balls — the per-round report law and the service-lifetime
    /// law — for any shard count and either RNG mode.
    #[test]
    fn sharded_rounds_conserve_under_arbitrary_plans(
        plan in fault_plan(),
        c in 1u32..4,
        shards in 1usize..9,
        seed in any::<u64>(),
        central in any::<bool>(),
    ) {
        let mode = if central { RngMode::Central } else { RngMode::PerShard };
        let rounds = plan.last_round().unwrap_or(0) + 10;
        let capacity_fixed = !alters_capacity(&plan);
        let mut svc = service(c, shards, seed, mode);
        svc.schedule(plan);
        for _ in 0..rounds {
            let report = svc.run_round();
            prop_assert!(report.conserves_balls(), "round report law broke");
            prop_assert!(svc.conserves_balls(), "lifetime law broke");
            if capacity_fixed {
                prop_assert!(report.max_load <= u64::from(c), "capacity exceeded");
            }
        }
    }

    /// Ticket accounting under open-loop traffic and arbitrary faults:
    /// admitted = completion notifications + still-pending tickets, and
    /// offered = submitted + shed. No request is lost or double-served.
    #[test]
    fn tickets_balance_under_open_loop_traffic(
        plan in fault_plan(),
        rate in 0u64..30,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        let rounds = plan.last_round().unwrap_or(0) + 10;
        let mut svc = service(2, shards, seed, RngMode::PerShard);
        let completions = svc.take_completions().expect("fresh service");
        let load = OpenLoop::new(rate).with_plan(plan);
        let summary = run_open_loop(&mut svc, &load, rounds);

        prop_assert_eq!(summary.offered, summary.submitted + summary.shed);
        prop_assert_eq!(summary.submitted, svc.total_admitted());
        let notified = completions.try_iter().count() as u64;
        prop_assert_eq!(
            svc.total_admitted(),
            notified + svc.pending_tickets() as u64,
            "a ticket was lost or double-completed"
        );
        prop_assert!(svc.conserves_balls());
    }

    /// Central and per-shard RNG modes agree on the conservation
    /// aggregates (not the trajectory): after the same number of rounds,
    /// both have generated exactly `rounds · λn` model balls and conserve
    /// them.
    #[test]
    fn rng_modes_agree_on_aggregate_laws(
        shards in 1usize..9,
        seed in any::<u64>(),
        rounds in 1u64..40,
    ) {
        let mut central = service(2, shards, seed, RngMode::Central);
        let mut pershard = service(2, shards, seed, RngMode::PerShard);
        for _ in 0..rounds {
            central.run_round();
            pershard.run_round();
        }
        // λn = 12 is deterministic per round for the paper's arrival model.
        prop_assert_eq!(central.total_generated(), rounds * 12);
        prop_assert_eq!(pershard.total_generated(), rounds * 12);
        prop_assert!(central.conserves_balls());
        prop_assert!(pershard.conserves_balls());
    }
}
