//! Property-based tests of the wire codec: for *any* frame sequence and
//! *any* way the bytes arrive (bulk, split, byte-at-a-time), decoding
//! inverts encoding exactly; truncated streams park at `Ok(None)` rather
//! than erroring; and arbitrary garbage never panics the decoder.

use proptest::prelude::*;

use iba_serve::proto::{payload_len, CloseReason, Frame, FrameDecoder, MAX_FRAME_LEN};

fn close_reason() -> BoxedStrategy<CloseReason> {
    prop_oneof![
        Just(CloseReason::Shutdown),
        Just(CloseReason::Drain),
        Just(CloseReason::Quota),
        Just(CloseReason::SlowConsumer),
    ]
    .boxed()
}

fn frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        any::<u64>().prop_map(|req_id| Frame::Alloc { req_id }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(req_id, ticket)| Frame::Accepted { req_id, ticket }),
        any::<u64>().prop_map(|req_id| Frame::Saturated { req_id }),
        (any::<u64>(), close_reason())
            .prop_map(|(req_id, reason)| Frame::Closed { req_id, reason }),
        (any::<u64>(), any::<u64>(), any::<u64>(), 0u64..1 << 40).prop_map(
            |(ticket, bin, admitted_round, waiting_rounds)| Frame::Completed {
                ticket,
                bin,
                admitted_round,
                served_round: admitted_round.saturating_add(waiting_rounds),
                waiting_rounds,
            }
        ),
    ]
    .boxed()
}

/// Splits `bytes` into chunks whose sizes are driven by `cuts`, covering
/// everything from one bulk push to byte-at-a-time delivery.
fn chunked(bytes: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    if cuts.is_empty() {
        return vec![bytes.to_vec()];
    }
    let mut chunks = Vec::new();
    let mut rest = bytes;
    let mut i = 0;
    while !rest.is_empty() {
        let take = (cuts[i % cuts.len()] % rest.len()) + 1;
        let (head, tail) = rest.split_at(take);
        chunks.push(head.to_vec());
        rest = tail;
        i += 1;
    }
    chunks
}

fn decode_all(decoder: &mut FrameDecoder) -> Vec<Frame> {
    let mut frames = Vec::new();
    while let Some(f) = decoder.next_frame().expect("valid stream") {
        frames.push(f);
    }
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: any frame sequence, delivered in any chunking, decodes
    /// back to exactly the same sequence with no bytes left over.
    #[test]
    fn decoding_inverts_encoding_under_any_chunking(
        frames in prop::collection::vec(frame(), 0..24),
        cuts in prop::collection::vec(1usize..64, 0..16),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for chunk in chunked(&wire, &cuts) {
            decoder.push(&chunk);
            decoded.extend(decode_all(&mut decoder));
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(decoder.buffered(), 0, "no residual bytes");
    }

    /// Any strict prefix of a valid frame is "not yet" (`Ok(None)`), never
    /// an error — and appending the remainder always completes the frame.
    #[test]
    fn truncated_prefixes_wait_instead_of_erroring(f in frame()) {
        let wire = f.encode();
        for cut in 0..wire.len() {
            let mut decoder = FrameDecoder::new();
            decoder.push(&wire[..cut]);
            prop_assert_eq!(decoder.next_frame(), Ok(None), "cut at {}", cut);
            decoder.push(&wire[cut..]);
            prop_assert_eq!(decoder.next_frame(), Ok(Some(f)), "resume at {}", cut);
            prop_assert_eq!(decoder.next_frame(), Ok(None));
        }
    }

    /// Feeding arbitrary garbage never panics: every outcome is a decoded
    /// frame, a parked `Ok(None)`, or a structured `ProtoError` — and once
    /// a stream errors it keeps erroring (no silent resync on garbage).
    #[test]
    fn arbitrary_garbage_never_panics(
        junk in prop::collection::vec(any::<u8>(), 0..256),
        cuts in prop::collection::vec(1usize..32, 0..8),
    ) {
        let mut decoder = FrameDecoder::new();
        let mut failed = None;
        for chunk in chunked(&junk, &cuts) {
            decoder.push(&chunk);
            loop {
                match decoder.next_frame() {
                    Ok(Some(f)) => {
                        // A lucky byte run can form a real frame; it must
                        // then re-encode to a validly sized frame.
                        let len = f.encode().len() as u32;
                        prop_assert!(len - 4 <= MAX_FRAME_LEN);
                        prop_assert_eq!(payload_len(f.opcode()), Some(len - 4));
                    }
                    Ok(None) => break,
                    Err(e) => {
                        if let Some(first) = failed {
                            prop_assert_eq!(e, first, "error is sticky");
                        }
                        failed = Some(e);
                        break;
                    }
                }
            }
        }
        if let Some(e) = failed {
            prop_assert_eq!(decoder.next_frame(), Err(e), "error is sticky");
        }
    }

    /// Version tolerance: the legacy 9-byte reason-less `Closed` frame an
    /// old peer sends decodes as `Shutdown`, under any chunking and mixed
    /// freely with current-format frames.
    #[test]
    fn legacy_closed_frames_decode_as_shutdown_in_any_mix(
        req_ids in prop::collection::vec(any::<u64>(), 1..8),
        modern in prop::collection::vec(frame(), 0..8),
        cuts in prop::collection::vec(1usize..16, 0..8),
    ) {
        // Interleave legacy Closed frames with modern frames on one wire.
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for (i, &req_id) in req_ids.iter().enumerate() {
            // Hand-built legacy frame: len = 1 (opcode) + 8 (req_id).
            wire.extend_from_slice(&9u32.to_le_bytes());
            wire.push(4); // OP_CLOSED
            wire.extend_from_slice(&req_id.to_le_bytes());
            expected.push(Frame::Closed { req_id, reason: CloseReason::Shutdown });
            if let Some(f) = modern.get(i) {
                f.encode_into(&mut wire);
                expected.push(*f);
            }
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for chunk in chunked(&wire, &cuts) {
            decoder.push(&chunk);
            decoded.extend(decode_all(&mut decoder));
        }
        prop_assert_eq!(decoded, expected);
    }

    /// Forward tolerance: any unknown close-reason code decodes as
    /// `Shutdown` instead of erroring, so old clients survive new codes.
    #[test]
    fn unknown_close_reason_codes_decode_as_shutdown(
        req_id in any::<u64>(),
        code in 4u64..u64::MAX,
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&17u32.to_le_bytes());
        wire.push(4); // OP_CLOSED
        wire.extend_from_slice(&req_id.to_le_bytes());
        wire.extend_from_slice(&code.to_le_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire);
        prop_assert_eq!(
            decoder.next_frame(),
            Ok(Some(Frame::Closed { req_id, reason: CloseReason::Shutdown }))
        );
    }

    /// Garbage-then-valid isolation: garbage poisons only the decoder it
    /// hit (sticky error, like the front end dropping that connection); a
    /// fresh decoder — a new connection — decodes the valid frames that
    /// follow the garbage boundary perfectly.
    #[test]
    fn garbage_poisons_only_its_own_decoder(
        junk in prop::collection::vec(any::<u8>(), 1..64),
        frames in prop::collection::vec(frame(), 1..8),
        cuts in prop::collection::vec(1usize..16, 0..8),
    ) {
        // Make the junk unambiguous garbage: a length prefix over the cap.
        let mut poisoned_wire = Vec::new();
        poisoned_wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        poisoned_wire.extend_from_slice(&junk);
        let mut valid_wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut valid_wire);
        }

        // The poisoned decoder errors and stays errored even as valid
        // bytes keep arriving.
        let mut poisoned = FrameDecoder::new();
        poisoned.push(&poisoned_wire);
        let first = poisoned.next_frame().expect_err("over-cap length");
        poisoned.push(&valid_wire);
        prop_assert_eq!(poisoned.next_frame(), Err(first), "sticky across valid bytes");

        // A fresh decoder starting at the valid boundary sees everything.
        let mut fresh = FrameDecoder::new();
        let mut decoded = Vec::new();
        for chunk in chunked(&valid_wire, &cuts) {
            fresh.push(&chunk);
            decoded.extend(decode_all(&mut fresh));
        }
        prop_assert_eq!(decoded, frames);
    }
}
