//! Differential validation: in [`RngMode::Central`] the sharded service's
//! round-by-round trajectory is **bit-identical** to the bare
//! [`CappedProcess`] (and, under a fault plan, to [`FaultedProcess`])
//! driven by the same seed — every field of every [`RoundReport`],
//! including the waiting-time vectors, for any shard count.
//!
//! This is the serving layer's correctness anchor: if routing, merging,
//! or the worker protocol ever drops, duplicates, or reorders a ball, one
//! of these comparisons breaks on the first divergent round.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use iba_core::{CappedConfig, CappedProcess, KernelMode};
use iba_serve::proto::MAGIC;
use iba_serve::{CappedService, Frame, FrameDecoder, NetFrontend, RngMode, ServiceConfig};
use iba_sim::faults::{FaultEvent, FaultPlan, FaultedProcess};
use iba_sim::process::AllocationProcess;
use iba_sim::SimRng;

/// The (n, c, λ) cells exercised by every differential test. λn must be
/// integral; the cells cover tight (c = 1), paper-typical (c = 2..4), and
/// high-λ regimes.
const CELLS: &[(usize, u32, f64)] = &[(64, 2, 0.75), (128, 1, 0.5), (96, 3, 0.875), (50, 4, 0.6)];

const SEEDS: &[u64] = &[1, 42, 0xDEAD_BEEF];

fn spawn_central(config: CappedConfig, shards: usize, seed: u64) -> CappedService {
    CappedService::spawn(
        ServiceConfig::new(config, shards, seed)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true),
    )
    .expect("valid service config")
}

/// Runs the service and the bare process side by side and asserts every
/// report is equal, field for field.
fn assert_matches_bare(n: usize, c: u32, lambda: f64, shards: usize, seed: u64, rounds: u64) {
    let config = CappedConfig::new(n, c, lambda).expect("valid cell");
    let mut reference = CappedProcess::new(config.clone());
    let mut rng = SimRng::seed_from(seed);
    let mut service = spawn_central(config, shards, seed);
    for _ in 0..rounds {
        let expected = reference.step(&mut rng);
        let actual = service.run_round();
        assert_eq!(
            actual, expected,
            "trajectory diverged: n={n} c={c} lambda={lambda} shards={shards} seed={seed}"
        );
    }
    assert_eq!(service.pool_size(), reference.pool_size());
    assert!(service.conserves_balls());
}

#[test]
fn single_shard_is_bit_identical_to_capped_process() {
    for &(n, c, lambda) in CELLS {
        for &seed in SEEDS {
            assert_matches_bare(n, c, lambda, 1, seed, 150);
        }
    }
}

#[test]
fn multi_shard_is_bit_identical_to_capped_process() {
    for &(n, c, lambda) in CELLS {
        for shards in [2, 4, 7, 8] {
            assert_matches_bare(n, c, lambda, shards, 42, 150);
        }
    }
}

#[test]
fn shard_count_does_not_change_the_trajectory() {
    // Transitivity check run directly: S = 3 and S = 5 services agree
    // with each other round by round (both already agree with the bare
    // process above, but this pins the service-vs-service statement).
    let config = CappedConfig::new(60, 2, 0.8).expect("valid");
    let mut a = spawn_central(config.clone(), 3, 7);
    let mut b = spawn_central(config, 5, 7);
    for _ in 0..200 {
        assert_eq!(a.run_round(), b.run_round());
    }
}

/// A scenario touching every fault type: crashes, recoveries, capacity
/// degradation and restoration, an arrival burst, and a pool surge.
fn scenario() -> FaultPlan {
    FaultPlan::new()
        .with(
            5,
            FaultEvent::CrashBins {
                bins: vec![0, 3, 17],
            },
        )
        .with(
            8,
            FaultEvent::DegradeCapacity {
                bins: vec![4, 5, 6],
                capacity: Some(1),
            },
        )
        .with(
            10,
            FaultEvent::ArrivalBurst {
                extra_per_round: 9,
                rounds: 4,
            },
        )
        .with(12, FaultEvent::PoolSurge { extra: 30 })
        .with(15, FaultEvent::RecoverBins { bins: vec![0, 3] })
        .with(
            18,
            FaultEvent::DegradeCapacity {
                bins: vec![4, 5, 6],
                capacity: None,
            },
        )
        .with(20, FaultEvent::RecoverBins { bins: vec![17] })
}

#[test]
fn faulted_trajectory_is_bit_identical_to_faulted_process() {
    for shards in [1, 4, 6] {
        let config = CappedConfig::new(48, 2, 0.75).expect("valid");
        let mut reference = FaultedProcess::new(CappedProcess::new(config.clone()), scenario());
        let mut rng = SimRng::seed_from(99);
        let mut service = spawn_central(config, shards, 99);
        service.schedule(scenario());
        for _ in 0..120 {
            let expected = reference.step(&mut rng);
            let actual = service.run_round();
            assert_eq!(actual, expected, "faulted divergence at shards={shards}");
        }
        assert!(service.conserves_balls());
    }
}

#[test]
fn sharded_arena_kernel_is_bit_identical_to_scalar_reference() {
    // The service's `BinShard` workers accept through the flat-arena
    // counting-sort kernel; the reference here is pinned to the legacy
    // scalar kernel (`KernelMode::Scalar`), so this differential proves
    // old-kernel process == new-kernel sharded service end to end, for
    // every shard count.
    for &(n, c, lambda) in CELLS {
        for shards in [1usize, 3, 8] {
            for &seed in SEEDS {
                let config = CappedConfig::new(n, c, lambda).expect("valid cell");
                let mut reference = CappedProcess::with_kernel(config.clone(), KernelMode::Scalar);
                let mut rng = SimRng::seed_from(seed);
                let mut service = spawn_central(config, shards, seed);
                for round in 0..150 {
                    let expected = reference.step(&mut rng);
                    let actual = service.run_round();
                    assert_eq!(
                        actual, expected,
                        "arena service diverged from scalar reference: n={n} c={c} \
                         lambda={lambda} shards={shards} seed={seed} round={round}"
                    );
                }
                assert!(service.conserves_balls());
            }
        }
    }
}

#[test]
fn faulted_sharded_arena_kernel_matches_faulted_scalar_reference() {
    // Same statement under fault injection: offline bins and capacity
    // degradation (including the raise back to the configured bound) flow
    // through the shards' arena storage and must not perturb a single
    // report relative to the scalar-kernel faulted process.
    for shards in [1usize, 4, 6] {
        let config = CappedConfig::new(48, 2, 0.75).expect("valid");
        let mut reference = FaultedProcess::new(
            CappedProcess::with_kernel(config.clone(), KernelMode::Scalar),
            scenario(),
        );
        let mut rng = SimRng::seed_from(99);
        let mut service = spawn_central(config, shards, 99);
        service.schedule(scenario());
        for round in 0..120 {
            let expected = reference.step(&mut rng);
            let actual = service.run_round();
            assert_eq!(
                actual, expected,
                "faulted arena-vs-scalar divergence at shards={shards} round={round}"
            );
        }
        assert!(service.conserves_balls());
    }
}

/// The differential statement with the network ingress active: a
/// Central-mode service fed exactly λn requests per round **over TCP**
/// (no model arrivals) produces the same bit-identical trajectory as the
/// bare process with its deterministic λn arrival model. This holds
/// because the deterministic arrival model consumes no randomness and
/// admitted requests get the same round label as model arrivals — so
/// swapping the arrival source from the model to the wire must not move
/// a single ball.
#[test]
fn central_trajectory_is_bit_identical_with_network_ingress_active() {
    let (n, c, lambda, shards, seed) = (64usize, 2u32, 0.75, 4usize, 42u64);
    let per_round = (lambda * n as f64).round() as u64;
    let config = CappedConfig::new(n, c, lambda).expect("valid cell");
    let mut reference = CappedProcess::new(config.clone());
    let mut rng = SimRng::seed_from(seed);
    let mut service = CappedService::spawn(
        ServiceConfig::new(config, shards, seed).with_rng_mode(RngMode::Central),
    )
    .expect("valid service config");
    let completions = service.take_completions().expect("fresh service");
    let dispatcher = service.dispatcher();
    let mut frontend = NetFrontend::bind("127.0.0.1:0").expect("bind loopback");

    let mut client = TcpStream::connect(frontend.local_addr()).expect("connect");
    client.set_nodelay(true).expect("nodelay");
    client
        .set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    client.write_all(&MAGIC).expect("preface");
    let mut decoder = FrameDecoder::new();
    let mut next_req = 0u64;
    let mut completions_seen = 0u64;

    for round in 1..=100u64 {
        // Offer exactly λn requests and pump the event loop until every
        // one is ticketed, so the ingress queue holds the full batch when
        // the round executes (single connection → FIFO admission order).
        let mut wire = Vec::new();
        for _ in 0..per_round {
            Frame::Alloc { req_id: next_req }.encode_into(&mut wire);
            next_req += 1;
        }
        client.write_all(&wire).expect("offer batch");
        let mut accepted = 0u64;
        let mut buf = [0u8; 4096];
        let deadline = Instant::now() + Duration::from_secs(30);
        while accepted < per_round {
            assert!(
                Instant::now() < deadline,
                "timed out awaiting admissions in round {round}"
            );
            frontend.poll(&dispatcher);
            match client.read(&mut buf) {
                Ok(0) => panic!("server closed the connection"),
                Ok(k) => decoder.push(&buf[..k]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => panic!("client read failed: {e}"),
            }
            while let Some(frame) = decoder.next_frame().expect("well-formed server stream") {
                match frame {
                    Frame::Accepted { .. } => accepted += 1,
                    Frame::Completed {
                        bin,
                        admitted_round,
                        served_round,
                        waiting_rounds,
                        ..
                    } => {
                        assert!(bin < n as u64, "served bin index is global and in range");
                        assert_eq!(waiting_rounds, served_round - admitted_round);
                        completions_seen += 1;
                    }
                    other => panic!("unexpected server frame {other:?}"),
                }
            }
        }
        let expected = reference.step(&mut rng);
        let actual = service.run_round();
        assert_eq!(actual, expected, "net-active divergence at round {round}");
        while let Ok(completion) = completions.try_recv() {
            frontend.notify(&completion);
        }
        frontend.poll(&dispatcher);
    }
    assert!(service.conserves_balls());
    assert!(
        completions_seen > 0,
        "completion notifications flowed back over the wire"
    );
    assert_eq!(frontend.stats().allocs_accepted, 100 * per_round);
}

/// The crash-restart differential: checkpoint a live Central-mode service
/// mid-run, tear it down entirely (worker threads and all), resume a new
/// service from the bytes — possibly on a different shard topology — and
/// the combined trajectory is bit-identical to one uninterrupted bare
/// [`CappedProcess`]. A crash/restart cycle is invisible in the reports.
#[test]
fn crash_restart_trajectory_is_bit_identical_to_uninterrupted_process() {
    for &(n, c, lambda) in CELLS {
        let config = CappedConfig::new(n, c, lambda).expect("valid cell");
        let mut reference = CappedProcess::new(config.clone());
        let mut rng = SimRng::seed_from(1337);
        let mut service = spawn_central(config.clone(), 4, 1337);
        for round in 0..60 {
            assert_eq!(
                service.run_round(),
                reference.step(&mut rng),
                "pre-crash divergence: n={n} round={round}"
            );
        }
        let bytes = service.checkpoint_bytes();
        service.shutdown(); // the "crash": every worker thread dies

        // Restart on a *different* shard count — Central mode owns all
        // randomness in the driver, so topology is free to change.
        let resumed_config = ServiceConfig::new(config, 7, 1337)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true);
        let mut resumed = CappedService::resume(resumed_config, &bytes).expect("resume");
        assert_eq!(resumed.round(), 60);
        for round in 60..120 {
            assert_eq!(
                resumed.run_round(),
                reference.step(&mut rng),
                "post-restart divergence: n={n} round={round}"
            );
        }
        assert_eq!(resumed.pool_size(), reference.pool_size());
        assert!(resumed.conserves_balls());
    }
}

#[test]
fn central_mode_runs_identically_after_restart_of_reference() {
    // The differential holds from any prefix: running the reference 50
    // rounds, then comparing the next 50, still matches a service that
    // ran the same 100 — i.e. divergence cannot hide in early rounds.
    let config = CappedConfig::new(64, 2, 0.75).expect("valid");
    let mut reference = CappedProcess::new(config.clone());
    let mut rng = SimRng::seed_from(5);
    let mut service = spawn_central(config, 4, 5);
    for _ in 0..50 {
        reference.step(&mut rng);
        service.run_round();
    }
    for _ in 0..50 {
        assert_eq!(service.run_round(), reference.step(&mut rng));
    }
}
