//! Property test: no membership sequence — any interleaving of
//! add/remove/split/merge under live traffic — ever loses or duplicates a
//! ball. Totals are checked every round; ball *identities* are checked at
//! the end by diffing the checkpoint's resident set against an
//! arrival/serve ledger built from waiting times.

use std::collections::HashMap;

use proptest::prelude::*;

use iba_core::{Ball, CappedConfig};
use iba_membership::{MembershipEvent, MembershipPlan};
use iba_serve::{CappedService, RngMode, ServiceConfig};
use iba_sim::codec::Decoder;

fn arb_event() -> impl Strategy<Value = MembershipEvent> {
    prop_oneof![
        (1usize..24).prop_map(|count| MembershipEvent::AddBins { count }),
        (1usize..24).prop_map(|count| MembershipEvent::RemoveBins { count }),
        (0usize..6).prop_map(|shard| MembershipEvent::SplitShard { shard }),
        (0usize..6).prop_map(|left| MembershipEvent::MergeShards { left }),
    ]
}

fn arb_plan() -> impl Strategy<Value = MembershipPlan> {
    prop::collection::vec((1u64..40, arb_event()), 1..12).prop_map(|events| {
        let mut plan = MembershipPlan::new();
        for (round, event) in events {
            plan.insert(round, event);
        }
        plan
    })
}

/// Labels of every ball still resident (pool + rings), via the envelope's
/// embedded core checkpoint.
fn resident_labels(service: &mut CappedService) -> Vec<u64> {
    let bytes = service.checkpoint_bytes();
    let mut dec = Decoder::new(&bytes).expect("well-formed envelope");
    dec.header("IBSV", 2).expect("envelope header");
    let core_bytes = dec.byte_seq("core checkpoint").expect("core payload");
    let sim = iba_core::checkpoint::restore(core_bytes).expect("valid core checkpoint");
    let process = sim.process();
    let mut labels: Vec<u64> = process.pool().iter().map(Ball::label).collect();
    for i in 0..process.config().bins() {
        labels.extend(process.bin(i).iter().map(|b| b.label()));
    }
    labels.sort_unstable();
    labels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_membership_sequence_loses_or_duplicates_a_ball(
        plan in arb_plan(),
        seed in 1u64..1_000,
        central in any::<bool>(),
    ) {
        let mode = if central { RngMode::Central } else { RngMode::PerShard };
        let mut service = CappedService::spawn(
            ServiceConfig::new(
                CappedConfig::new(16, 2, 0.75).expect("valid cell"),
                2,
                seed,
            )
            .with_rng_mode(mode)
            .with_model_arrivals(true),
        )
        .expect("valid service config");
        service.schedule_membership(plan).expect("uniform finite capacity");

        let mut resident: HashMap<u64, i64> = HashMap::new();
        for round in 1..=50u64 {
            let report = service.run_round();
            prop_assert!(report.conserves_balls(), "report at round {round}");
            prop_assert!(service.conserves_balls(), "service at round {round}");
            prop_assert!(service.live_bins() >= 1, "never below one bin");
            prop_assert!(service.shards() >= 1, "never below one shard");
            *resident.entry(round).or_insert(0) += report.generated as i64;
            for &wait in &report.waiting_times {
                let label = round - wait;
                let count = resident.get_mut(&label);
                prop_assert!(count.is_some(), "served unknown ball labeled {label}");
                let count = count.expect("checked");
                *count -= 1;
                prop_assert!(*count >= 0, "ball labeled {label} duplicated");
                if *count == 0 {
                    resident.remove(&label);
                }
            }
        }
        let mut expected: Vec<u64> = resident
            .iter()
            .flat_map(|(&label, &count)| {
                std::iter::repeat_n(label, usize::try_from(count).expect("non-negative"))
            })
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(resident_labels(&mut service), expected);
    }
}
