//! Golden-file regression tests.
//!
//! Every experiment is a pure function of `(scale, seeds)`, so its CSV
//! output is reproducible bit-for-bit. These tests pin the smoke-scale
//! output of the cheap experiments against checked-in golden files: any
//! unintended behavioral change to the process, the RNG, the burn-in
//! logic or the statistics shows up as a diff here.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p iba-bench --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use iba_bench::ablations::{dominance, lemma_phases, stabilization};
use iba_bench::figures::ExperimentOutput;
use iba_bench::scale::Scale;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.csv"))
}

fn check_golden(name: &str, output: &ExperimentOutput) {
    let path = golden_path(name);
    let actual = output.table.to_csv();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file {} missing — run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "output of '{name}' diverged from its golden file; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_dominance() {
    check_golden("dominance_smoke", &dominance(Scale::Smoke));
}

#[test]
fn golden_lemma_phases() {
    check_golden("lemma_phases_smoke", &lemma_phases(Scale::Smoke));
}

#[test]
fn golden_stabilization() {
    check_golden("stabilization_smoke", &stabilization(Scale::Smoke));
}
