//! Shared provenance plumbing for the benchmark harnesses.
//!
//! Every `*_baseline` binary funnels its finished JSON through
//! [`finalize`]: the document gains a single-line provenance block
//! (schema version, git rev + dirty flag, host, cores, kernel mode,
//! config content-hash), the output file is guarded against silently
//! overwriting a baseline with a *different* configuration, and — when
//! the caller passes a registry path — a flattened
//! [`iba_exp::registry::RunRecord`] is appended (dedup'd by identity).
//! The sweep binary, which emits a JSONL table instead of a `BENCH_*`
//! document, uses [`append_sweep_registry`].

use std::path::Path;

use iba_exp::bench_data::{config_pairs, flatten_metrics, provenance_json_with_hash};
use iba_exp::registry::{unix_time_now, AppendOutcome, RunRecord, RunRegistry};
use iba_obs::json::{self, content_hash, JsonValue, Provenance};

/// Stamps a rendered benchmark document with its provenance block,
/// returning `(stamped_json, config_hash)`. The block is inserted after
/// the top-level `"seed"` line, so hand formatting elsewhere survives.
pub fn stamp_json(
    benchmark: &str,
    rendered: &str,
    kernel: Option<(&str, usize)>,
) -> Result<(String, String), String> {
    let doc = json::parse(rendered).map_err(|e| format!("{benchmark}: emitted bad JSON: {e}"))?;
    let pairs = config_pairs(benchmark, &doc)
        .ok_or_else(|| format!("{benchmark}: no canonical config pairs defined"))?;
    let hash = content_hash(&pairs);
    let mut prov = Provenance::collect();
    if let Some((mode, threads)) = kernel {
        prov = prov.with_kernel(mode, threads);
    }
    let block = provenance_json_with_hash(&prov, &hash);
    let anchor = rendered
        .find("\n  \"seed\":")
        .ok_or_else(|| format!("{benchmark}: no top-level \"seed\" line to anchor on"))?;
    let line_end = anchor
        + 1
        + rendered[anchor + 1..]
            .find('\n')
            .ok_or_else(|| format!("{benchmark}: truncated document"))?;
    let stamped = format!(
        "{}\n  \"provenance\": {block},{}",
        &rendered[..line_end],
        &rendered[line_end..]
    );
    json::parse(&stamped).map_err(|e| format!("{benchmark}: stamping broke the JSON: {e}"))?;
    Ok((stamped, hash))
}

/// Writes the stamped document to `path`, refusing to overwrite an
/// existing baseline whose embedded config hash differs — a quick-mode
/// run cannot clobber the committed full-scale numbers by accident.
/// `force` overrides the guard.
pub fn write_output(path: &Path, stamped: &str, hash: &str, force: bool) -> Result<(), String> {
    if !force {
        if let Ok(existing) = std::fs::read_to_string(path) {
            let existing_hash = json::parse(&existing)
                .ok()
                .as_ref()
                .and_then(|v| v.get("provenance"))
                .and_then(|p| p.get("config_hash"))
                .and_then(JsonValue::as_str)
                .map(str::to_string);
            if let Some(existing_hash) = existing_hash {
                if existing_hash != hash {
                    return Err(format!(
                        "{}: existing baseline has config hash {existing_hash} but this run \
                         produced {hash} — a differently-configured run would overwrite it \
                         (pass --force to allow, or use --out for a fresh path)",
                        path.display()
                    ));
                }
            }
        }
    }
    std::fs::write(path, stamped).map_err(|e| format!("failed to write {}: {e}", path.display()))
}

/// Builds a [`RunRecord`] from a stamped benchmark document and appends
/// it to the registry at `registry_path` (creating the store on first
/// use). Returns the append outcome so callers can report dedup.
pub fn append_registry(
    registry_path: &Path,
    stamped: &str,
    wall_ms: f64,
) -> Result<AppendOutcome, String> {
    let doc = json::parse(stamped).map_err(|e| format!("stamped document: {e}"))?;
    let benchmark = doc
        .get("benchmark")
        .and_then(JsonValue::as_str)
        .ok_or("stamped document: missing 'benchmark'")?
        .to_string();
    let seed = doc
        .get("seed")
        .and_then(JsonValue::as_u64)
        .ok_or("stamped document: missing 'seed'")?;
    let prov_value = doc
        .get("provenance")
        .ok_or("stamped document: missing 'provenance'")?;
    let provenance =
        Provenance::from_value(prov_value).ok_or("stamped document: malformed 'provenance'")?;
    let config_hash = prov_value
        .get("config_hash")
        .and_then(JsonValue::as_str)
        .ok_or("stamped document: provenance lacks 'config_hash'")?
        .to_string();
    let record = RunRecord {
        benchmark,
        config_hash,
        seed,
        provenance,
        wall_ms,
        unix_time: unix_time_now(),
        metrics: flatten_metrics(&doc),
    };
    append_record(registry_path, record)
}

/// Appends one sweep run to the registry: the canonical config pairs
/// come from the caller (via `iba_exp::bench_data::sweep_config_pairs`)
/// and the metrics from the emitted JSONL table, one dotted path per
/// numeric cell (`rows.3.avg wait`). The `bound ok` verdict column maps
/// to 1/0 so the Theorem-2 check is a gateable metric.
pub fn append_sweep_registry(
    registry_path: &Path,
    pairs: &[(String, String)],
    master_seed: u64,
    table_jsonl: &str,
    wall_ms: f64,
) -> Result<AppendOutcome, String> {
    let mut metrics = Vec::new();
    for (i, line) in table_jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = json::parse(line).map_err(|e| format!("sweep row {}: {e}", i + 1))?;
        let JsonValue::Object(fields) = &row else {
            return Err(format!("sweep row {}: not an object", i + 1));
        };
        for (key, value) in fields {
            if matches!(key.as_str(), "schema" | "table") {
                continue;
            }
            let numeric = match value {
                JsonValue::Number(v) => Some(*v),
                JsonValue::String(s) if key == "bound ok" => {
                    Some(if s == "yes" { 1.0 } else { 0.0 })
                }
                _ => None,
            };
            if let Some(v) = numeric {
                metrics.push((format!("rows.{i}.{key}"), v));
            }
        }
    }
    let record = RunRecord {
        benchmark: "sweep".to_string(),
        config_hash: content_hash(pairs),
        seed: master_seed,
        provenance: Provenance::collect(),
        wall_ms,
        unix_time: unix_time_now(),
        metrics,
    };
    append_record(registry_path, record)
}

fn append_record(registry_path: &Path, record: RunRecord) -> Result<AppendOutcome, String> {
    let mut registry = RunRegistry::open(registry_path).map_err(|e| e.to_string())?;
    let outcome = registry.append(record).map_err(|e| e.to_string())?;
    match outcome {
        AppendOutcome::Appended => {
            eprintln!("registry: appended run to {}", registry_path.display());
        }
        AppendOutcome::Deduplicated => eprintln!(
            "registry: identical run already recorded in {} (dedup)",
            registry_path.display()
        ),
    }
    Ok(outcome)
}

/// One call wiring a finished harness run into the provenance stack:
/// stamp, guarded write, optional registry append. Returns the stamped
/// JSON for the harness to print.
pub fn finalize(
    benchmark: &str,
    rendered: &str,
    out_path: &Path,
    registry: Option<&Path>,
    force: bool,
    kernel: Option<(&str, usize)>,
    wall_ms: f64,
) -> Result<String, String> {
    let (stamped, hash) = stamp_json(benchmark, rendered, kernel)?;
    write_output(out_path, &stamped, &hash, force)?;
    eprintln!("wrote {out_path} ({hash})", out_path = out_path.display());
    if let Some(registry_path) = registry {
        append_registry(registry_path, &stamped, wall_ms)?;
    }
    Ok(stamped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const DOC: &str = "{\n  \"benchmark\": \"obs_overhead\",\n  \"regenerate\": \"x\",\n  \
                       \"seed\": 20210705,\n  \"warmup_rounds\": 4,\n  \"measured_rounds\": 2,\n  \
                       \"cells\": [\n    { \"n\": 1000, \"c\": 4, \"lambda\": 0.95, \
                       \"overhead_percent\": 3.5 }\n  ]\n}\n";

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iba-bench-prov-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stamp_preserves_formatting_and_embeds_hash() {
        let (stamped, hash) = stamp_json("obs_overhead", DOC, Some(("arena", 1))).unwrap();
        // The provenance line lands right after the seed line; the rest
        // of the hand formatting is untouched.
        assert!(stamped.contains("\n  \"seed\": 20210705,\n  \"provenance\": {"));
        assert!(stamped.contains("\"overhead_percent\": 3.5"));
        let doc = json::parse(&stamped).unwrap();
        assert_eq!(
            doc.get("provenance")
                .unwrap()
                .get("config_hash")
                .unwrap()
                .as_str(),
            Some(hash.as_str())
        );
        assert_eq!(
            doc.get("provenance")
                .unwrap()
                .get("kernel")
                .unwrap()
                .as_str(),
            Some("arena")
        );
    }

    #[test]
    fn overwrite_guard_blocks_differing_config() {
        let dir = temp_dir("guard");
        let path = dir.join("BENCH_obs_overhead.json");
        let (stamped, hash) = stamp_json("obs_overhead", DOC, None).unwrap();
        write_output(&path, &stamped, &hash, false).unwrap();
        // Same config rewrites freely.
        write_output(&path, &stamped, &hash, false).unwrap();
        // A different config (different seed) is refused without --force.
        let other = DOC.replace("20210705", "42");
        let (other_stamped, other_hash) = stamp_json("obs_overhead", &other, None).unwrap();
        let err = write_output(&path, &other_stamped, &other_hash, false).unwrap_err();
        assert!(err.contains("--force"), "{err}");
        write_output(&path, &other_stamped, &other_hash, true).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_append_flattens_and_dedups() {
        let dir = temp_dir("registry");
        let registry = dir.join("registry.jsonl");
        let (stamped, _) = stamp_json("obs_overhead", DOC, Some(("arena", 1))).unwrap();
        assert_eq!(
            append_registry(&registry, &stamped, 12.0).unwrap(),
            AppendOutcome::Appended
        );
        assert_eq!(
            append_registry(&registry, &stamped, 15.0).unwrap(),
            AppendOutcome::Deduplicated
        );
        let store = RunRegistry::open(&registry).unwrap();
        assert_eq!(store.records().len(), 1);
        let record = &store.records()[0];
        assert_eq!(record.benchmark, "obs_overhead");
        assert_eq!(record.metric("cells.0.overhead_percent"), Some(3.5));
        assert_eq!(record.provenance.kernel.as_deref(), Some("arena"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_rows_flatten_with_bound_verdict() {
        let dir = temp_dir("sweep");
        let registry = dir.join("registry.jsonl");
        let jsonl = "{\"schema\":1,\"table\":\"sweep over n = 2048\",\"lambda\":\"0.750000\",\
                     \"c\":2,\"pool/n\":0.01,\"bound ok\":\"yes\"}\n\
                     {\"schema\":1,\"table\":\"sweep over n = 2048\",\"lambda\":\"0.937500\",\
                     \"c\":2,\"pool/n\":0.2,\"bound ok\":\"NO\"}\n";
        let pairs = iba_exp::bench_data::sweep_config_pairs(2048, &[2], &[0.75, 0.9375], 150, 1, 7);
        append_sweep_registry(&registry, &pairs, 7, jsonl, 5.0).unwrap();
        let store = RunRegistry::open(&registry).unwrap();
        let record = &store.records()[0];
        assert_eq!(record.benchmark, "sweep");
        assert_eq!(record.metric("rows.0.bound ok"), Some(1.0));
        assert_eq!(record.metric("rows.1.bound ok"), Some(0.0));
        assert_eq!(record.metric("rows.1.pool/n"), Some(0.2));
        // lambda is a string column: present in the row, absent from the
        // numeric metrics.
        assert_eq!(record.metric("rows.0.lambda"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
