//! The stationary measurement harness.
//!
//! Implements the paper's Section-V measurement protocol: start from an
//! (optionally warm-started) system, burn in until stationarity, then
//! collect pool-size and waiting-time statistics over a measurement window,
//! replicated across independent seeds.

use iba_baselines::greedy_batch::GreedyBatchProcess;
use iba_core::config::CappedConfig;
use iba_core::metrics::WaitQuantiles;
use iba_core::process::CappedProcess;
use iba_sim::burnin::{run_burn_in, BurnIn};
use iba_sim::engine::{MultiObserver, PoolSeries, RoundStats, Simulation, WaitingTimes};
use iba_sim::process::AllocationProcess;
use iba_sim::runner::{replicate, PointEstimate};
use iba_sim::stats::autocorr::effective_sample_size;

/// How to measure: burn-in policy, window length, replication count.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureConfig {
    /// Burn-in policy (defaults to the adaptive policy scaled to λ).
    pub burnin: BurnIn,
    /// Measurement-window length in rounds (the paper uses 1000).
    pub window: u64,
    /// Number of independent replications.
    pub seeds: usize,
    /// Master seed; per-replication streams are split from it.
    pub master_seed: u64,
    /// Whether to warm-start the pool at the predicted stationary size
    /// (shortens the transient; see DESIGN.md substitutions). Only
    /// meaningful for CAPPED.
    pub warm_start: bool,
}

impl MeasureConfig {
    /// The default protocol for injection rate `λ`: adaptive burn-in,
    /// `window` rounds, `seeds` replications, warm start on.
    pub fn for_lambda(lambda: f64, window: u64, seeds: usize) -> Self {
        MeasureConfig {
            burnin: BurnIn::default_adaptive(lambda),
            window,
            seeds,
            master_seed: 0x1ba_5eed,
            warm_start: true,
        }
    }

    /// Returns a copy with a different master seed.
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Returns a copy with warm start disabled (cold start from the empty
    /// system, exactly the paper's initial condition).
    pub fn cold(mut self) -> Self {
        self.warm_start = false;
        self
    }
}

/// Point estimates of the stationary metrics, aggregated over seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct StationaryEstimate {
    /// Mean pool size over the window (per-seed means aggregated).
    pub pool_mean: PointEstimate,
    /// Maximum pool size over the window (per-seed maxima aggregated).
    pub pool_max: PointEstimate,
    /// Mean waiting time of balls deleted in the window.
    pub wait_mean: PointEstimate,
    /// Median (p50) waiting time in the window, exact from the recorded
    /// histogram, aggregated over seeds.
    pub wait_p50: PointEstimate,
    /// 99th-percentile waiting time in the window.
    pub wait_p99: PointEstimate,
    /// 99.9th-percentile waiting time in the window.
    pub wait_p999: PointEstimate,
    /// Maximum waiting time observed in the window.
    pub wait_max: PointEstimate,
    /// Mean number of failed deletion attempts per round.
    pub failed_deletions_mean: PointEstimate,
    /// Burn-in rounds actually spent (per-seed values aggregated).
    pub burnin_rounds: PointEstimate,
    /// Effective sample size of the window's pool-size series (rounds are
    /// autocorrelated on the `1/(1−λ)` mixing timescale, so the effective
    /// number of independent observations is below the window length).
    pub pool_ess: PointEstimate,
    /// Average random probes issued per generated ball (the paper's
    /// Sec. I-B cost metric; 0 when nothing was generated).
    pub probes_per_ball: PointEstimate,
    /// Whether every replication's burn-in diagnosed stationarity.
    pub all_converged: bool,
    /// Number of bins, for normalization.
    pub bins: usize,
}

impl StationaryEstimate {
    /// Mean pool size divided by `n` — the paper's normalized pool size.
    pub fn normalized_pool_mean(&self) -> f64 {
        self.pool_mean.mean() / self.bins as f64
    }
}

/// Per-seed raw result (one replication).
#[derive(Debug, Clone, PartialEq)]
struct SeedResult {
    pool_mean: f64,
    pool_ess: f64,
    probes_per_ball: f64,
    pool_max: f64,
    wait_mean: f64,
    wait_p50: f64,
    wait_p99: f64,
    wait_p999: f64,
    wait_max: f64,
    failed_deletions_mean: f64,
    burnin_rounds: f64,
    converged: bool,
}

/// Measures any allocation process built by `factory` (which receives the
/// replication index and must build an identically configured process).
///
/// # Panics
///
/// Panics if `config.seeds == 0` or `config.window == 0`.
pub fn measure_process<P, F>(factory: F, bins: usize, config: &MeasureConfig) -> StationaryEstimate
where
    P: AllocationProcess,
    F: Fn(usize) -> P + Sync,
{
    assert!(config.window > 0, "measurement window must be non-empty");
    let results: Vec<SeedResult> = replicate(config.master_seed, config.seeds, |idx, rng| {
        let process = factory(idx);
        let mut sim = Simulation::new(process, rng);
        let outcome = run_burn_in(&mut sim, &config.burnin);
        let mut stats = RoundStats::new();
        let mut waits = WaitingTimes::new();
        let mut pool_series = PoolSeries::new();
        let mut multi = MultiObserver::new()
            .with(&mut stats)
            .with(&mut waits)
            .with(&mut pool_series);
        sim.run_observed(config.window, &mut multi);
        let ess =
            effective_sample_size(pool_series.series().values()).unwrap_or(config.window as f64);
        let quantiles = WaitQuantiles::from_histogram(waits.histogram());
        SeedResult {
            probes_per_ball: stats.probes_per_ball().unwrap_or(0.0),
            pool_mean: stats.pool.mean(),
            pool_ess: ess,
            pool_max: stats.pool.max().unwrap_or(0.0),
            wait_mean: waits.mean(),
            wait_p50: quantiles.as_ref().map_or(0.0, |q| q.p50 as f64),
            wait_p99: quantiles.as_ref().map_or(0.0, |q| q.p99 as f64),
            wait_p999: quantiles.as_ref().map_or(0.0, |q| q.p999 as f64),
            wait_max: waits.max().unwrap_or(0) as f64,
            failed_deletions_mean: stats.failed_deletions.mean(),
            burnin_rounds: outcome.rounds as f64,
            converged: outcome.converged,
        }
    });

    let collect = |f: fn(&SeedResult) -> f64| -> PointEstimate {
        PointEstimate::from_values(&results.iter().map(f).collect::<Vec<_>>())
    };
    StationaryEstimate {
        pool_mean: collect(|r| r.pool_mean),
        pool_ess: collect(|r| r.pool_ess),
        probes_per_ball: collect(|r| r.probes_per_ball),
        pool_max: collect(|r| r.pool_max),
        wait_mean: collect(|r| r.wait_mean),
        wait_p50: collect(|r| r.wait_p50),
        wait_p99: collect(|r| r.wait_p99),
        wait_p999: collect(|r| r.wait_p999),
        wait_max: collect(|r| r.wait_max),
        failed_deletions_mean: collect(|r| r.failed_deletions_mean),
        burnin_rounds: collect(|r| r.burnin_rounds),
        all_converged: results.iter().all(|r| r.converged),
        bins,
    }
}

/// Measures a CAPPED(c, λ) configuration under the Section-V protocol.
pub fn measure_capped(capped: &CappedConfig, config: &MeasureConfig) -> StationaryEstimate {
    let bins = capped.bins();
    let warm = config.warm_start;
    measure_process(
        |_idx| {
            let mut p = CappedProcess::new(capped.clone());
            if warm {
                p.warm_start();
            }
            p
        },
        bins,
        config,
    )
}

/// Measures a batched GREEDY\[d\] baseline under the same protocol (no
/// warm start — its stationary system load has no closed-form prediction).
pub fn measure_greedy(
    bins: usize,
    d: u32,
    lambda: f64,
    config: &MeasureConfig,
) -> StationaryEstimate {
    measure_process(
        |_idx| GreedyBatchProcess::new(bins, d, lambda).expect("validated by caller"),
        bins,
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MeasureConfig {
        MeasureConfig {
            burnin: BurnIn::Fixed { rounds: 300 },
            window: 200,
            seeds: 2,
            master_seed: 42,
            warm_start: true,
        }
    }

    #[test]
    fn measure_capped_produces_plausible_stationary_values() {
        let capped = CappedConfig::new(512, 1, 0.75).unwrap();
        let est = measure_capped(&capped, &small_config());
        // The mean-field fixed point for c = 1 is ln(1/(1-λ)) − λ ≈ 0.636;
        // the Section-V curve ln(1/(1-λ)) + 1 ≈ 2.39 is an upper envelope.
        let norm = est.normalized_pool_mean();
        assert!(
            (0.4..1.0).contains(&norm),
            "normalized pool {norm} far from mean-field 0.636"
        );
        assert!(
            norm < iba_analysis::fits::normalized_pool_fit(1, 0.75),
            "pool must stay below the Section-V envelope"
        );
        // Waiting times: envelope ln4 + loglog 512 + 1 ≈ 5.6. Wide band.
        let wait = est.wait_mean.mean();
        assert!((0.2..8.0).contains(&wait), "mean wait {wait}");
        assert!(est.wait_max.mean() >= est.wait_mean.mean());
        assert!(est.pool_max.mean() >= est.pool_mean.mean());
    }

    #[test]
    fn wait_quantiles_are_ordered() {
        let capped = CappedConfig::new(256, 1, 0.75).unwrap();
        let est = measure_capped(&capped, &small_config());
        let (p50, p99, p999) = (
            est.wait_p50.mean(),
            est.wait_p99.mean(),
            est.wait_p999.mean(),
        );
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(p99 <= p999, "p99 {p99} > p999 {p999}");
        assert!(p999 <= est.wait_max.mean(), "p999 {p999} above max");
        // At λ = 0.75 some balls always wait, so the tail is non-trivial.
        assert!(est.wait_p999.mean() >= 1.0, "p999 {p999} suspiciously low");
    }

    #[test]
    fn measurement_is_deterministic_per_master_seed() {
        let capped = CappedConfig::new(128, 2, 0.75).unwrap();
        let a = measure_capped(&capped, &small_config());
        let b = measure_capped(&capped, &small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn warm_and_cold_starts_agree_in_stationarity() {
        let capped = CappedConfig::new(256, 1, 0.5).unwrap();
        let warm = measure_capped(&capped, &small_config());
        let cold = measure_capped(&capped, &small_config().cold());
        let rel = (warm.normalized_pool_mean() - cold.normalized_pool_mean()).abs()
            / warm.normalized_pool_mean().max(1e-9);
        assert!(rel < 0.2, "warm/cold disagreement {rel}");
    }

    #[test]
    fn effective_sample_size_is_positive_and_bounded() {
        let capped = CappedConfig::new(256, 1, 0.75).unwrap();
        let est = measure_capped(&capped, &small_config());
        let ess = est.pool_ess.mean();
        assert!(ess > 1.0, "ess {ess}");
        assert!(ess <= 200.0, "ess {ess} exceeds window length");
    }

    #[test]
    fn measure_greedy_runs() {
        let cfg = small_config();
        let est = measure_greedy(128, 2, 0.5, &cfg);
        assert_eq!(est.pool_mean.mean(), 0.0); // unbounded queues
        assert!(est.wait_mean.mean() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_panics() {
        let capped = CappedConfig::new(64, 1, 0.5).unwrap();
        let mut cfg = small_config();
        cfg.window = 0;
        measure_capped(&capped, &cfg);
    }
}
