//! Ablations and robustness experiments (`DOM`, `ABL-d`, `ABL-arr`,
//! `STAB`).

use iba_core::config::CappedConfig;
use iba_core::coupling::CoupledRun;
use iba_core::process::CappedProcess;
use iba_sim::arrivals::ArrivalModel;
use iba_sim::output::Table;
use iba_sim::process::AllocationProcess;
use iba_sim::rng::SimRng;

use iba_analysis::fits;

use crate::figures::ExperimentOutput;
use crate::measure::{measure_capped, MeasureConfig};
use crate::scale::Scale;

/// **`DOM`** — executes the Lemma-1/6 coupling for several `(c, λ)` and
/// reports, per configuration, the number of dominance violations (which
/// must be 0) and the mean pool-size slack `m^M − m^C` (how loose the
/// coupling is in practice).
pub fn dominance(scale: Scale) -> ExperimentOutput {
    let n = (scale.bins() / 8).max(64); // the coupling runs two processes; keep it nimble
    let rounds = scale.window().max(300);
    let mut table = Table::new(
        "Dominance coupling (Lemmas 1 and 6)",
        &[
            "c",
            "lambda",
            "rounds",
            "violations",
            "mean slack m^M - m^C",
        ],
    );
    let notes = vec![format!("n = {n}; violations must be exactly 0")];
    for (c, lambda) in [
        (1u32, 0.5),
        (1, 0.75),
        (2, 0.75),
        (3, 0.75),
        (2, 1.0 - 1.0 / n as f64),
    ] {
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut run = CoupledRun::new(config).expect("valid coupling");
        let mut rng = SimRng::seed_from(u64::from(c) * 31 + 5);
        let mut violations = 0u64;
        let mut slack_sum = 0.0;
        for _ in 0..rounds {
            let report = run.step(&mut rng);
            if !report.dominance_holds() {
                violations += 1;
            }
            slack_sum += report.modcapped.pool_size as f64 - report.capped.pool_size as f64;
        }
        table.row(vec![
            u64::from(c).into(),
            format!("{lambda:.6}").into(),
            rounds.into(),
            violations.into(),
            (slack_sum / rounds as f64).into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`ABL-d`** — does giving CAPPED balls `d = 2` choices help once
/// buffers already exist? (The paper keeps `d = 1` and argues buffers
/// substitute for choices; this ablation quantifies the residual benefit.)
pub fn choice_ablation(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let lambda = 0.75;
    let mut table = Table::new(
        "Ablation: d choices per ball x capacity, lambda = 0.75",
        &["c", "d", "pool/n", "avg wait", "max wait"],
    );
    let notes = vec![format!("n = {n}")];
    for c in [1u32, 2, 3] {
        for d in [1u32, 2] {
            let config = CappedConfig::new(n, c, lambda)
                .expect("valid")
                .with_choices(d)
                .expect("valid d");
            let m = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
                .with_master_seed(u64::from(c * 10 + d));
            let est = measure_capped(&config, &m);
            table.row(vec![
                u64::from(c).into(),
                u64::from(d).into(),
                est.normalized_pool_mean().into(),
                est.wait_mean.mean().into(),
                est.wait_max.mean().into(),
            ]);
        }
    }
    ExperimentOutput::new(table, notes)
}

/// **`ABL-arr`** — the footnote-2 robustness claim: deterministic,
/// Bernoulli-generator and Poisson arrivals with the same mean rate lead to
/// the same stationary behavior.
pub fn arrival_ablation(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let lambda = 0.75;
    let c = 2u32;
    let mut table = Table::new(
        "Ablation: arrival models, c = 2, lambda = 0.75",
        &["arrivals", "pool/n", "avg wait", "max wait"],
    );
    let notes = vec![format!("n = {n}; all models share mean rate lambda*n")];
    let models: [(&str, ArrivalModel); 3] = [
        (
            "deterministic",
            ArrivalModel::deterministic_rate(n, lambda).expect("valid"),
        ),
        (
            "bernoulli",
            ArrivalModel::bernoulli_rate(n, lambda).expect("valid"),
        ),
        (
            "poisson",
            ArrivalModel::poisson_rate(n, lambda).expect("valid"),
        ),
    ];
    for (name, model) in models {
        let config = CappedConfig::new(n, c, lambda)
            .expect("valid")
            .with_arrivals(model);
        let m = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
            .with_master_seed(name.len() as u64 * 131);
        let est = measure_capped(&config, &m);
        table.row(vec![
            name.into(),
            est.normalized_pool_mean().into(),
            est.wait_mean.mean().into(),
            est.wait_max.mean().into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`STAB`** — self-stabilization: start CAPPED(c, λ) from an adversarial
/// pool of `K·n` balls and measure the number of rounds until the pool
/// re-enters the stationary band (1.5× the Section-V fit). The system is
/// positive recurrent, so recovery must be fast — roughly `K·n` extra
/// balls drained at `(1 − 1/e)·n` per round, i.e. linear in `K`.
pub fn stabilization(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let lambda = 0.75;
    let c = 2u32;
    let band = 1.5 * fits::pool_size_fit(n, c, lambda);
    let mut table = Table::new(
        "Self-stabilization: recovery from adversarial overload, c = 2, lambda = 0.75",
        &["overload K (pool = K*n)", "recovery rounds", "rounds/K"],
    );
    let notes = vec![format!(
        "n = {n}; recovered when pool <= 1.5 * fit = {band:.0}"
    )];
    let mut table_rows = Vec::new();
    // The band is ≈ 2.5n for these parameters; start every overload well
    // above it so "recovery rounds" measures actual draining.
    for k in [4u64, 8, 16, 32, 64] {
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut process = CappedProcess::new(config);
        process.inject_pool(k * n as u64);
        let mut rng = SimRng::seed_from(k * 17 + 3);
        let max_rounds = 200 * k + 10_000;
        let mut recovery = None;
        for round in 1..=max_rounds {
            let report = process.step(&mut rng);
            if (report.pool_size as f64) <= band {
                recovery = Some(round);
                break;
            }
        }
        let rounds = recovery.unwrap_or(max_rounds);
        table_rows.push((k, rounds));
    }
    for (k, rounds) in table_rows {
        table.row(vec![
            k.into(),
            rounds.into(),
            (rounds as f64 / k as f64).into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`POLICY`** — ablation of the paper's oldest-first acceptance rule:
/// the `log log n` waiting-time tail depends on bins preferring the
/// oldest requests (no ball in `M(t)` can be delayed by younger balls —
/// the crux of Lemmas 3–5). Age-blind (`random`) and adversarial
/// (`youngest-first`) priorities keep the *pool* identical in
/// distribution (acceptance counts don't depend on priority) but destroy
/// the tail.
pub fn policy_ablation(scale: Scale) -> ExperimentOutput {
    use iba_core::config::AcceptancePolicy;

    let n = scale.bins();
    let lambda = 1.0 - 1.0 / 64.0;
    let c = 2u32;
    let mut table = Table::new(
        "Ablation: acceptance priority, c = 2, lambda = 1 - 2^-6",
        &[
            "policy",
            "pool/n",
            "avg wait",
            "p99 wait",
            "p999 wait",
            "max wait",
        ],
    );
    let notes = vec![format!(
        "n = {n}; the pool is priority-invariant, the waiting-time tail is not"
    )];
    for policy in [
        AcceptancePolicy::OldestFirst,
        AcceptancePolicy::Random,
        AcceptancePolicy::YoungestFirst,
    ] {
        let config = CappedConfig::new(n, c, lambda)
            .expect("valid")
            .with_policy(policy);
        let mut process = CappedProcess::new(config);
        process.warm_start();
        let mut rng = SimRng::seed_from(311);
        for _ in 0..(4.0 / (1.0 - lambda)).ceil() as u64 + 256 {
            process.step(&mut rng);
        }
        let mut waits = iba_sim::stats::Histogram::new();
        let mut pool_sum = 0.0;
        let window = scale.window() * 2;
        for _ in 0..window {
            let r = process.step(&mut rng);
            pool_sum += r.pool_size as f64;
            for &w in &r.waiting_times {
                waits.record(w);
            }
        }
        table.row(vec![
            format!("{policy}").into(),
            (pool_sum / window as f64 / n as f64).into(),
            waits.mean().into(),
            waits.quantile(0.99).unwrap_or(0).into(),
            waits.quantile(0.999).unwrap_or(0).into(),
            waits.max().unwrap_or(0).into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`MSTAR`** — sensitivity of the MODCAPPED coupling to the threshold
/// `m*`: the paper's analysis needs `m* = 2c⁻¹·ln(1/(1−λ))·n + 6c·n` for
/// its Chernoff argument, but the *dominance* (Lemma 6) holds for any
/// `m*`. This experiment varies `m*` as a fraction of the paper's value
/// and reports (i) dominance violations (always 0) and (ii) how the
/// coupling slack — the looseness of the pool bound — scales with `m*`.
pub fn mstar_sensitivity(scale: Scale) -> ExperimentOutput {
    use iba_core::modcapped::{m_star_general, ModCappedProcess};

    let n = (scale.bins() / 8).max(64);
    let c = 2u32;
    let lambda = 0.75;
    let rounds = scale.window().max(300);
    let paper_m_star = m_star_general(n, c, lambda);
    let mut table = Table::new(
        "MODCAPPED m* sensitivity, c = 2, lambda = 0.75",
        &[
            "m*/paper",
            "m*",
            "violations",
            "mean slack m^M - m^C",
            "slack / m*",
        ],
    );
    let notes = vec![format!(
        "n = {n}; paper m* = {paper_m_star}; dominance must hold for every m* (Lemma 6's proof never uses its size)"
    )];
    for percent in [25u64, 50, 100, 200] {
        let m_star = (paper_m_star as u64 * percent / 100) as usize;
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut capped = CappedProcess::new(config);
        let mut modcapped = ModCappedProcess::with_m_star(n, c, lambda, m_star).expect("valid");
        let mut rng = SimRng::seed_from(percent + 11);
        let mut violations = 0u64;
        let mut slack_sum = 0.0;
        for _ in 0..rounds {
            let nu_c = capped.next_throw_count();
            let nu_m = modcapped.next_throw_count();
            let choices: Vec<usize> = (0..nu_m.max(nu_c)).map(|_| rng.uniform_bin(n)).collect();
            let rc = capped.step_with_choices(&choices[..nu_c]);
            let rm = modcapped.step_with_choices(&choices[..nu_m]);
            if rc.pool_size > rm.pool_size {
                violations += 1;
            }
            slack_sum += rm.pool_size as f64 - rc.pool_size as f64;
        }
        let mean_slack = slack_sum / rounds as f64;
        table.row(vec![
            format!("{percent}%").into(),
            m_star.into(),
            violations.into(),
            mean_slack.into(),
            (mean_slack / m_star.max(1) as f64).into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`ASYNC`** — robustness to the synchrony assumption: the
/// continuous-time retrial-queue analog of CAPPED (Poisson arrivals,
/// exponential service and retries; see `iba_core::continuous`) compared
/// against the round-synchronous process at the same `(c, λ)`. The
/// qualitative conclusions — orbit ≈ pool scaling in `1/c`, the
/// waiting-time minimum at moderate `c` — must survive asynchrony.
pub fn async_comparison(scale: Scale) -> ExperimentOutput {
    use iba_core::continuous::{ContinuousCapped, ContinuousConfig};

    let n = (scale.bins() / 8).max(256); // events are costlier than rounds
    let mut table = Table::new(
        "Synchronous rounds vs continuous time (retrial-queue analog)",
        &[
            "lambda",
            "c",
            "sync pool/n",
            "async orbit/n",
            "sync avg wait",
            "async avg sojourn",
            "little's gap",
        ],
    );
    let notes = vec![format!(
        "n = {n}; async: Poisson arrivals rate lambda*n, Exp(1) service and retries; sojourn counts service time, so async >= sync + ~1 is expected"
    )];
    for lambda in [0.75, 1.0 - 1.0 / 64.0] {
        for c in [1u32, 2, 3, 4] {
            let config = CappedConfig::new(n, c, lambda).expect("valid");
            let m = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
                .with_master_seed(u64::from(c) * 3 + 100);
            let sync = measure_capped(&config, &m);

            let mut system = ContinuousCapped::new(ContinuousConfig::paper_analog(n, c, lambda));
            let mut rng = SimRng::seed_from(u64::from(c) * 5 + 200);
            let warm = 40.0 / (1.0 - lambda);
            system.run_for(warm, &mut rng);
            let stats = system.observe(scale.window() as f64, &mut rng);

            table.row(vec![
                format!("{lambda:.6}").into(),
                u64::from(c).into(),
                sync.normalized_pool_mean().into(),
                (stats.mean_orbit / n as f64).into(),
                sync.wait_mean.mean().into(),
                stats.sojourns.mean().into(),
                stats.littles_law_gap().into(),
            ]);
        }
    }
    ExperimentOutput::new(table, notes)
}

/// **`HETERO`** — heterogeneous bin capacities (the non-uniform-bins
/// extension): a 50/50 mixture of capacity-1 and capacity-3 servers vs.
/// the uniform capacity-2 farm with the same total buffer space, each
/// compared against the mixed mean-field prediction.
pub fn hetero(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let lambda = 0.75;
    let mut table = Table::new(
        "Heterogeneous capacities: mixtures vs uniform, lambda = 0.75",
        &[
            "profile",
            "pool/n",
            "mf pool/n",
            "avg wait",
            "mf wait",
            "max wait",
        ],
    );
    let notes = vec![format!(
        "n = {n}; all profiles have mean capacity 2 (same total buffer space)"
    )];
    /// Name, per-bin capacities, and mean-field class mixture.
    type Profile = (&'static str, Vec<u32>, Vec<(u32, f64)>);
    let profiles: [Profile; 3] = [
        ("uniform c=2", vec![2; n], vec![(2, 1.0)]),
        (
            "half 1 / half 3",
            (0..n).map(|i| if i % 2 == 0 { 1 } else { 3 }).collect(),
            vec![(1, 0.5), (3, 0.5)],
        ),
        (
            "quarter 1 / half 2 / quarter 3",
            (0..n)
                .map(|i| match i % 4 {
                    0 => 1,
                    3 => 3,
                    _ => 2,
                })
                .collect(),
            vec![(1, 0.25), (2, 0.5), (3, 0.25)],
        ),
    ];
    for (name, profile, classes) in profiles {
        let config = CappedConfig::new(n, 2, lambda)
            .expect("valid")
            .with_capacity_profile(profile)
            .expect("valid profile");
        let m = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
            .with_master_seed(name.len() as u64 * 307);
        let est = measure_capped(&config, &m);
        let mf = iba_analysis::meanfield::solve_mixed_classes(&classes, lambda);
        table.row(vec![
            name.into(),
            est.normalized_pool_mean().into(),
            mf.pool_per_bin.into(),
            est.wait_mean.mean().into(),
            mf.mean_wait.unwrap_or(0.0).into(),
            est.wait_max.mean().into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`LOAD`** — the stationary bin-load distribution, measured vs. the
/// mean-field prediction of `iba_analysis::meanfield`. Agreement on the
/// *entire distribution* (not just its mean) is the strongest
/// cross-validation between simulator and model.
pub fn load_distribution(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let mut table = Table::new(
        "Stationary bin-load distribution: measured vs mean-field",
        &[
            "c",
            "lambda",
            "load",
            "measured P",
            "mean-field P",
            "abs diff",
        ],
    );
    let notes = vec![format!(
        "n = {n}; distribution measured at the start-of-round boundary, averaged over 50 snapshots"
    )];
    for (c, lambda) in [(2u32, 0.75), (3, 0.9375), (4, 1.0 - 1.0 / 128.0)] {
        let mf = iba_analysis::meanfield::solve(c, lambda);
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut process = CappedProcess::new(config);
        process.warm_start();
        let mut rng = SimRng::seed_from(u64::from(c) * 41 + 9);
        for _ in 0..(4.0 / (1.0 - lambda)).ceil() as u64 + 256 {
            process.step(&mut rng);
        }
        // Time-averaged load distribution across spaced snapshots.
        let snapshots = 50;
        let mut dist = vec![0.0f64; c as usize];
        for _ in 0..snapshots {
            for _ in 0..5 {
                process.step(&mut rng);
            }
            let h = process.load_histogram();
            for (l, slot) in dist.iter_mut().enumerate() {
                *slot += h.count_at(l as u64) as f64 / n as f64;
            }
        }
        for (l, slot) in dist.iter_mut().enumerate() {
            *slot /= snapshots as f64;
            table.row(vec![
                u64::from(c).into(),
                format!("{lambda:.6}").into(),
                l.into(),
                (*slot).into(),
                mf.load_distribution[l].into(),
                (*slot - mf.load_distribution[l]).abs().into(),
            ]);
        }
    }
    ExperimentOutput::new(table, notes)
}

/// **`TAIL`** — the waiting-time *distribution*: Theorem 2(2) is a
/// per-ball w.h.p. statement (failure probability ≤ n⁻²), so across any
/// realistic number of observed deletions, no waiting time may come near
/// the bound. This experiment reports the empirical p50/p90/p99/p999/max
/// waiting times against the Section-V envelope and the Theorem-2 bound.
pub fn wait_tail(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let mut table = Table::new(
        "Waiting-time tail at stationarity",
        &[
            "c",
            "lambda",
            "deletions",
            "p50",
            "p90",
            "p99",
            "p999",
            "max",
            "envelope",
            "thm2 bound",
        ],
    );
    let notes = vec![format!(
        "n = {n}; Theorem 2's bound holds per ball with prob >= 1 - n^-2, so the max must sit far below it"
    )];
    for (c, lambda) in [
        (1u32, 0.75),
        (2, 0.75),
        (2, 1.0 - 1.0 / 128.0),
        (3, 1.0 - 1.0 / 128.0),
    ] {
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut process = CappedProcess::new(config);
        process.warm_start();
        let mut rng = SimRng::seed_from(u64::from(c) * 13 + 2);
        for _ in 0..(4.0 / (1.0 - lambda)).ceil() as u64 + 256 {
            process.step(&mut rng);
        }
        let mut waits = iba_sim::stats::Histogram::new();
        for _ in 0..scale.window() * 4 {
            let report = process.step(&mut rng);
            for &w in &report.waiting_times {
                waits.record(w);
            }
        }
        table.row(vec![
            u64::from(c).into(),
            format!("{lambda:.6}").into(),
            waits.count().into(),
            waits.quantile(0.5).unwrap_or(0).into(),
            waits.quantile(0.9).unwrap_or(0).into(),
            waits.quantile(0.99).unwrap_or(0).into(),
            waits.quantile(0.999).unwrap_or(0).into(),
            waits.max().unwrap_or(0).into(),
            fits::waiting_time_fit(n, c, lambda).into(),
            iba_analysis::bounds::theorem2_waiting_bound(n, c, lambda).into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`CHAOS`** — deterministic fault injection with recovery metrics.
///
/// Each scenario is a seeded [`FaultPlan`] played against a warm-started
/// CAPPED(2, 0.75) system by `iba_sim::faults::measure_recovery`: burn in,
/// record the pre-fault pool baseline, apply the faults, then count the
/// rounds until the pool re-enters the ε-band around its baseline.
/// Scenarios:
///
/// - **crash 10% / 20%** — a scripted mass outage (well below the
///   stability boundary `f < 1 − λ = 0.25`), healed after a fixed window;
/// - **churn** — i.i.d. per-round crash/recover probabilities from a
///   dedicated RNG stream split off each replication's seed
///   (~9 % of bins offline in expectation), fully healed at the end;
/// - **surge** — a one-shot pool surge of `2n` balls (the
///   self-stabilization overload, expressed as a fault plan).
///
/// Every estimate is a pure function of the master seed: replaying the
/// experiment reproduces every crash and every metric bit-exactly (the
/// first scenario is run twice to verify this; see the notes line).
pub fn chaos(scale: Scale) -> ExperimentOutput {
    use iba_sim::faults::{
        measure_recovery, ChurnModel, FaultEvent, FaultPlan, RecoveryEstimate, RecoveryOptions,
    };

    let n = scale.bins();
    let lambda = 0.75;
    let c = 2u32;
    let master_seed = 0xC0FF_EE00u64;
    let replications = scale.seeds().max(8);
    let outage = 120u64;
    let opts = RecoveryOptions {
        burnin: 400,
        baseline_window: 200,
        epsilon: 0.25,
        min_band: (n as f64 / 256.0).max(8.0),
        stable_rounds: 50,
        max_rounds: 4_000,
    };

    // Fleet-wide fault/recovery totals are read back from the telemetry
    // registry afterwards (as deltas against these baselines) instead of
    // being re-accumulated across the scenario estimates by hand.
    let registry = iba_obs::global();
    let recovery_runs = registry.counter("iba_sim_recovery_runs_total");
    let unrecovered = registry.counter("iba_sim_recovery_unrecovered_total");
    let crashed_bins = registry.counter("iba_sim_fault_crashed_bins_total");
    let surge_balls = registry.counter("iba_sim_fault_surge_balls_total");
    let base = [
        recovery_runs.get(),
        unrecovered.get(),
        crashed_bins.get(),
        surge_balls.get(),
    ];
    let telemetry_was_on = iba_obs::enabled();
    iba_obs::set_enabled(true);

    let config = CappedConfig::new(n, c, lambda).expect("valid");
    let warm = |config: &CappedConfig| {
        let mut p = CappedProcess::new(config.clone());
        p.warm_start();
        p
    };
    let crash_plan = |count: usize| {
        // Which bins crash is irrelevant by symmetry; a deterministic
        // prefix keeps the plan independent of the replication stream.
        let bins: Vec<usize> = (0..count).collect();
        FaultPlan::new()
            .with(1, FaultEvent::CrashBins { bins: bins.clone() })
            .with(outage, FaultEvent::RecoverBins { bins })
    };
    let run_crash = |percent: usize| -> RecoveryEstimate {
        let plan = crash_plan(n * percent / 100);
        measure_recovery(master_seed ^ percent as u64, replications, &opts, |_, _| {
            (warm(&config), plan.clone())
        })
    };

    let mut table = Table::new(
        "Chaos: fault injection and recovery, c = 2, lambda = 0.75",
        &[
            "scenario",
            "reps",
            "recovered",
            "restab rounds",
            "peak pool/n",
            "peak backlog/n",
            "wait impact",
        ],
    );
    let mut row = |label: String, est: &RecoveryEstimate| {
        table.row(vec![
            label.into(),
            (est.replications as u64).into(),
            (est.recovered as u64).into(),
            est.rounds_to_restabilize
                .as_ref()
                .map_or_else(|| "never".to_string(), |p| format!("{:.1}", p.mean()))
                .into(),
            (est.peak_pool.mean() / n as f64).into(),
            (est.peak_backlog.mean() / n as f64).into(),
            est.wait_impact.mean().into(),
        ]);
    };

    let first = run_crash(10);
    let replay = run_crash(10);
    let bit_exact = first.reports == replay.reports;
    row("crash 10%".into(), &first);
    row("crash 20%".into(), &run_crash(20));

    let churn_model = ChurnModel {
        crash_prob: 0.004,
        recover_prob: 0.04,
        start_round: 1,
        rounds: outage,
        heal_at_end: true,
    };
    let churn = measure_recovery(master_seed ^ 0x11, replications, &opts, |_, rng| {
        // The plan draws from a stream split off the replication's seed:
        // reproducible, and decoupled from the simulation's own draws.
        let mut churn_rng = rng.split();
        (warm(&config), churn_model.generate(n, &mut churn_rng))
    });
    row("churn ~9%".into(), &churn);

    let surge = measure_recovery(master_seed ^ 0x22, replications, &opts, |_, _| {
        let plan = FaultPlan::new().with(
            1,
            FaultEvent::PoolSurge {
                extra: 2 * n as u64,
            },
        );
        (warm(&config), plan)
    });
    row("surge 2n".into(), &surge);

    if !telemetry_was_on {
        iba_obs::set_enabled(false);
    }
    let notes = vec![
        format!(
            "n = {n}; {replications} replications per scenario; outage window {outage} rounds; \
             stability requires f < 1 - lambda = 0.25"
        ),
        format!(
            "recovery = pool back inside ±max({:.0}%, {:.0} balls) of the pre-fault baseline \
             for {} consecutive rounds (scan cap {} rounds)",
            opts.epsilon * 100.0,
            opts.min_band,
            opts.stable_rounds,
            opts.max_rounds
        ),
        format!(
            "replaying scenario 'crash 10%' with the same master seed was bit-exact: {bit_exact} \
             (telemetry enabled — probes must not perturb the trajectory)"
        ),
        format!(
            "registry totals: {} recovery runs ({} unrecovered), {} bin crashes, \
             {} surge balls injected",
            recovery_runs.get() - base[0],
            unrecovered.get() - base[1],
            crashed_bins.get() - base[2],
            surge_balls.get() - base[3],
        ),
    ];
    ExperimentOutput::new(table, notes)
}

/// **`LEMMA`** — empirical verification of the waiting-time analysis'
/// phase structure (Lemmas 3–5): fix a stationary round `t` and track the
/// survivors `m(t, t')` of the pool `M(t)`. The analysis predicts
///
/// 1. survivors drop to `2n` within `Δ = m(t)/(n − n/e)` rounds (Lemma 3),
/// 2. to `n/(2e)` within 19 further rounds (Lemma 4),
/// 3. to `0` within `log log n + O(1)` further rounds (Lemma 5).
///
/// The measured phase lengths should sit well below these (deliberately
/// unoptimized) budgets.
pub fn lemma_phases(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let mut table = Table::new(
        "Lemmas 3-5: survivor phases of M(t)",
        &[
            "c",
            "lambda",
            "m(t)/n",
            "rounds to 2n",
            "budget Delta",
            "rounds to n/2e",
            "budget +19",
            "rounds to 0",
            "budget +loglog n+O(1)",
        ],
    );
    let mut notes = vec![format!(
        "n = {n}; budgets are the lemma statements' (unoptimized) allowances"
    )];
    for (c, lambda) in [(1u32, 0.75), (2, 0.75), (1, 1.0 - 1.0 / 128.0)] {
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut process = CappedProcess::new(config);
        process.warm_start();
        let mut rng = SimRng::seed_from(u64::from(c) * 11 + 1);
        // Reach stationarity.
        for _ in 0..(4.0 / (1.0 - lambda)).ceil() as u64 + 256 {
            process.step(&mut rng);
        }
        let t = process.round();
        let m_t = process.pool().len() as f64;
        let delta = (m_t / (n as f64 - n as f64 / std::f64::consts::E)).ceil();
        let loglog = iba_analysis::math::log2_log2(n);

        let mut to_2n = None;
        let mut to_n_2e = None;
        let mut to_zero = None;
        let mut elapsed = 0u64;
        while to_zero.is_none() && elapsed < 100_000 {
            process.step(&mut rng);
            elapsed += 1;
            let survivors = process.pool().survivors_from(t) as f64;
            if to_2n.is_none() && survivors <= 2.0 * n as f64 {
                to_2n = Some(elapsed);
            }
            if to_n_2e.is_none() && survivors <= n as f64 / (2.0 * std::f64::consts::E) {
                to_n_2e = Some(elapsed);
            }
            if survivors == 0.0 {
                to_zero = Some(elapsed);
            }
        }
        let t1 = to_2n.unwrap_or(0);
        let t2 = to_n_2e.unwrap_or(0);
        let t3 = to_zero.unwrap_or(elapsed);
        if to_zero.is_none() {
            notes.push(format!(
                "c={c}: survivors did not vanish within 100000 rounds"
            ));
        }
        table.row(vec![
            u64::from(c).into(),
            format!("{lambda:.6}").into(),
            (m_t / n as f64).into(),
            t1.into(),
            delta.into(),
            t2.into(),
            (delta + 19.0).into(),
            t3.into(),
            (delta + 19.0 + loglog + 6.0).into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_smoke_has_zero_violations() {
        let out = dominance(Scale::Smoke);
        // The violations column (index 3) must be zero in every row.
        let csv = out.table.to_csv();
        for line in csv.lines().skip(1) {
            let violations: u64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert_eq!(violations, 0, "row: {line}");
        }
    }

    #[test]
    fn stabilization_recovery_grows_with_overload() {
        let out = stabilization(Scale::Smoke);
        let csv = out.table.to_csv();
        let rounds: Vec<u64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(rounds.len(), 5);
        // K = 16 must take longer than K = 1 (drain is rate-limited).
        assert!(rounds[4] > rounds[0]);
    }
}
