//! Benchmark and figure-regeneration harness.
//!
//! One module (and one binary subcommand) per experiment in DESIGN.md's
//! per-experiment index:
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | `F4L`, `F4R` | Figure 4 (normalized pool size) | [`figures`] |
//! | `F5L`, `F5R` | Figure 5 (waiting times) | [`figures`] |
//! | `SWEET` | sweet-spot claim (Sec. I-B/V) | [`figures`] |
//! | `CMP` | log n vs log log n comparison (Sec. I-B) | [`compare`] |
//! | `DOM` | Lemma 1/6 dominance | [`ablations`] |
//! | `ABL-d`, `ABL-arr`, `STAB` | ablations & self-stabilization | [`ablations`] |
//!
//! Run everything through the `figures` binary:
//!
//! ```text
//! cargo run -p iba-bench --release --bin figures -- fig4-left --scale quick
//! cargo run -p iba-bench --release --bin figures -- all --scale paper
//! ```
//!
//! The criterion benches under `benches/` wrap the same experiment
//! functions at smoke scale so `cargo bench` both times the simulator and
//! regenerates miniature versions of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod cli;
pub mod compare;
pub mod figures;
pub mod measure;
pub mod prov;
pub mod scale;

pub use measure::{measure_capped, measure_greedy, MeasureConfig, StationaryEstimate};
pub use scale::Scale;
