//! Experiment scale presets.
//!
//! The paper runs every experiment at `n = 2¹⁵` with a 1000-round
//! measurement window. That is affordable but slow for a full sweep, so the
//! harness supports three presets; the figure functions accept any of them
//! and the output tables record which one was used.

use std::fmt;
use std::str::FromStr;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper fidelity: `n = 2¹⁵`, 1000-round window, 3 seeds.
    Paper,
    /// Laptop-friendly: `n = 2¹³`, 600-round window, 3 seeds. Still large
    /// enough for every λ the paper uses (λ = 1 − 2⁻¹³ needs `n ≥ 2¹³`).
    Quick,
    /// Smoke scale for tests and criterion benches: `n = 2¹⁰`, 200-round
    /// window, 2 seeds. λ values requiring finer granularity than 2⁻¹⁰ are
    /// skipped (and reported as skipped).
    Smoke,
}

impl Scale {
    /// Number of bins `n`.
    pub fn bins(&self) -> usize {
        match self {
            Scale::Paper => 1 << 15,
            Scale::Quick => 1 << 13,
            Scale::Smoke => 1 << 10,
        }
    }

    /// Measurement-window length in rounds (the paper uses 1000).
    pub fn window(&self) -> u64 {
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 600,
            Scale::Smoke => 200,
        }
    }

    /// Number of independent replications per data point.
    pub fn seeds(&self) -> usize {
        match self {
            Scale::Paper => 3,
            Scale::Quick => 3,
            Scale::Smoke => 2,
        }
    }

    /// All presets, for help text.
    pub fn all() -> [Scale; 3] {
        [Scale::Paper, Scale::Quick, Scale::Smoke]
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
            Scale::Smoke => "smoke",
        };
        write!(f, "{name}")
    }
}

impl FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "paper" => Ok(Scale::Paper),
            "quick" => Ok(Scale::Quick),
            "smoke" => Ok(Scale::Smoke),
            other => Err(format!(
                "unknown scale '{other}' (expected paper, quick or smoke)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(Scale::Paper.bins() > Scale::Quick.bins());
        assert!(Scale::Quick.bins() > Scale::Smoke.bins());
        assert!(Scale::Paper.window() >= Scale::Quick.window());
    }

    #[test]
    fn quick_supports_every_paper_lambda() {
        // λ = 1 − 2⁻¹³ needs λn integral: n must be a multiple of 2¹³.
        let n = Scale::Quick.bins();
        let lambda = 1.0 - 2.0f64.powi(-13);
        assert_eq!((lambda * n as f64).fract(), 0.0);
    }

    #[test]
    fn parse_roundtrip() {
        for scale in Scale::all() {
            assert_eq!(scale.to_string().parse::<Scale>().unwrap(), scale);
        }
        assert!("huge".parse::<Scale>().is_err());
    }
}
