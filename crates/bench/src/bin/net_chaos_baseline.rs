//! Regenerates `BENCH_net_chaos.json` — the committed measurement of the
//! serve stack under chaos: the same closed-loop client workload is run
//! twice against an in-process `run_net_loop` server, once calm and once
//! with the full resilience gauntlet active —
//!
//! - the deterministic socket fault injector armed (partial writes, read
//!   and write stalls, garbage injection, connection drops),
//! - admission control shedding under ingress pressure,
//! - a raw-socket surge client flooding the ingress queue mid-run,
//! - a **live crash-restart**: the service is checkpointed, torn down
//!   (worker threads joined), held down briefly, and resumed from the
//!   checkpoint bytes while clients ride through on deadline + retry.
//!
//! The committed numbers are goodput retained under chaos, retry
//! amplification, the p999 submit latency with and without injection,
//! and the number of rounds the resumed service needed to re-stabilize.
//!
//! ```text
//! cargo run --release -p iba-bench --bin net_chaos_baseline -- \
//!     [--ci] [--out BENCH_net_chaos.json]
//! ```
//!
//! `--ci` runs a short configuration and asserts the recovery invariants
//! (service resumed and re-stabilized, faults actually fired, every
//! client request eventually landed, final `/metrics` scrape parses
//! strictly) without writing a file unless `--out` is given.

use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iba_core::CappedConfig;
use iba_serve::proto::MAGIC;
use iba_serve::{
    run_net_loop, AdmissionControl, CappedService, ClientConfig, ClientStats, Frame, FrameDecoder,
    NetClient, NetFault, NetFaultPlan, NetFrontend, NetLoopOptions, RngMode, ServiceConfig,
};
use iba_sim::stats::Histogram;

const N: usize = 1024;
const C: u32 = 2;
const SHARDS: usize = 4;
const SEED: u64 = 20210705; // matches the other committed baselines
const ROUND_INTERVAL: Duration = Duration::from_micros(400);
const CLIENTS: usize = 2;
/// Ingress queue in the chaos phase: small enough that the surge client
/// builds real fill pressure for the shedding policy.
const CHAOS_INGRESS: usize = 512;
const SHED_START: f64 = 0.5;

struct Tuning {
    per_client: u64,
    surge: u64,
    downtime: Duration,
}

const FULL: Tuning = Tuning {
    per_client: 2_500,
    surge: 4_000,
    downtime: Duration::from_millis(80),
};

const CI: Tuning = Tuning {
    per_client: 400,
    surge: 1_500,
    downtime: Duration::from_millis(40),
};

/// The chaos schedule, in service rounds (one round per ~ROUND_INTERVAL).
/// Everything before the crash point so the gauntlet overlaps the
/// checkpoint the service restarts from.
fn chaos_plan() -> NetFaultPlan {
    NetFaultPlan::new()
        .with(
            30,
            NetFault::PartialWrites {
                max_bytes: 64,
                rounds: 40,
            },
        )
        .with(
            50,
            NetFault::StallReads {
                conns: 1,
                rounds: 20,
            },
        )
        .with(
            80,
            NetFault::StallWrites {
                conns: 1,
                rounds: 20,
            },
        )
        .with(
            120,
            NetFault::InjectGarbage {
                conns: 1,
                bytes: 32,
            },
        )
        .with(160, NetFault::DropConns { conns: 1 })
        .with(
            200,
            NetFault::PartialWrites {
                max_bytes: 128,
                rounds: 50,
            },
        )
}

/// What one phase's client fleet did, merged.
struct PhaseStats {
    submitted: u64,
    accepted: u64,
    attempts: u64,
    retries: u64,
    reconnects: u64,
    duplicate_accepts: u64,
    saturated: u64,
    completed: u64,
    wall: Duration,
    latency_us: Histogram,
}

impl PhaseStats {
    fn goodput_per_sec(&self) -> f64 {
        self.accepted as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn retry_amplification(&self) -> f64 {
        self.attempts as f64 / self.submitted.max(1) as f64
    }
}

/// What the chaos server observed across crash and recovery.
struct RecoveryStats {
    crash_round: u64,
    pre_crash_pool: usize,
    recovery_rounds: u64,
    faults_injected: u64,
    conns_dropped_by_fault: u64,
    allocs_shed: u64,
    slow_consumer_drops: u64,
    conserved: bool,
    checkpoint_bytes: usize,
}

/// One closed-loop client: submits `requests` sequentially through the
/// retrying [`NetClient`], timing each submission end to end (retries,
/// reconnects, and backoff included), then lingers for completions.
fn client_worker(
    addr: SocketAddr,
    requests: u64,
    seed: u64,
    strict_completions: bool,
    progress: Arc<AtomicU64>,
) -> Result<(ClientStats, Vec<u64>), String> {
    let mut client = NetClient::new(
        ClientConfig::new(addr)
            .with_seed(seed)
            .with_deadline(Duration::from_secs(20))
            .with_backoff(Duration::from_micros(500), Duration::from_millis(20)),
    );
    let mut latencies = Vec::with_capacity(requests as usize);
    for _ in 0..requests {
        let sent = Instant::now();
        client
            .submit()
            .map_err(|e| format!("client submit failed: {e}"))?;
        latencies.push(sent.elapsed().as_micros() as u64);
        progress.fetch_add(1, Ordering::Relaxed);
        client.pump_completions(Duration::ZERO);
    }
    // Completions for tickets whose connection a fault killed are
    // undeliverable, so only the calm phase insists on all of them.
    let target = client.stats().accepted;
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.stats().completed < target && Instant::now() < deadline {
        client.pump_completions(Duration::from_millis(2));
        if !strict_completions && client.stats().completed + 32 >= target {
            break;
        }
    }
    if strict_completions && client.stats().completed != target {
        return Err(format!(
            "calm client saw {}/{} completions",
            client.stats().completed,
            target
        ));
    }
    Ok((client.stats(), latencies))
}

/// The surge: a raw socket that floods `count` allocation requests in one
/// write to drive the ingress queue into shed territory. Error-tolerant —
/// the fault injector is allowed to kill it.
fn surge_worker(addr: SocketAddr, count: u64) -> (u64, u64) {
    let run = || -> Result<(u64, u64), std::io::Error> {
        let mut sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        sock.set_read_timeout(Some(Duration::from_millis(5)))?;
        sock.write_all(&MAGIC)?;
        let mut wire = Vec::with_capacity(count as usize * 13);
        for req_id in 0..count {
            Frame::Alloc { req_id }.encode_into(&mut wire);
        }
        sock.write_all(&wire)?;
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 16 << 10];
        let (mut accepted, mut saturated) = (0u64, 0u64);
        let deadline = Instant::now() + Duration::from_secs(10);
        while accepted + saturated < count && Instant::now() < deadline {
            match sock.read(&mut buf) {
                Ok(0) => break,
                Ok(k) => decoder.push(&buf[..k]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => break,
            }
            loop {
                match decoder.next_frame() {
                    Ok(Some(Frame::Accepted { .. })) => accepted += 1,
                    Ok(Some(Frame::Saturated { .. })) => saturated += 1,
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => break,
                }
            }
        }
        Ok((accepted, saturated))
    };
    run().unwrap_or((0, 0))
}

type ClientHandle = std::thread::JoinHandle<Result<(ClientStats, Vec<u64>), String>>;

fn merge_fleet(handles: Vec<ClientHandle>, start: Instant) -> Result<PhaseStats, String> {
    let mut merged = PhaseStats {
        submitted: 0,
        accepted: 0,
        attempts: 0,
        retries: 0,
        reconnects: 0,
        duplicate_accepts: 0,
        saturated: 0,
        completed: 0,
        wall: Duration::ZERO,
        latency_us: Histogram::new(),
    };
    for handle in handles {
        let (stats, latencies) = handle.join().map_err(|_| "client thread panicked")??;
        merged.submitted += stats.submitted;
        merged.accepted += stats.accepted;
        merged.attempts += stats.attempts;
        merged.retries += stats.retries;
        merged.reconnects += stats.reconnects;
        merged.duplicate_accepts += stats.duplicate_accepts;
        merged.saturated += stats.saturated;
        merged.completed += stats.completed;
        for us in latencies {
            merged.latency_us.record(us);
        }
    }
    merged.wall = start.elapsed();
    Ok(merged)
}

/// Parks until `progress` crosses `target` submissions (with a generous
/// timeout), so chaos events land relative to traffic, not wall time.
fn await_progress(progress: &AtomicU64, target: u64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    while progress.load(Ordering::Relaxed) < target {
        if Instant::now() > deadline {
            return Err(format!(
                "fleet stalled at {}/{target} submissions",
                progress.load(Ordering::Relaxed)
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    Ok(())
}

/// Calm phase: plain server, no faults, no admission policy.
fn run_calm(tuning: &Tuning) -> Result<PhaseStats, String> {
    let config = CappedConfig::new(N, C, 0.0).map_err(|e| e.to_string())?;
    let mut service = CappedService::spawn(
        ServiceConfig::new(config, SHARDS, SEED)
            .with_rng_mode(RngMode::PerShard)
            .with_ingress_capacity(1 << 16),
    )
    .map_err(|e| e.to_string())?;
    let completions = service.take_completions().expect("fresh service");
    let frontend = NetFrontend::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = frontend.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut service = service;
            let mut frontend = frontend;
            run_net_loop(
                &mut service,
                &mut frontend,
                &completions,
                &NetLoopOptions {
                    round_interval: ROUND_INTERVAL,
                    ..NetLoopOptions::default()
                },
                &stop,
            );
            service.conserves_balls()
        })
    };

    let start = Instant::now();
    let progress = Arc::new(AtomicU64::new(0));
    let fleet: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let per_client = tuning.per_client;
            let progress = Arc::clone(&progress);
            std::thread::spawn(move || {
                client_worker(addr, per_client, SEED + i as u64, true, progress)
            })
        })
        .collect();
    let stats = merge_fleet(fleet, start);
    stop.store(true, Ordering::Relaxed);
    let conserved = server.join().map_err(|_| "server thread panicked")?;
    let stats = stats?;
    if !conserved {
        return Err("calm phase lost balls".into());
    }
    Ok(stats)
}

/// Chaos phase: faults armed, shedding on, surge mid-run, and a live
/// crash-restart while the fleet is in flight.
type ChaosOutcome = (PhaseStats, RecoveryStats, u64, u64, (&'static str, usize));

fn run_chaos(tuning: &Tuning) -> Result<ChaosOutcome, String> {
    let config = CappedConfig::new(N, C, 0.0).map_err(|e| e.to_string())?;
    let service_config = ServiceConfig::new(config, SHARDS, SEED)
        .with_rng_mode(RngMode::PerShard)
        .with_ingress_capacity(CHAOS_INGRESS);
    let mut service = CappedService::spawn(service_config.clone()).map_err(|e| e.to_string())?;
    let kernel = (service.kernel_mode().name(), service.kernel_threads());
    let completions = service.take_completions().expect("fresh service");
    let mut frontend = NetFrontend::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    frontend.set_admission_control(AdmissionControl::default().with_shedding(SHED_START, SEED));
    frontend.arm_faults(chaos_plan(), SEED);
    let addr = frontend.local_addr();

    let crash = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let downtime = tuning.downtime;
    let server = {
        let crash = Arc::clone(&crash);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<RecoveryStats, String> {
            let mut service = service;
            let mut frontend = frontend;
            let opts = NetLoopOptions {
                round_interval: ROUND_INTERVAL,
                ..NetLoopOptions::default()
            };
            // Segment 1: serve until the driver pulls the plug.
            run_net_loop(&mut service, &mut frontend, &completions, &opts, &crash);

            // The crash: checkpoint, kill every worker, stay down, resume
            // from the bytes. The listener and its connections survive —
            // clients experience a stall, not a reset.
            let crash_round = service.round();
            let pre_crash_pool = service.pool_size();
            let bytes = service.checkpoint_bytes();
            service.shutdown();
            std::thread::sleep(downtime);
            let mut resumed = CappedService::resume(service_config, &bytes)
                .map_err(|e| format!("resume failed: {e}"))?;
            let completions = resumed.take_completions().expect("resumed service");

            // Recovery: single-round segments until the restored backlog
            // is fully served (pool empty), counting the rounds.
            let mut recovery_rounds = 0u64;
            let single = NetLoopOptions {
                max_rounds: 1,
                ..opts.clone()
            };
            while resumed.pool_size() > 0 && recovery_rounds < 10_000 {
                run_net_loop(&mut resumed, &mut frontend, &completions, &single, &stop);
                recovery_rounds += 1;
            }

            // Segment 2: keep serving until the fleet is done.
            run_net_loop(&mut resumed, &mut frontend, &completions, &opts, &stop);
            let stats = frontend.stats();
            Ok(RecoveryStats {
                crash_round,
                pre_crash_pool,
                recovery_rounds,
                faults_injected: stats.faults_injected,
                conns_dropped_by_fault: stats.conns_dropped_by_fault,
                allocs_shed: stats.allocs_shed,
                slow_consumer_drops: stats.slow_consumer_drops,
                conserved: resumed.conserves_balls(),
                checkpoint_bytes: bytes.len(),
            })
        })
    };

    let start = Instant::now();
    let progress = Arc::new(AtomicU64::new(0));
    let total = tuning.per_client * CLIENTS as u64;
    let fleet: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let per_client = tuning.per_client;
            let progress = Arc::clone(&progress);
            std::thread::spawn(move || {
                client_worker(addr, per_client, SEED + 100 + i as u64, false, progress)
            })
        })
        .collect();
    // Fire the surge a quarter of the way in, crash halfway: both land
    // mid-traffic by construction, not by wall-clock luck — the second
    // half of the fleet's submissions can only land on the resumed
    // service.
    await_progress(&progress, total / 4)?;
    let surge_count = tuning.surge;
    let surge = std::thread::spawn(move || surge_worker(addr, surge_count));
    await_progress(&progress, total / 2)?;
    crash.store(true, Ordering::Relaxed);

    let stats = merge_fleet(fleet, start);
    let (surge_accepted, surge_saturated) = surge.join().map_err(|_| "surge thread panicked")?;
    // The fleet is done; scrape the live loop once more before stopping it
    // so the committed run proves the post-recovery scrape plane works.
    let final_scrape = scrape(addr)?;
    if final_scrape
        .value("iba_serve_checkpoint_resumes_total")
        .unwrap_or(0.0)
        < 1.0
    {
        return Err("final scrape does not show the checkpoint resume".into());
    }
    stop.store(true, Ordering::Relaxed);
    let recovery = server.join().map_err(|_| "server thread panicked")??;
    let stats = stats?;
    if !recovery.conserved {
        return Err("resumed service lost balls".into());
    }
    Ok((stats, recovery, surge_accepted, surge_saturated, kernel))
}

/// Scrapes `GET /metrics` and returns the strictly parsed exposition.
fn scrape(addr: SocketAddr) -> Result<iba_obs::expo::Exposition, String> {
    let mut http = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    http.set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| e.to_string())?;
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: iba\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("scrape request: {e}"))?;
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if Instant::now() > deadline {
            return Err("scrape timed out".into());
        }
        match http.read(&mut buf) {
            Ok(0) => break,
            Ok(k) => response.extend_from_slice(&buf[..k]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("scrape read: {e}")),
        }
    }
    let text = String::from_utf8(response).map_err(|e| format!("scrape not utf8: {e}"))?;
    if !text.starts_with("HTTP/1.1 200 OK\r\n") {
        return Err(format!(
            "scrape did not return 200: {}",
            text.lines().next().unwrap_or("")
        ));
    }
    let body = iba_obs::expo::http_body(&text).ok_or("scrape response has no body")?;
    iba_obs::expo::parse(body).map_err(|e| format!("exposition failed strict parse: {e}"))
}

fn q(h: &Histogram, quantile: f64) -> u64 {
    h.quantile(quantile).unwrap_or(0)
}

fn phase_json(out: &mut String, stats: &PhaseStats) {
    let h = &stats.latency_us;
    let _ = writeln!(out, "    \"requests\": {},", stats.submitted);
    let _ = writeln!(out, "    \"accepted\": {},", stats.accepted);
    let _ = writeln!(out, "    \"attempts\": {},", stats.attempts);
    let _ = writeln!(out, "    \"retries\": {},", stats.retries);
    let _ = writeln!(out, "    \"reconnects\": {},", stats.reconnects);
    let _ = writeln!(
        out,
        "    \"duplicate_accepts\": {},",
        stats.duplicate_accepts
    );
    let _ = writeln!(out, "    \"saturated_replies\": {},", stats.saturated);
    let _ = writeln!(out, "    \"completions_seen\": {},", stats.completed);
    let _ = writeln!(out, "    \"wall_ms\": {},", stats.wall.as_millis());
    let _ = writeln!(
        out,
        "    \"goodput_per_sec\": {:.0},",
        stats.goodput_per_sec()
    );
    let _ = writeln!(
        out,
        "    \"retry_amplification\": {:.4},",
        stats.retry_amplification()
    );
    let _ = writeln!(
        out,
        "    \"submit_latency_us\": {{ \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \
         \"p999\": {}, \"max\": {} }}",
        h.mean(),
        q(h, 0.50),
        q(h, 0.99),
        q(h, 0.999),
        h.max().unwrap_or(0)
    );
}

fn render_json(
    calm: &PhaseStats,
    chaos: &PhaseStats,
    recovery: &RecoveryStats,
    surge_accepted: u64,
    surge_saturated: u64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"net_chaos\",\n");
    out.push_str(
        "  \"description\": \"Chaos-hardened serve stack under the full resilience gauntlet: \
         a closed-loop NetClient fleet (deadlines, jittered retries, idempotent re-submission) \
         drives the TCP front end twice — once calm, once with the deterministic socket fault \
         injector armed (partial writes, read/write stalls, garbage, drops), admission-control \
         shedding under a raw-socket ingress surge, and a live crash-restart: the service is \
         checkpointed, its workers killed, and resumed from the bytes mid-traffic. Latency is \
         per-submit wall time including retries and backoff.\",\n",
    );
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p iba-bench --bin net_chaos_baseline -- \
         --out BENCH_net_chaos.json\",\n",
    );
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(
        out,
        "  \"server\": {{ \"n\": {N}, \"c\": {C}, \"shards\": {SHARDS}, \
         \"round_interval_us\": {}, \"clients\": {CLIENTS}, \"chaos_ingress\": {CHAOS_INGRESS}, \
         \"shed_start\": {SHED_START} }},",
        ROUND_INTERVAL.as_micros()
    );
    out.push_str("  \"calm\": {\n");
    phase_json(&mut out, calm);
    out.push_str("  },\n");
    out.push_str("  \"chaos\": {\n");
    phase_json(&mut out, chaos);
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"goodput_retained\": {:.4},",
        chaos.goodput_per_sec() / calm.goodput_per_sec().max(1e-9)
    );
    let _ = writeln!(
        out,
        "  \"surge\": {{ \"accepted\": {surge_accepted}, \"saturated\": {surge_saturated} }},"
    );
    out.push_str("  \"recovery\": {\n");
    let _ = writeln!(out, "    \"crash_round\": {},", recovery.crash_round);
    let _ = writeln!(out, "    \"pre_crash_pool\": {},", recovery.pre_crash_pool);
    let _ = writeln!(
        out,
        "    \"checkpoint_bytes\": {},",
        recovery.checkpoint_bytes
    );
    let _ = writeln!(
        out,
        "    \"recovery_rounds\": {},",
        recovery.recovery_rounds
    );
    let _ = writeln!(
        out,
        "    \"faults_injected\": {},",
        recovery.faults_injected
    );
    let _ = writeln!(
        out,
        "    \"conns_dropped_by_fault\": {},",
        recovery.conns_dropped_by_fault
    );
    let _ = writeln!(out, "    \"allocs_shed\": {},", recovery.allocs_shed);
    let _ = writeln!(
        out,
        "    \"slow_consumer_drops\": {}",
        recovery.slow_consumer_drops
    );
    out.push_str("  }\n}\n");
    out
}

fn run(opts: &Options, started: Instant) -> Result<(), String> {
    iba_obs::set_enabled(true);
    let tuning = if opts.ci { &CI } else { &FULL };

    eprintln!("--- calm phase ---");
    let calm = run_calm(tuning)?;
    eprintln!(
        "calm: {} accepted in {:?} ({:.0}/s), p999 {}us",
        calm.accepted,
        calm.wall,
        calm.goodput_per_sec(),
        q(&calm.latency_us, 0.999)
    );

    eprintln!("--- chaos phase ---");
    let (chaos, recovery, surge_accepted, surge_saturated, kernel) = run_chaos(tuning)?;
    eprintln!(
        "chaos: {} accepted in {:?} ({:.0}/s), p999 {}us, {:.3}x retry amplification",
        chaos.accepted,
        chaos.wall,
        chaos.goodput_per_sec(),
        q(&chaos.latency_us, 0.999),
        chaos.retry_amplification()
    );
    eprintln!(
        "crash at round {} (pool {}, checkpoint {} bytes), resumed and re-stabilized in {} rounds",
        recovery.crash_round,
        recovery.pre_crash_pool,
        recovery.checkpoint_bytes,
        recovery.recovery_rounds
    );
    eprintln!(
        "faults: {} injected, {} conns dropped, {} allocs shed; surge {}+{} accepted/saturated",
        recovery.faults_injected,
        recovery.conns_dropped_by_fault,
        recovery.allocs_shed,
        surge_accepted,
        surge_saturated
    );

    // The recovery invariants every run (and the CI job) stands on.
    if chaos.accepted != chaos.submitted {
        return Err(format!(
            "lost requests under chaos: {}/{} accepted",
            chaos.accepted, chaos.submitted
        ));
    }
    if recovery.crash_round == 0 {
        return Err("the crash never happened".into());
    }
    if recovery.recovery_rounds >= 10_000 {
        return Err("resumed service never re-stabilized".into());
    }
    if recovery.faults_injected == 0 {
        return Err("fault plan armed but nothing fired".into());
    }

    let json = render_json(&calm, &chaos, &recovery, surge_accepted, surge_saturated);
    let json = match opts.out.as_deref() {
        Some(path) => iba_bench::prov::finalize(
            "net_chaos",
            &json,
            std::path::Path::new(path),
            opts.registry.as_deref().map(std::path::Path::new),
            opts.force,
            Some(kernel),
            started.elapsed().as_secs_f64() * 1e3,
        )?,
        None => json,
    };
    println!("{json}");
    Ok(())
}

struct Options {
    ci: bool,
    out: Option<String>,
    registry: Option<String>,
    force: bool,
}

fn main() -> ExitCode {
    let started = Instant::now();
    let mut opts = Options {
        ci: false,
        out: None,
        registry: None,
        force: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ci" => opts.ci = true,
            "--force" => opts.force = true,
            "--out" => match args.next() {
                Some(path) => opts.out = Some(path),
                None => {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                }
            },
            "--registry" => match args.next() {
                Some(path) => opts.registry = Some(path),
                None => {
                    eprintln!("--registry requires a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: net_chaos_baseline [--ci] [--out BENCH_net_chaos.json] \
                     [--registry PATH] [--force]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.out.is_none() && !opts.ci {
        opts.out = Some(String::from("BENCH_net_chaos.json"));
    }
    match run(&opts, started) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("net_chaos_baseline: {err}");
            ExitCode::FAILURE
        }
    }
}
