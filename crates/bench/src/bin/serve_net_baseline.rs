//! Regenerates `BENCH_serve_net.json` — the committed measurement of the
//! `iba-serve` TCP front end: sustained admissions per second and the
//! exact admission-latency distribution (submit → `Accepted` on the wire)
//! under an open-loop windowed workload, with the `/metrics` scrape plane
//! exercised mid-run.
//!
//! ```text
//! cargo run --release -p iba-bench --bin serve_net_baseline -- \
//!     [--quick] [--requests N] [--out BENCH_serve_net.json]
//! ```
//!
//! The default mode is **in-process**: the tool spawns a server thread
//! running [`iba_serve::run_net_loop`] on a loopback listener, drives it
//! from a client socket on this thread, and writes the baseline JSON.
//!
//! With `--connect ADDR` the tool instead drives an **external** server
//! (e.g. `serve_demo --listen ADDR`) — used by the CI net-smoke job. In
//! this mode it additionally scrapes `GET /metrics` twice, fails unless
//! both expositions parse strictly, the pool and connection gauges are
//! present, and the frame counter advanced between the scrapes (the
//! scrape plane is live, not a stale snapshot). No file is written unless
//! `--out` is given explicitly.
//!
//! Latencies are recorded in whole microseconds in an exact dense
//! [`Histogram`], so the reported p999 is the true order statistic of the
//! run, not an approximation.

use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iba_core::CappedConfig;
use iba_serve::proto::MAGIC;
use iba_serve::{
    run_net_loop, CappedService, Frame, FrameDecoder, NetFrontend, NetLoopOptions, RngMode,
    ServiceConfig,
};
use iba_sim::stats::Histogram;

/// Server cell for the in-process mode: n bins, FIFO capacity c. λ is
/// irrelevant (the service runs without model arrivals; every ball
/// arrives over the wire).
const N: usize = 1024;
const C: u32 = 2;
const SHARDS: usize = 4;
const SEED: u64 = 20210705; // matches the other committed baselines
/// Wall-clock spacing of service rounds in the in-process server.
const ROUND_INTERVAL: Duration = Duration::from_micros(200);
/// Maximum admissions in flight before the driver pauses submissions —
/// the open-loop window.
const WINDOW: usize = 1024;
/// Requests per submission batch (one `write_all` syscall).
const BATCH: u64 = 64;

struct Options {
    quick: bool,
    requests: u64,
    connect: Option<String>,
    out: Option<String>,
    registry: Option<String>,
    force: bool,
}

/// One driver run's results.
struct RunStats {
    requests: u64,
    accepted: u64,
    saturated: u64,
    completions: u64,
    wall: Duration,
    /// Admission latency (batch write → `Accepted` decoded), microseconds.
    latency_us: Histogram,
}

impl RunStats {
    fn accepted_per_sec(&self) -> f64 {
        self.accepted as f64 / self.wall.as_secs_f64()
    }
}

/// Drives `addr` with `total` ticketed requests through a bounded window,
/// interleaving batch writes with reads on one thread so every `Accepted`
/// timestamp is taken on the same clock that stamped the send.
fn drive(addr: SocketAddr, total: u64) -> Result<RunStats, String> {
    let mut client = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.set_nodelay(true).map_err(|e| e.to_string())?;
    client
        .set_read_timeout(Some(Duration::from_millis(1)))
        .map_err(|e| e.to_string())?;
    client
        .write_all(&MAGIC)
        .map_err(|e| format!("preface: {e}"))?;

    let mut decoder = FrameDecoder::new();
    let mut latency_us = Histogram::new();
    // Send instant per req_id; req_ids are dense from 0 so a Vec indexed
    // by id is the exact map.
    let mut sent_at: Vec<Instant> = Vec::with_capacity(total as usize);
    let mut accepted = 0u64;
    let mut saturated = 0u64;
    let mut completions = 0u64;
    let mut next_req = 0u64;
    let mut buf = [0u8; 16 << 10];
    let mut wire = Vec::with_capacity((BATCH as usize) * 13);
    let start = Instant::now();
    let deadline = start + Duration::from_secs(120);

    while accepted + saturated < total {
        if Instant::now() > deadline {
            return Err(format!(
                "driver timed out: {}/{total} replies after {:?}",
                accepted + saturated,
                start.elapsed()
            ));
        }
        // Submit while the window has room.
        let outstanding = next_req - (accepted + saturated);
        if next_req < total && (outstanding as usize) < WINDOW {
            let batch = BATCH.min(total - next_req);
            wire.clear();
            for _ in 0..batch {
                Frame::Alloc { req_id: next_req }.encode_into(&mut wire);
                next_req += 1;
            }
            client
                .write_all(&wire)
                .map_err(|e| format!("submit: {e}"))?;
            let now = Instant::now();
            sent_at.resize(next_req as usize, now);
        }
        // Drain replies.
        match client.read(&mut buf) {
            Ok(0) => return Err("server closed the connection".into()),
            Ok(k) => decoder.push(&buf[..k]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("read: {e}")),
        }
        let now = Instant::now();
        loop {
            match decoder.next_frame() {
                Ok(Some(Frame::Accepted { req_id, .. })) => {
                    accepted += 1;
                    let sent = sent_at[req_id as usize];
                    latency_us.record(now.duration_since(sent).as_micros() as u64);
                }
                Ok(Some(Frame::Saturated { .. })) => saturated += 1,
                Ok(Some(Frame::Completed { .. })) => completions += 1,
                Ok(Some(other)) => return Err(format!("unexpected frame {other:?}")),
                Ok(None) => break,
                Err(e) => return Err(format!("protocol error from server: {e}")),
            }
        }
    }
    let wall = start.elapsed();
    // Linger briefly to collect completion notifications still streaming.
    let linger = Instant::now() + Duration::from_millis(200);
    while Instant::now() < linger {
        match client.read(&mut buf) {
            Ok(0) => break,
            Ok(k) => decoder.push(&buf[..k]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("read: {e}")),
        }
        while let Ok(Some(frame)) = decoder.next_frame() {
            if matches!(frame, Frame::Completed { .. }) {
                completions += 1;
            }
        }
    }
    Ok(RunStats {
        requests: total,
        accepted,
        saturated,
        completions,
        wall,
        latency_us,
    })
}

/// Scrapes `GET /metrics` from `addr` and returns the strictly parsed
/// exposition.
fn scrape(addr: SocketAddr) -> Result<iba_obs::expo::Exposition, String> {
    let mut http = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    http.set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| e.to_string())?;
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: iba\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("scrape request: {e}"))?;
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if Instant::now() > deadline {
            return Err("scrape timed out".into());
        }
        match http.read(&mut buf) {
            Ok(0) => break,
            Ok(k) => response.extend_from_slice(&buf[..k]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("scrape read: {e}")),
        }
    }
    let text = String::from_utf8(response).map_err(|e| format!("scrape not utf8: {e}"))?;
    if !text.starts_with("HTTP/1.1 200 OK\r\n") {
        return Err(format!(
            "scrape did not return 200: {}",
            text.lines().next().unwrap_or("")
        ));
    }
    let body = iba_obs::expo::http_body(&text).ok_or("scrape response has no body")?;
    iba_obs::expo::parse(body).map_err(|e| format!("exposition failed strict parse: {e}"))
}

/// Asserts the scrape plane invariants the CI job relies on: strict parse
/// (done by [`scrape`]), gauges present, counters advancing.
fn check_scrapes(
    first: &iba_obs::expo::Exposition,
    second: &iba_obs::expo::Exposition,
) -> Result<(), String> {
    for (expo, which) in [(first, "first"), (second, "second")] {
        for gauge in ["iba_serve_pool_size", "iba_serve_net_connections"] {
            if expo.families.get(gauge).map(String::as_str) != Some("gauge") {
                return Err(format!("{which} scrape: `{gauge}` gauge missing"));
            }
            if expo.value(gauge).is_none() {
                return Err(format!("{which} scrape: `{gauge}` has no sample"));
            }
        }
        if expo.value("iba_serve_net_frames_total").is_none() {
            return Err(format!("{which} scrape: frame counter missing"));
        }
    }
    let a = first.value("iba_serve_net_frames_total").unwrap_or(0.0);
    let b = second.value("iba_serve_net_frames_total").unwrap_or(0.0);
    if b <= a {
        return Err(format!(
            "scrape plane looks stale: iba_serve_net_frames_total {a} -> {b} did not advance"
        ));
    }
    Ok(())
}

fn quantile_us(hist: &Histogram, q: f64) -> u64 {
    hist.quantile(q).unwrap_or(0)
}

fn render_json(stats: &RunStats) -> String {
    let h = &stats.latency_us;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"serve_net\",\n");
    out.push_str(
        "  \"description\": \"iba-serve TCP front end under an open-loop windowed workload: \
         one client socket submits length-prefixed allocation requests against the std-only \
         non-blocking event loop (run_net_loop) while service rounds drain the ingress queue. \
         Admission latency is submit (batch write) to Accepted frame decoded, recorded in whole \
         microseconds in an exact dense histogram, so quantiles are true order statistics. \
         GET /metrics is scraped mid-run on the same listener and must parse strictly.\",\n",
    );
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p iba-bench --bin serve_net_baseline -- \
         --out BENCH_serve_net.json\",\n",
    );
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(
        out,
        "  \"server\": {{ \"n\": {N}, \"c\": {C}, \"shards\": {SHARDS}, \
         \"round_interval_us\": {}, \"window\": {WINDOW}, \"batch\": {BATCH} }},",
        ROUND_INTERVAL.as_micros()
    );
    let _ = writeln!(out, "  \"requests\": {},", stats.requests);
    let _ = writeln!(out, "  \"accepted\": {},", stats.accepted);
    let _ = writeln!(out, "  \"saturated\": {},", stats.saturated);
    let _ = writeln!(out, "  \"completions_streamed\": {},", stats.completions);
    let _ = writeln!(out, "  \"wall_ms\": {},", stats.wall.as_millis());
    let _ = writeln!(
        out,
        "  \"accepted_per_sec\": {:.0},",
        stats.accepted_per_sec()
    );
    let _ = writeln!(out, "  \"admission_latency_us\": {{");
    let _ = writeln!(out, "    \"mean\": {:.1},", h.mean());
    let _ = writeln!(out, "    \"p50\": {},", quantile_us(h, 0.50));
    let _ = writeln!(out, "    \"p99\": {},", quantile_us(h, 0.99));
    let _ = writeln!(out, "    \"p999\": {},", quantile_us(h, 0.999));
    let _ = writeln!(out, "    \"max\": {}", h.max().unwrap_or(0));
    out.push_str("  }\n}\n");
    out
}

fn report(stats: &RunStats) {
    let h = &stats.latency_us;
    eprintln!(
        "drove {} requests in {:?}: {} accepted ({:.0}/s), {} saturated, {} completions streamed",
        stats.requests,
        stats.wall,
        stats.accepted,
        stats.accepted_per_sec(),
        stats.saturated,
        stats.completions,
    );
    eprintln!(
        "admission latency us: mean {:.1}  p50 {}  p99 {}  p999 {}  max {}",
        h.mean(),
        quantile_us(h, 0.50),
        quantile_us(h, 0.99),
        quantile_us(h, 0.999),
        h.max().unwrap_or(0),
    );
}

/// Stamps the rendered JSON with provenance, writes it to `--out` (when
/// given) through the config-hash overwrite guard, and appends the run
/// to `--registry` (when given).
fn emit(
    opts: &Options,
    json: &str,
    kernel: Option<(&str, usize)>,
    started: Instant,
) -> Result<String, String> {
    match opts.out.as_deref() {
        Some(path) => iba_bench::prov::finalize(
            "serve_net",
            json,
            std::path::Path::new(path),
            opts.registry.as_deref().map(std::path::Path::new),
            opts.force,
            kernel,
            started.elapsed().as_secs_f64() * 1e3,
        ),
        None => Ok(json.to_string()),
    }
}

/// In-process mode: spawn the server thread, drive it, stop it, write
/// the baseline file.
fn run_in_process(opts: &Options, started: Instant) -> Result<(), String> {
    iba_obs::set_enabled(true);
    let config = CappedConfig::new(N, C, 0.75).map_err(|e| e.to_string())?;
    let mut service = CappedService::spawn(
        ServiceConfig::new(config, SHARDS, SEED)
            .with_rng_mode(RngMode::PerShard)
            .with_ingress_capacity(1 << 16),
    )
    .map_err(|e| e.to_string())?;
    let kernel = (service.kernel_mode().name(), service.kernel_threads());
    let completions = service.take_completions().expect("fresh service");
    let frontend = NetFrontend::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = frontend.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut service = service;
            let mut frontend = frontend;
            let summary = run_net_loop(
                &mut service,
                &mut frontend,
                &completions,
                &NetLoopOptions {
                    round_interval: ROUND_INTERVAL,
                    ..NetLoopOptions::default()
                },
                &stop,
            );
            (summary, frontend.stats(), service.conserves_balls())
        })
    };
    eprintln!("in-process server listening on {addr}");

    let first = scrape(addr)?;
    let stats = drive(addr, opts.requests)?;
    let second = scrape(addr)?;
    stop.store(true, Ordering::Relaxed);
    let (summary, net, conserved) = server.join().map_err(|_| "server thread panicked")?;
    check_scrapes(&first, &second)?;
    if !conserved {
        return Err("service lost balls during the run".into());
    }
    if stats.accepted != net.allocs_accepted {
        return Err(format!(
            "driver saw {} admissions but the server counted {}",
            stats.accepted, net.allocs_accepted
        ));
    }
    eprintln!(
        "server ran {} rounds, streamed {} completions; scrape plane live across 2 scrapes",
        summary.rounds_run, summary.completions_delivered
    );
    report(&stats);

    let json = render_json(&stats);
    let json = emit(opts, &json, Some(kernel), started)?;
    println!("{json}");
    Ok(())
}

/// `--connect` mode: drive an already-running server (CI net-smoke). The
/// external server's kernel configuration is not observable from here,
/// so the provenance block carries no kernel field.
fn run_connect(opts: &Options, addr_str: &str, started: Instant) -> Result<(), String> {
    let addr: SocketAddr = addr_str
        .parse()
        .map_err(|e| format!("bad --connect address {addr_str}: {e}"))?;
    let first = scrape(addr)?;
    let stats = drive(addr, opts.requests)?;
    let second = scrape(addr)?;
    check_scrapes(&first, &second)?;
    if stats.accepted == 0 {
        return Err("no request was admitted".into());
    }
    eprintln!("scrape plane live across 2 scrapes; strict parse ok");
    report(&stats);
    let json = render_json(&stats);
    emit(opts, &json, None, started)?;
    Ok(())
}

fn main() -> ExitCode {
    let started = Instant::now();
    let mut opts = Options {
        quick: false,
        requests: 0,
        connect: None,
        out: None,
        registry: None,
        force: false,
    };
    let mut requests_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let result = match arg.as_str() {
            "--quick" => {
                opts.quick = true;
                Ok(())
            }
            "--requests" => value_for("--requests").and_then(|v| {
                requests_set = true;
                v.parse::<u64>()
                    .map(|n| opts.requests = n)
                    .map_err(|e| format!("bad --requests: {e}"))
            }),
            "--connect" => value_for("--connect").map(|v| opts.connect = Some(v)),
            "--out" => value_for("--out").map(|v| opts.out = Some(v)),
            "--registry" => value_for("--registry").map(|v| opts.registry = Some(v)),
            "--force" => {
                opts.force = true;
                Ok(())
            }
            other => Err(format!("unknown argument: {other}")),
        };
        if let Err(err) = result {
            eprintln!("{err}");
            eprintln!(
                "usage: serve_net_baseline [--quick] [--requests N] [--connect ADDR] \
                 [--out BENCH_serve_net.json] [--registry PATH] [--force]"
            );
            return ExitCode::FAILURE;
        }
    }
    if !requests_set {
        opts.requests = match (opts.quick, opts.connect.is_some()) {
            (true, _) => 5_000,
            (false, true) => 5_000, // CI smoke default: a few thousand
            (false, false) => 200_000,
        };
    }
    if opts.out.is_none() && opts.connect.is_none() {
        opts.out = Some(String::from("BENCH_serve_net.json"));
    }

    let outcome = match opts.connect.clone() {
        Some(addr) => run_connect(&opts, &addr, started),
        None => run_in_process(&opts, started),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("serve_net_baseline: {err}");
            ExitCode::FAILURE
        }
    }
}
