//! Regenerates `BENCH_round_kernel.json` — the repo's committed perf
//! baseline for the flat-arena round kernel.
//!
//! For each `(n, c, λ)` cell the tool runs the legacy scalar kernel and
//! the arena kernel in **lockstep on the same seed**, interleaving the
//! two round-by-round so machine drift cancels out of the ratio, timing
//! each round individually, and asserting the per-round [`RoundReport`]s
//! are bit-identical (the measurement doubles as a differential check).
//! It reports the median ns/round, rounds/second, ball throughput, and
//! the arena-over-scalar speedup, then writes everything as JSON.
//!
//! ```text
//! cargo run --release -p iba-bench --bin round_kernel_baseline -- \
//!     [--quick] [--out BENCH_round_kernel.json]
//! ```
//!
//! The default cells are the acceptance grid of the kernel PR — n = 10⁶,
//! c ∈ {2, 4, 8}, λ = 0.95 — and take a few minutes; `--quick` shrinks n
//! to 20 000 for a seconds-long smoke run (do **not** commit quick
//! output as the baseline).

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use iba_core::process::KernelMode;
use iba_core::{CappedConfig, CappedProcess};
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::rng::SimRng;

/// Rounds run before measurement starts (on top of the warm-started
/// pool), so timed rounds sit in the stationary regime.
const WARMUP_ROUNDS: u64 = 48;
/// Alternating scalar/arena measurement segments per cell.
const SEGMENTS: usize = 8;
/// Timed rounds per kernel per segment; each segment also runs one
/// untimed round first to re-warm the caches after the other kernel's
/// segment evicted them.
const ROUNDS_PER_SEGMENT: usize = 4;
/// Individually timed rounds per kernel per cell.
const MEASURED_ROUNDS: usize = SEGMENTS * ROUNDS_PER_SEGMENT;
const SEED: u64 = 20210705; // ICDCS'21 presentation date, arbitrary but fixed

struct CellMeasurement {
    n: usize,
    c: u32,
    lambda: f64,
    thrown_per_round: u64,
    scalar: KernelStats,
    arena: KernelStats,
}

struct KernelStats {
    median_ns_per_round: u128,
    min_ns_per_round: u128,
    rounds_per_sec: f64,
    /// Balls thrown (pool + arrivals) per second of wall-clock, at the
    /// median round time.
    throws_per_sec: f64,
}

/// Folds one kernel's per-round samples into its summary stats.
fn summarize(mut samples: Vec<Duration>, thrown_per_round: u64) -> KernelStats {
    samples.sort_unstable();
    let median = samples[samples.len() / 2].as_nanos();
    let min = samples[0].as_nanos();
    let rounds_per_sec = 1e9 / median as f64;
    KernelStats {
        median_ns_per_round: median,
        min_ns_per_round: min,
        rounds_per_sec,
        throws_per_sec: thrown_per_round as f64 * rounds_per_sec,
    }
}

/// Runs the scalar and arena kernels in **lockstep segments** on the
/// same seed: each segment runs one untimed cache re-warm round plus
/// [`ROUNDS_PER_SEGMENT`] timed rounds of the scalar kernel, then the
/// same for the arena kernel, then asserts the two [`RoundReport`]s are
/// bit-identical. Alternating segments means slow machine drift
/// (frequency scaling, co-tenants) hits both sides of the ratio roughly
/// equally instead of skewing whichever kernel ran in the noisier
/// phase, while the re-warm round keeps each kernel's timed rounds
/// cache-warm as in steady-state production use; the per-segment assert
/// turns the measurement into a differential check of the whole
/// trajectory.
fn measure_cell(n: usize, c: u32, lambda: f64) -> CellMeasurement {
    eprintln!("measuring n={n} c={c} lambda={lambda} ...");
    let config = CappedConfig::new(n, c, lambda).expect("valid cell");
    let mut scalar_p = CappedProcess::with_kernel(config.clone(), KernelMode::Scalar);
    let mut arena_p = CappedProcess::with_kernel(config, KernelMode::Arena);
    scalar_p.warm_start();
    arena_p.warm_start();
    let mut scalar_rng = SimRng::seed_from(SEED);
    let mut arena_rng = SimRng::seed_from(SEED);
    // The scalar side runs through the per-round `step()` entry point —
    // the only driver API that existed before the kernel landed (a fresh
    // report, and with it the waiting-time vector, is allocated every
    // round, exactly as the simulation engine used to do). The arena side
    // runs the kernel the way the engine drives it today: `step_into`
    // with a reused report.
    let mut arena_report = RoundReport::default();
    for _ in 0..WARMUP_ROUNDS {
        let _ = scalar_p.step(&mut scalar_rng);
        arena_p.step_into(&mut arena_rng, &mut arena_report);
    }
    let mut scalar_report;
    let mut scalar_samples: Vec<Duration> = Vec::with_capacity(MEASURED_ROUNDS);
    let mut arena_samples: Vec<Duration> = Vec::with_capacity(MEASURED_ROUNDS);
    let mut thrown_total = 0u64;
    for segment in 0..SEGMENTS {
        scalar_report = scalar_p.step(&mut scalar_rng);
        for _ in 0..ROUNDS_PER_SEGMENT {
            let start = Instant::now();
            scalar_report = scalar_p.step(&mut scalar_rng);
            scalar_samples.push(start.elapsed());
        }
        arena_p.step_into(&mut arena_rng, &mut arena_report);
        for _ in 0..ROUNDS_PER_SEGMENT {
            let start = Instant::now();
            arena_p.step_into(&mut arena_rng, &mut arena_report);
            arena_samples.push(start.elapsed());
            thrown_total += arena_report.thrown;
        }
        assert_eq!(
            arena_report, scalar_report,
            "kernels diverged in measurement segment {segment} at n={n} c={c} lambda={lambda}"
        );
    }
    let thrown = thrown_total / MEASURED_ROUNDS as u64;
    let scalar = summarize(scalar_samples, thrown);
    let arena = summarize(arena_samples, thrown);
    let speedup = scalar.median_ns_per_round as f64 / arena.median_ns_per_round as f64;
    eprintln!(
        "  scalar {:>12} ns/round   arena {:>12} ns/round   speedup {speedup:.2}x",
        scalar.median_ns_per_round, arena.median_ns_per_round
    );
    CellMeasurement {
        n,
        c,
        lambda,
        thrown_per_round: thrown,
        scalar,
        arena,
    }
}

fn render_json(cells: &[CellMeasurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"round_kernel\",\n");
    out.push_str(
        "  \"description\": \"CAPPED(c, lambda) round throughput, before vs after the kernel \
         PR: legacy scalar kernel through the pre-kernel per-round step() API \
         (VecDeque-per-bin, per-ball RNG, fresh report allocation each round) vs flat-arena \
         kernel through step_into (SoA BinArena, counting-sort acceptance, bulk RNG, reused \
         round scratch). Same seed, bit-identical trajectories, alternating measurement \
         segments; median over timed rounds in the stationary regime.\",\n",
    );
    out.push_str("  \"regenerate\": \"cargo run --release -p iba-bench --bin round_kernel_baseline -- --out BENCH_round_kernel.json\",\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"warmup_rounds\": {WARMUP_ROUNDS},");
    let _ = writeln!(out, "  \"measured_rounds\": {MEASURED_ROUNDS},");
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let speedup =
            cell.scalar.median_ns_per_round as f64 / cell.arena.median_ns_per_round as f64;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"n\": {}, \"c\": {}, \"lambda\": {}, \"thrown_per_round\": {},",
            cell.n, cell.c, cell.lambda, cell.thrown_per_round
        );
        for (name, stats) in [("scalar", &cell.scalar), ("arena", &cell.arena)] {
            let _ = writeln!(
                out,
                "      \"{name}\": {{ \"median_ns_per_round\": {}, \"min_ns_per_round\": {}, \
                 \"rounds_per_sec\": {:.3}, \"throws_per_sec\": {:.0} }},",
                stats.median_ns_per_round,
                stats.min_ns_per_round,
                stats.rounds_per_sec,
                stats.throws_per_sec
            );
        }
        let _ = writeln!(out, "      \"arena_speedup\": {speedup:.3}");
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_round_kernel.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: round_kernel_baseline [--quick] [--out BENCH_round_kernel.json]");
                return ExitCode::FAILURE;
            }
        }
    }

    let n = if quick { 20_000 } else { 1_000_000 };
    let lambda = 0.95;
    let cells: Vec<CellMeasurement> = [2u32, 4, 8]
        .iter()
        .map(|&c| measure_cell(n, c, lambda))
        .collect();

    let json = render_json(&cells);
    if let Err(err) = fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
    for cell in &cells {
        let speedup =
            cell.scalar.median_ns_per_round as f64 / cell.arena.median_ns_per_round as f64;
        if speedup < 2.0 {
            eprintln!(
                "WARNING: speedup {speedup:.2}x below the 2x acceptance bar at n={} c={}",
                cell.n, cell.c
            );
        }
    }
    ExitCode::SUCCESS
}
