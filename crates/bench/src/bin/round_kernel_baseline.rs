//! Regenerates `BENCH_round_kernel.json` — the repo's committed perf
//! baseline for the flat-arena round kernel and its vectorized variants.
//!
//! For each `(n, c, λ)` cell the tool runs every kernel variant in
//! **lockstep on the same seed**, interleaving them round-by-round in
//! alternating segments so machine drift cancels out of the ratios,
//! timing each round individually, and asserting the per-round
//! [`RoundReport`]s are bit-identical across all variants (the
//! measurement doubles as a differential check). It reports the median
//! ns/round, rounds/second, ball throughput, and each variant's speedup
//! over the scalar kernel, then writes everything as JSON.
//!
//! ```text
//! cargo run --release -p iba-bench --bin round_kernel_baseline -- \
//!     [--quick] [--n N] [--threads LIST] [--assert-parallel-wins] \
//!     [--out BENCH_round_kernel.json]
//! ```
//!
//! The four standing variants are `scalar` (pre-kernel per-ball loop),
//! `arena` (counting-sort kernel), `arena_simd` (SWAR register sweeps),
//! and `arena_parallel` (intra-round partitioned workers at the resolved
//! thread count). `--threads 1,2,4` appends an `arena_parallel_t{t}`
//! sweep column per listed count. `--assert-parallel-wins` exits
//! non-zero if `arena_parallel` is slower than `arena` (compared on
//! minimum round time, the least noise-sensitive statistic) while the
//! host has at least two cores — the CI guard for the parallel path.
//!
//! The default cells are the acceptance grid of the kernel PRs — n = 10⁶,
//! c ∈ {2, 4, 8}, λ = 0.95 — and take a few minutes; `--quick` shrinks n
//! to 20 000 for a seconds-long smoke run (do **not** commit quick
//! output as the baseline).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use iba_core::process::KernelMode;
use iba_core::{CappedConfig, CappedProcess};
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::rng::SimRng;

/// Rounds run before measurement starts (on top of the warm-started
/// pool), so timed rounds sit in the stationary regime.
const WARMUP_ROUNDS: u64 = 48;
/// Alternating per-variant measurement segments per cell.
const SEGMENTS: usize = 8;
/// Timed rounds per variant per segment; each segment also runs one
/// untimed round first to re-warm the caches after the other variants'
/// segments evicted them.
const ROUNDS_PER_SEGMENT: usize = 4;
/// Individually timed rounds per variant per cell.
const MEASURED_ROUNDS: usize = SEGMENTS * ROUNDS_PER_SEGMENT;
const SEED: u64 = 20210705; // ICDCS'21 presentation date, arbitrary but fixed

/// One benched kernel configuration.
#[derive(Clone)]
struct VariantSpec {
    /// JSON key (`scalar`, `arena`, `arena_simd`, `arena_parallel`,
    /// `arena_parallel_t{t}`).
    key: String,
    kernel: KernelMode,
    /// Worker count for parallel variants (`None` = mode default).
    threads: Option<usize>,
}

struct CellMeasurement {
    n: usize,
    c: u32,
    lambda: f64,
    thrown_per_round: u64,
    /// Stats per variant, in `VariantSpec` order (scalar first).
    variants: Vec<(VariantSpec, KernelStats)>,
}

impl CellMeasurement {
    fn stats(&self, key: &str) -> Option<&KernelStats> {
        self.variants
            .iter()
            .find(|(spec, _)| spec.key == key)
            .map(|(_, stats)| stats)
    }
}

struct KernelStats {
    median_ns_per_round: u128,
    min_ns_per_round: u128,
    rounds_per_sec: f64,
    /// Balls thrown (pool + arrivals) per second of wall-clock, at the
    /// median round time.
    throws_per_sec: f64,
}

/// Folds one variant's per-round samples into its summary stats.
fn summarize(mut samples: Vec<Duration>, thrown_per_round: u64) -> KernelStats {
    samples.sort_unstable();
    let median = samples[samples.len() / 2].as_nanos();
    let min = samples[0].as_nanos();
    let rounds_per_sec = 1e9 / median as f64;
    KernelStats {
        median_ns_per_round: median,
        min_ns_per_round: min,
        rounds_per_sec,
        throws_per_sec: thrown_per_round as f64 * rounds_per_sec,
    }
}

/// One variant's live process plus its measurement state.
struct Runner {
    spec: VariantSpec,
    process: CappedProcess,
    rng: SimRng,
    report: RoundReport,
    samples: Vec<Duration>,
}

impl Runner {
    fn new(spec: VariantSpec, config: &CappedConfig) -> Self {
        let mut process = CappedProcess::with_kernel(config.clone(), spec.kernel);
        if let Some(t) = spec.threads {
            process.set_kernel_threads(t);
        }
        process.warm_start();
        Runner {
            spec,
            process,
            rng: SimRng::seed_from(SEED),
            report: RoundReport::default(),
            samples: Vec::with_capacity(MEASURED_ROUNDS),
        }
    }

    /// One round through this variant's driver entry point. The scalar
    /// side runs the per-round `step()` API — the only driver that
    /// existed before the kernel landed (a fresh report, and with it the
    /// waiting-time vector, is allocated every round, exactly as the
    /// simulation engine used to do). Every arena-family variant runs the
    /// kernel the way the engine drives it today: `step_into` with a
    /// reused report.
    fn step(&mut self) {
        if self.spec.kernel == KernelMode::Scalar {
            self.report = self.process.step(&mut self.rng);
        } else {
            self.process.step_into(&mut self.rng, &mut self.report);
        }
    }
}

/// Runs every variant in **lockstep segments** on the same seed: each
/// segment runs, per variant, one untimed cache re-warm round plus
/// [`ROUNDS_PER_SEGMENT`] timed rounds, then asserts all variants'
/// [`RoundReport`]s are bit-identical. Alternating segments means slow
/// machine drift (frequency scaling, co-tenants) hits every side of the
/// ratios roughly equally instead of skewing whichever variant ran in
/// the noisier phase, while the re-warm round keeps each variant's timed
/// rounds cache-warm as in steady-state production use; the per-segment
/// assert turns the measurement into a differential check of the whole
/// trajectory.
fn measure_cell(n: usize, c: u32, lambda: f64, specs: &[VariantSpec]) -> CellMeasurement {
    eprintln!("measuring n={n} c={c} lambda={lambda} ...");
    let config = CappedConfig::new(n, c, lambda).expect("valid cell");
    let mut runners: Vec<Runner> = specs
        .iter()
        .map(|spec| Runner::new(spec.clone(), &config))
        .collect();
    for runner in runners.iter_mut() {
        for _ in 0..WARMUP_ROUNDS {
            runner.step();
        }
    }
    let mut thrown_total = 0u64;
    for segment in 0..SEGMENTS {
        for runner in runners.iter_mut() {
            runner.step();
            for _ in 0..ROUNDS_PER_SEGMENT {
                let start = Instant::now();
                runner.step();
                runner.samples.push(start.elapsed());
            }
        }
        thrown_total += ROUNDS_PER_SEGMENT as u64 * runners[0].report.thrown;
        let (reference, rest) = runners.split_first().expect("at least one variant");
        for runner in rest {
            assert_eq!(
                runner.report, reference.report,
                "{} diverged from {} in segment {segment} at n={n} c={c} lambda={lambda}",
                runner.spec.key, reference.spec.key
            );
        }
    }
    let thrown = thrown_total / MEASURED_ROUNDS as u64;
    let variants: Vec<(VariantSpec, KernelStats)> = runners
        .into_iter()
        .map(|r| {
            let stats = summarize(r.samples, thrown);
            (r.spec, stats)
        })
        .collect();
    let scalar_median = variants[0].1.median_ns_per_round;
    for (spec, stats) in &variants {
        let speedup = scalar_median as f64 / stats.median_ns_per_round as f64;
        eprintln!(
            "  {:<18} {:>12} ns/round   {:>14.0} throws/s   {speedup:.2}x vs scalar",
            spec.key, stats.median_ns_per_round, stats.throws_per_sec
        );
    }
    CellMeasurement {
        n,
        c,
        lambda,
        thrown_per_round: thrown,
        variants,
    }
}

fn render_json(cells: &[CellMeasurement], parallel_threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"round_kernel\",\n");
    out.push_str(
        "  \"description\": \"CAPPED(c, lambda) round throughput across kernel generations: \
         legacy scalar kernel through the pre-kernel per-round step() API (VecDeque-per-bin, \
         per-ball RNG, fresh report allocation each round) vs the flat-arena counting-sort \
         kernel, the SWAR register-sweep kernel, and the intra-round partitioned parallel \
         kernel, all through step_into with reused round scratch. Same seed, bit-identical \
         trajectories, alternating measurement segments; median over timed rounds in the \
         stationary regime.\",\n",
    );
    out.push_str("  \"regenerate\": \"cargo run --release -p iba-bench --bin round_kernel_baseline -- --out BENCH_round_kernel.json\",\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"warmup_rounds\": {WARMUP_ROUNDS},");
    let _ = writeln!(out, "  \"measured_rounds\": {MEASURED_ROUNDS},");
    let _ = writeln!(
        out,
        "  \"available_parallelism\": {},",
        available_parallelism()
    );
    let _ = writeln!(out, "  \"parallel_threads\": {parallel_threads},");
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let scalar_median = cell.variants[0].1.median_ns_per_round;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"n\": {}, \"c\": {}, \"lambda\": {}, \"thrown_per_round\": {},",
            cell.n, cell.c, cell.lambda, cell.thrown_per_round
        );
        for (spec, stats) in &cell.variants {
            let threads = spec
                .threads
                .map_or(String::new(), |t| format!("\"threads\": {t}, "));
            let _ = writeln!(
                out,
                "      \"{}\": {{ {threads}\"median_ns_per_round\": {}, \
                 \"min_ns_per_round\": {}, \"rounds_per_sec\": {:.3}, \
                 \"throws_per_sec\": {:.0} }},",
                spec.key,
                stats.median_ns_per_round,
                stats.min_ns_per_round,
                stats.rounds_per_sec,
                stats.throws_per_sec
            );
        }
        for (key, label) in [
            ("arena", "arena_speedup"),
            ("arena_simd", "simd_speedup"),
            ("arena_parallel", "parallel_speedup"),
        ] {
            if let Some(stats) = cell.stats(key) {
                let speedup = scalar_median as f64 / stats.median_ns_per_round as f64;
                let _ = writeln!(out, "      \"{label}\": {speedup:.3},");
            }
        }
        // Strip the trailing comma of the last entry to stay valid JSON.
        let trimmed = out.trim_end_matches('\n').trim_end_matches(',').len();
        out.truncate(trimmed);
        out.push('\n');
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn main() -> ExitCode {
    let started = Instant::now();
    let mut quick = false;
    let mut assert_parallel_wins = false;
    let mut n_override: Option<usize> = None;
    let mut thread_sweep: Vec<usize> = Vec::new();
    let mut out_path = String::from("BENCH_round_kernel.json");
    let mut registry: Option<String> = None;
    let mut force = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--assert-parallel-wins" => assert_parallel_wins = true,
            "--force" => force = true,
            "--registry" => match args.next() {
                Some(path) => registry = Some(path),
                None => {
                    eprintln!("--registry requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--n" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => n_override = Some(n),
                _ => {
                    eprintln!("--n requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => {
                let parsed: Option<Vec<usize>> = args
                    .next()
                    .map(|list| {
                        list.split(',')
                            .map(|t| t.trim().parse::<usize>().ok().filter(|&t| t >= 1))
                            .collect()
                    })
                    .unwrap_or(None);
                match parsed {
                    Some(list) if !list.is_empty() => thread_sweep = list,
                    _ => {
                        eprintln!("--threads requires a comma-separated list of counts >= 1");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: round_kernel_baseline [--quick] [--n N] [--threads LIST] \
                     [--assert-parallel-wins] [--out BENCH_round_kernel.json] \
                     [--registry PATH] [--force]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let cores = available_parallelism();
    let parallel_threads = CappedProcess::with_kernel(
        CappedConfig::new(16, 2, 0.75).expect("valid probe config"),
        KernelMode::ArenaParallel,
    )
    .kernel_threads();
    let mut specs = vec![
        VariantSpec {
            key: "scalar".into(),
            kernel: KernelMode::Scalar,
            threads: None,
        },
        VariantSpec {
            key: "arena".into(),
            kernel: KernelMode::Arena,
            threads: None,
        },
        VariantSpec {
            key: "arena_simd".into(),
            kernel: KernelMode::ArenaSimd,
            threads: None,
        },
        VariantSpec {
            key: "arena_parallel".into(),
            kernel: KernelMode::ArenaParallel,
            threads: Some(parallel_threads),
        },
    ];
    for &t in &thread_sweep {
        if t == parallel_threads {
            continue; // already covered by the standing variant
        }
        specs.push(VariantSpec {
            key: format!("arena_parallel_t{t}"),
            kernel: KernelMode::ArenaParallel,
            threads: Some(t),
        });
    }

    let n = n_override.unwrap_or(if quick { 20_000 } else { 1_000_000 });
    let lambda = 0.95;
    let cells: Vec<CellMeasurement> = [2u32, 4, 8]
        .iter()
        .map(|&c| measure_cell(n, c, lambda, &specs))
        .collect();

    let json = render_json(&cells, parallel_threads);
    let json = match iba_bench::prov::finalize(
        "round_kernel",
        &json,
        std::path::Path::new(&out_path),
        registry.as_deref().map(std::path::Path::new),
        force,
        Some(("arena_parallel", parallel_threads)),
        started.elapsed().as_secs_f64() * 1e3,
    ) {
        Ok(stamped) => stamped,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    println!("{json}");
    let mut failed = false;
    for cell in &cells {
        let arena = cell.stats("arena").expect("standing variant");
        let scalar_median = cell.variants[0].1.median_ns_per_round;
        let speedup = scalar_median as f64 / arena.median_ns_per_round as f64;
        if speedup < 2.0 {
            eprintln!(
                "WARNING: arena speedup {speedup:.2}x below the 2x acceptance bar at n={} c={}",
                cell.n, cell.c
            );
        }
        if assert_parallel_wins {
            let parallel = cell.stats("arena_parallel").expect("standing variant");
            if cores >= 2 && parallel_threads >= 2 {
                // Minimum round time: the least noise-sensitive statistic
                // for a CI gate on shared runners.
                if parallel.min_ns_per_round > arena.min_ns_per_round {
                    eprintln!(
                        "FAIL: arena_parallel min {} ns/round is slower than arena min {} \
                         ns/round at n={} c={} ({cores} cores, {parallel_threads} threads)",
                        parallel.min_ns_per_round, arena.min_ns_per_round, cell.n, cell.c
                    );
                    failed = true;
                }
            } else {
                eprintln!(
                    "note: --assert-parallel-wins skipped at n={} c={} \
                     ({cores} cores / {parallel_threads} threads resolved — need >= 2)",
                    cell.n, cell.c
                );
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
