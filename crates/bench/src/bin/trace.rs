//! Per-round trace of a single CAPPED(c, λ) run, streamed as CSV to
//! stdout — for plotting trajectories (transients, recovery, stationarity)
//! with external tools.
//!
//! ```text
//! cargo run -p iba-bench --release --bin trace -- \
//!     --n 4096 --c 2 --lambda 0.75 --rounds 2000 [--seed 1] [--overload 8] [--every 10]
//! ```

use std::process::ExitCode;

use iba_core::config::CappedConfig;
use iba_core::process::CappedProcess;
use iba_sim::process::AllocationProcess;
use iba_sim::rng::SimRng;

#[derive(Debug)]
struct Args {
    n: usize,
    c: u32,
    lambda: f64,
    rounds: u64,
    seed: u64,
    /// Inject `overload · n` balls before round 1 (0 = none).
    overload: u64,
    /// Emit every k-th round.
    every: u64,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        n: 1 << 12,
        c: 2,
        lambda: 0.75,
        rounds: 2_000,
        seed: 1,
        overload: 0,
        every: 1,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let v = iter
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag.as_str() {
            "--n" => out.n = v.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--c" => out.c = v.parse().map_err(|e| format!("bad --c: {e}"))?,
            "--lambda" => out.lambda = v.parse().map_err(|e| format!("bad --lambda: {e}"))?,
            "--rounds" => out.rounds = v.parse().map_err(|e| format!("bad --rounds: {e}"))?,
            "--seed" => out.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--overload" => {
                out.overload = v.parse().map_err(|e| format!("bad --overload: {e}"))?
            }
            "--every" => out.every = v.parse().map_err(|e| format!("bad --every: {e}"))?,
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: trace [--n N] [--c C] [--lambda L] [--rounds R] [--seed S] [--overload K] [--every E]"
                ))
            }
        }
    }
    if out.every == 0 {
        return Err("--every must be at least 1".into());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = match CappedConfig::new(args.n, args.c, args.lambda) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut process = CappedProcess::new(config);
    if args.overload > 0 {
        process.inject_pool(args.overload * args.n as u64);
    }
    let mut rng = SimRng::seed_from(args.seed);

    println!("round,pool,pool_per_bin,accepted,deleted,failed_deletions,buffered,max_load,mean_wait,max_wait");
    for _ in 0..args.rounds {
        let r = process.step(&mut rng);
        if !r.round.is_multiple_of(args.every) {
            continue;
        }
        let (mean_wait, max_wait) = if r.waiting_times.is_empty() {
            (0.0, 0)
        } else {
            let sum: u64 = r.waiting_times.iter().sum();
            (
                sum as f64 / r.waiting_times.len() as f64,
                *r.waiting_times.iter().max().expect("non-empty"),
            )
        };
        println!(
            "{},{},{},{},{},{},{},{},{:.4},{}",
            r.round,
            r.pool_size,
            r.pool_size as f64 / args.n as f64,
            r.accepted,
            r.deleted,
            r.failed_deletions,
            r.buffered,
            r.max_load,
            mean_wait,
            max_wait
        );
    }
    ExitCode::SUCCESS
}
