//! Regenerates `BENCH_membership.json` — the committed measurement of the
//! elastic-membership stack:
//!
//! - **Router head-to-head**: the round-robin resharder vs consistent
//!   hashing with bounded loads, driven through the same membership
//!   history over the same key population, scored on keys moved per
//!   membership change. The committed run *asserts* bounded-load moves
//!   strictly fewer keys than round-robin on every single change.
//! - **Churn + crash + surge gauntlet**: a live `CappedService` rides
//!   through add/remove/split/merge membership events interleaved with a
//!   simulator fault plan (bin crashes, capacity degradation, pool surge,
//!   arrival bursts) and a **mid-run crash-restart** from checkpoint
//!   bytes. Every ball is tracked by identity: the run fails if any ball
//!   is lost or duplicated, by total or by label.
//! - **No-churn differential**: a Central-mode service with membership
//!   scheduled beyond the horizon must stay bit-identical to the bare
//!   `CappedProcess`, round report by round report.
//!
//! ```text
//! cargo run --release -p iba-bench --bin membership_baseline -- \
//!     [--ci] [--out BENCH_membership.json]
//! ```
//!
//! `--ci` runs a short configuration and the same assertions without
//! writing a file unless `--out` is given.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use iba_core::{Ball, CappedConfig, CappedProcess};
use iba_membership::{
    moved_keys, BoundedLoadRouter, MembershipEvent, MembershipPlan, RoundRobinRouter, Router,
};
use iba_serve::{CappedService, RngMode, ServiceConfig};
use iba_sim::codec::Decoder;
use iba_sim::faults::{FaultEvent, FaultPlan};
use iba_sim::process::AllocationProcess;
use iba_sim::SimRng;

const SEED: u64 = 20210705; // matches the other committed baselines
const VNODES_PER_BIN: usize = 64;
const EPSILON: f64 = 0.25;

struct Tuning {
    /// Key population for the router head-to-head.
    keys: usize,
    /// Initial bin count for the router head-to-head.
    router_bins: usize,
    /// Gauntlet cell size (bins).
    n: usize,
    /// Gauntlet length in rounds (the crash lands halfway).
    rounds: u64,
    /// No-churn differential length in rounds.
    diff_rounds: u64,
}

const FULL: Tuning = Tuning {
    keys: 65_536,
    router_bins: 64,
    n: 96,
    rounds: 200,
    diff_rounds: 200,
};

const CI: Tuning = Tuning {
    keys: 8_192,
    router_bins: 32,
    n: 48,
    rounds: 80,
    diff_rounds: 60,
};

/// The membership history both routers replay: signed bin-count deltas.
const ROUTER_CHURN: [i64; 7] = [8, 16, -12, 4, -24, 32, -8];

struct RouterEvent {
    change: i64,
    bins_after: usize,
    rr_moved: usize,
    bl_moved: usize,
}

/// Replays `ROUTER_CHURN` through one router and returns keys moved per
/// event, in event order.
fn drive_router(router: &mut dyn Router, population: &[u64]) -> Vec<(usize, usize)> {
    let mut before = router.assign(population);
    ROUTER_CHURN
        .iter()
        .map(|&delta| {
            if delta >= 0 {
                router.add_bins(delta as usize);
            } else {
                router.remove_bins((-delta) as usize);
            }
            let after = router.assign(population);
            let moved = moved_keys(&before, &after);
            before = after;
            (router.bins(), moved)
        })
        .collect()
}

fn run_routers(tuning: &Tuning) -> Result<Vec<RouterEvent>, String> {
    let population: Vec<u64> = (0..tuning.keys as u64).collect();
    let mut rr = RoundRobinRouter::new(tuning.router_bins);
    let mut bl = BoundedLoadRouter::new(tuning.router_bins, VNODES_PER_BIN, EPSILON);
    let rr_runs = drive_router(&mut rr, &population);
    let bl_runs = drive_router(&mut bl, &population);
    let events: Vec<RouterEvent> = ROUTER_CHURN
        .iter()
        .zip(rr_runs.iter().zip(&bl_runs))
        .map(
            |(&change, (&(bins_after, rr_moved), &(bl_bins, bl_moved)))| {
                assert_eq!(bins_after, bl_bins, "routers replay the same history");
                RouterEvent {
                    change,
                    bins_after,
                    rr_moved,
                    bl_moved,
                }
            },
        )
        .collect();
    // The claim the committed baseline stands on: bounded-load beats the
    // resharder on every membership change, not just in aggregate.
    for event in &events {
        if event.bl_moved >= event.rr_moved {
            return Err(format!(
                "bounded-load moved {} >= round-robin {} on change {:+} (to {} bins)",
                event.bl_moved, event.rr_moved, event.change, event.bins_after
            ));
        }
    }
    Ok(events)
}

struct GauntletStats {
    rounds: u64,
    membership_events: u64,
    balls_moved: u64,
    fault_events: usize,
    crash_round: u64,
    checkpoint_bytes: usize,
    final_live_bins: usize,
    final_shards: usize,
    final_pool: usize,
    total_generated: u64,
    total_served: u64,
}

/// Every ball still in the system (pool + every bin ring), by label, read
/// out of a service checkpoint: unwrap the `IBSV` envelope and restore
/// the embedded core `IBA1` payload.
fn resident_labels(service: &mut CappedService) -> Vec<u64> {
    let bytes = service.checkpoint_bytes();
    let mut dec = Decoder::new(&bytes).expect("well-formed envelope");
    dec.header("IBSV", 2).expect("envelope header");
    let core_bytes = dec.byte_seq("core checkpoint").expect("core payload");
    let sim = iba_core::checkpoint::restore(core_bytes).expect("valid core checkpoint");
    let process = sim.process();
    let mut labels: Vec<u64> = process.pool().iter().map(Ball::label).collect();
    for i in 0..process.config().bins() {
        labels.extend(process.bin(i).iter().map(|b| b.label()));
    }
    labels.sort_unstable();
    labels
}

/// Drives `service` one round and settles the arrival/serve ledger:
/// model arrivals are labeled `round`, surge and burst balls carry the
/// pre-round label, and a served ball with waiting time `w` removes one
/// ball labeled `round - w`.
fn ledger_round(
    service: &mut CappedService,
    round: u64,
    resident: &mut HashMap<u64, i64>,
    prev_generated: &mut u64,
) -> Result<(), String> {
    let report = service.run_round();
    if !report.conserves_balls() || !service.conserves_balls() {
        return Err(format!("round {round} violates conservation"));
    }
    let total_generated = service.total_generated();
    let surged = total_generated - *prev_generated - report.generated;
    *prev_generated = total_generated;
    if surged > 0 {
        *resident.entry(round - 1).or_insert(0) += surged as i64;
    }
    *resident.entry(round).or_insert(0) += report.generated as i64;
    for &wait in &report.waiting_times {
        let label = round - wait;
        let count = resident
            .get_mut(&label)
            .ok_or_else(|| format!("round {round}: served unknown ball labeled {label}"))?;
        *count -= 1;
        if *count < 0 {
            return Err(format!("round {round}: ball labeled {label} duplicated"));
        }
        if *count == 0 {
            resident.remove(&label);
        }
    }
    Ok(())
}

/// The gauntlet: membership churn + simulator faults + a crash-restart
/// halfway, with per-ball conservation checked throughout and by final
/// identity diff.
fn run_gauntlet(tuning: &Tuning) -> Result<GauntletStats, String> {
    let capped = CappedConfig::new(tuning.n, 2, 0.75).map_err(|e| e.to_string())?;
    let rounds = tuning.rounds;
    let crash_round = rounds / 2;
    // Membership and fault schedules straddle the crash so the checkpoint
    // both lands mid-resize and has future events to re-schedule.
    let membership: Vec<(u64, MembershipEvent)> = vec![
        (rounds / 16, MembershipEvent::AddBins { count: 16 }),
        (rounds / 8, MembershipEvent::SplitShard { shard: 3 }),
        (rounds / 4, MembershipEvent::RemoveBins { count: 24 }),
        (rounds * 3 / 8, MembershipEvent::MergeShards { left: 0 }),
        (crash_round + 5, MembershipEvent::AddBins { count: 12 }),
        (rounds * 5 / 8, MembershipEvent::RemoveBins { count: 20 }),
        (rounds * 3 / 4, MembershipEvent::AddBins { count: 8 }),
    ];
    let faults: Vec<(u64, FaultEvent)> = vec![
        (
            rounds / 10,
            FaultEvent::CrashBins {
                bins: vec![0, 1, 2],
            },
        ),
        (rounds / 5, FaultEvent::PoolSurge { extra: 400 }),
        (
            rounds / 4 + 2,
            FaultEvent::DegradeCapacity {
                bins: (0..8).collect(),
                capacity: Some(1),
            },
        ),
        (
            rounds * 2 / 5,
            FaultEvent::RecoverBins {
                bins: vec![0, 1, 2],
            },
        ),
        (
            crash_round + 10,
            FaultEvent::ArrivalBurst {
                extra_per_round: 30,
                rounds: 5,
            },
        ),
    ];
    let schedule = |service: &mut CappedService, after: u64| -> Result<(), String> {
        let mut mplan = MembershipPlan::new();
        for (round, event) in membership.iter().filter(|(r, _)| *r > after) {
            mplan.insert(*round, event.clone());
        }
        service
            .schedule_membership(mplan)
            .map_err(|e| format!("membership rejected: {e}"))?;
        let mut fplan = FaultPlan::new();
        for (round, event) in faults.iter().filter(|(r, _)| *r > after) {
            fplan = fplan.with(*round, event.clone());
        }
        service.schedule(fplan);
        Ok(())
    };

    let mut service = CappedService::spawn(
        ServiceConfig::new(capped.clone(), 4, SEED)
            .with_rng_mode(RngMode::PerShard)
            .with_model_arrivals(true),
    )
    .map_err(|e| e.to_string())?;
    schedule(&mut service, 0)?;

    let mut resident: HashMap<u64, i64> = HashMap::new();
    let mut prev_generated = 0u64;
    for round in 1..=crash_round {
        ledger_round(&mut service, round, &mut resident, &mut prev_generated)?;
    }

    // The crash: checkpoint, tear the service down, resume from the bytes
    // with the checkpoint's shard count (splits may have changed it), and
    // re-schedule the still-future membership and fault events — plans
    // are deliberately not checkpointed, matching fault-plan semantics.
    let bytes = service.checkpoint_bytes();
    let saved_shards = service.shards();
    service.shutdown();
    let mut resumed = CappedService::resume(
        ServiceConfig::new(capped, saved_shards, SEED)
            .with_rng_mode(RngMode::PerShard)
            .with_model_arrivals(true),
        &bytes,
    )
    .map_err(|e| format!("mid-resize resume failed: {e}"))?;
    if resumed.round() != crash_round {
        return Err(format!(
            "resumed at round {}, expected {crash_round}",
            resumed.round()
        ));
    }
    schedule(&mut resumed, crash_round)?;
    for round in crash_round + 1..=rounds {
        ledger_round(&mut resumed, round, &mut resident, &mut prev_generated)?;
    }

    // Per-ball identity: what the final checkpoint says is resident must
    // be exactly what the arrival/serve ledger says survived the run.
    let mut expected: Vec<u64> = resident
        .iter()
        .flat_map(|(&label, &count)| {
            std::iter::repeat_n(label, usize::try_from(count).expect("non-negative"))
        })
        .collect();
    expected.sort_unstable();
    let actual = resident_labels(&mut resumed);
    if actual != expected {
        return Err(format!(
            "ball identities diverged: {} resident, ledger says {}",
            actual.len(),
            expected.len()
        ));
    }
    if resumed.membership_events() < membership.len() as u64 {
        return Err(format!(
            "only {}/{} membership events fired",
            resumed.membership_events(),
            membership.len()
        ));
    }
    if resumed.balls_moved() == 0 {
        return Err("no balls moved: drains and merges never happened".into());
    }
    Ok(GauntletStats {
        rounds,
        membership_events: resumed.membership_events(),
        balls_moved: resumed.balls_moved(),
        fault_events: faults.len(),
        crash_round,
        checkpoint_bytes: bytes.len(),
        final_live_bins: resumed.live_bins(),
        final_shards: resumed.shards(),
        final_pool: resumed.pool_size(),
        total_generated: resumed.total_generated(),
        total_served: resumed.total_served(),
    })
}

/// No-churn differential: scheduled-but-unfired membership must leave a
/// Central-mode service bit-identical to the bare process.
fn run_differential(tuning: &Tuning) -> Result<u64, String> {
    let capped = CappedConfig::new(tuning.n, 2, 0.75).map_err(|e| e.to_string())?;
    let mut reference = CappedProcess::new(capped.clone());
    let mut rng = SimRng::seed_from(SEED);
    let mut service = CappedService::spawn(
        ServiceConfig::new(capped, 4, SEED)
            .with_rng_mode(RngMode::Central)
            .with_model_arrivals(true),
    )
    .map_err(|e| e.to_string())?;
    service
        .schedule_membership(
            MembershipPlan::new().with(1_000_000_000, MembershipEvent::AddBins { count: 8 }),
        )
        .map_err(|e| format!("membership rejected: {e}"))?;
    for round in 1..=tuning.diff_rounds {
        if service.run_round() != reference.step(&mut rng) {
            return Err(format!("differential diverged at round {round}"));
        }
    }
    if service.membership_events() != 0 || service.balls_moved() != 0 {
        return Err("the beyond-horizon event fired".into());
    }
    Ok(tuning.diff_rounds)
}

fn render_json(
    tuning: &Tuning,
    events: &[RouterEvent],
    gauntlet: &GauntletStats,
    diff_rounds: u64,
) -> String {
    let rr_total: usize = events.iter().map(|e| e.rr_moved).sum();
    let bl_total: usize = events.iter().map(|e| e.bl_moved).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"membership\",\n");
    out.push_str(
        "  \"description\": \"Elastic membership measured three ways: (1) router head-to-head — \
         round-robin resharding vs consistent hashing with bounded loads replay the same \
         membership history over the same key population, scored on keys moved per change \
         (asserted strictly better for bounded-load on every event); (2) a churn + fault + \
         crash gauntlet — a live sharded service rides add/remove/split/merge events, bin \
         crashes, capacity degradation, a pool surge, arrival bursts, and a mid-resize \
         crash-restart from checkpoint bytes, with every ball tracked by identity and zero \
         loss or duplication; (3) a no-churn differential — membership scheduled beyond the \
         horizon leaves a Central-mode service bit-identical to the bare CappedProcess.\",\n",
    );
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p iba-bench --bin membership_baseline -- \
         --out BENCH_membership.json\",\n",
    );
    let _ = writeln!(out, "  \"seed\": {SEED},");
    out.push_str("  \"router\": {\n");
    let _ = writeln!(out, "    \"keys\": {},", tuning.keys);
    let _ = writeln!(out, "    \"initial_bins\": {},", tuning.router_bins);
    let _ = writeln!(out, "    \"vnodes_per_bin\": {VNODES_PER_BIN},");
    let _ = writeln!(out, "    \"epsilon\": {EPSILON},");
    out.push_str("    \"events\": [\n");
    for (i, event) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      {{ \"change\": \"{:+}\", \"bins_after\": {}, \"round_robin_moved\": {}, \
             \"bounded_load_moved\": {}, \"moved_ratio\": {:.4} }}{comma}",
            event.change,
            event.bins_after,
            event.rr_moved,
            event.bl_moved,
            event.bl_moved as f64 / event.rr_moved.max(1) as f64
        );
    }
    out.push_str("    ],\n");
    let _ = writeln!(out, "    \"round_robin_total_moved\": {rr_total},");
    let _ = writeln!(out, "    \"bounded_load_total_moved\": {bl_total},");
    let _ = writeln!(
        out,
        "    \"bounded_load_wins_every_event\": true,\n    \"total_moved_ratio\": {:.4}",
        bl_total as f64 / rr_total.max(1) as f64
    );
    out.push_str("  },\n");
    out.push_str("  \"gauntlet\": {\n");
    let _ = writeln!(
        out,
        "    \"n\": {}, \"c\": 2, \"lambda\": 0.75, \"shards\": 4, \"rng_mode\": \"pershard\",",
        tuning.n
    );
    let _ = writeln!(out, "    \"rounds\": {},", gauntlet.rounds);
    let _ = writeln!(
        out,
        "    \"membership_events\": {},",
        gauntlet.membership_events
    );
    let _ = writeln!(out, "    \"fault_events\": {},", gauntlet.fault_events);
    let _ = writeln!(out, "    \"balls_moved\": {},", gauntlet.balls_moved);
    let _ = writeln!(out, "    \"crash_round\": {},", gauntlet.crash_round);
    let _ = writeln!(
        out,
        "    \"checkpoint_bytes\": {},",
        gauntlet.checkpoint_bytes
    );
    let _ = writeln!(
        out,
        "    \"final_live_bins\": {}, \"final_shards\": {}, \"final_pool\": {},",
        gauntlet.final_live_bins, gauntlet.final_shards, gauntlet.final_pool
    );
    let _ = writeln!(
        out,
        "    \"total_generated\": {}, \"total_served\": {},",
        gauntlet.total_generated, gauntlet.total_served
    );
    out.push_str("    \"lost_balls\": 0,\n");
    out.push_str("    \"ball_identities_verified\": true\n");
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"differential\": {{ \"rng_mode\": \"central\", \"rounds\": {diff_rounds}, \
         \"bit_identical\": true }}"
    );
    out.push_str("}\n");
    out
}

fn run(opts: &Options, started: Instant) -> Result<(), String> {
    let tuning = if opts.ci { &CI } else { &FULL };

    eprintln!("--- router head-to-head ---");
    let events = run_routers(tuning)?;
    for event in &events {
        eprintln!(
            "change {:+4} -> {:3} bins: round-robin moved {:6}, bounded-load moved {:6} ({:.1}%)",
            event.change,
            event.bins_after,
            event.rr_moved,
            event.bl_moved,
            event.bl_moved as f64 / event.rr_moved.max(1) as f64 * 100.0
        );
    }

    eprintln!("--- churn + crash gauntlet ---");
    let gauntlet = run_gauntlet(tuning)?;
    eprintln!(
        "{} rounds, {} membership events, {} balls moved, crash at round {} \
         ({} checkpoint bytes), {} bins / {} shards at exit, zero lost balls",
        gauntlet.rounds,
        gauntlet.membership_events,
        gauntlet.balls_moved,
        gauntlet.crash_round,
        gauntlet.checkpoint_bytes,
        gauntlet.final_live_bins,
        gauntlet.final_shards
    );

    eprintln!("--- no-churn differential ---");
    let diff_rounds = run_differential(tuning)?;
    eprintln!("bit-identical to CappedProcess over {diff_rounds} rounds");

    let json = render_json(tuning, &events, &gauntlet, diff_rounds);
    let json = match opts.out.as_deref() {
        Some(path) => iba_bench::prov::finalize(
            "membership",
            &json,
            std::path::Path::new(path),
            opts.registry.as_deref().map(std::path::Path::new),
            opts.force,
            None,
            started.elapsed().as_secs_f64() * 1e3,
        )?,
        None => json,
    };
    println!("{json}");
    Ok(())
}

struct Options {
    ci: bool,
    out: Option<String>,
    registry: Option<String>,
    force: bool,
}

fn main() -> ExitCode {
    let started = Instant::now();
    let mut opts = Options {
        ci: false,
        out: None,
        registry: None,
        force: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ci" => opts.ci = true,
            "--force" => opts.force = true,
            "--out" => match args.next() {
                Some(path) => opts.out = Some(path),
                None => {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                }
            },
            "--registry" => match args.next() {
                Some(path) => opts.registry = Some(path),
                None => {
                    eprintln!("--registry requires a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: membership_baseline [--ci] [--out BENCH_membership.json] \
                     [--registry PATH] [--force]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.out.is_none() && !opts.ci {
        opts.out = Some(String::from("BENCH_membership.json"));
    }
    match run(&opts, started) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("membership_baseline: {err}");
            ExitCode::FAILURE
        }
    }
}
