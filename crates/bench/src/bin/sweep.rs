//! Custom parameter sweep: measure CAPPED(c, λ) for an arbitrary grid of
//! capacities and rates, printing measured values next to the mean-field
//! prediction, the Section-V envelope and the Theorem-2 bound.
//!
//! ```text
//! cargo run -p iba-bench --release --bin sweep -- \
//!     --n 8192 --c 1,2,3,4 --lambda 0.75,0.9375 --window 600 --seeds 3
//! ```
//!
//! Long grids can be checkpointed: with `--checkpoint PATH` the sweep
//! crash-safely autosaves its progress after every completed grid cell
//! (atomic temp + fsync + rename, one-deep `.prev` rotation), and
//! `--resume` skips cells already in the file. Because every cell is a
//! pure function of `(n, c, λ, window, seeds, master seed)`, a killed and
//! resumed sweep prints a table identical to an uninterrupted run; a
//! corrupted checkpoint falls back to the previous rotation.
//!
//! `--jsonl PATH` additionally writes the result table as JSON lines (one
//! schema-stamped object per grid cell, via [`Table::to_jsonl`]).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use iba_analysis::{bounds, fits, meanfield, verify};
use iba_bench::measure::{measure_capped, MeasureConfig};
use iba_core::checkpoint;
use iba_core::config::CappedConfig;
use iba_sim::codec::{CodecError, Decoder, Encoder};
use iba_sim::output::Table;

#[derive(Debug)]
struct Args {
    n: usize,
    capacities: Vec<u32>,
    lambdas: Vec<f64>,
    window: u64,
    seeds: usize,
    master_seed: u64,
    checkpoint: Option<PathBuf>,
    resume: bool,
    jsonl: Option<PathBuf>,
    registry: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        n: 1 << 13,
        capacities: vec![1, 2, 3],
        lambdas: vec![0.75],
        window: 600,
        seeds: 3,
        master_seed: 0x5eed,
        checkpoint: None,
        resume: false,
        jsonl: None,
        registry: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--n" => {
                out.n = value(&mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --n: {e}"))?
            }
            "--c" => {
                out.capacities = value(&mut iter)?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("bad --c entry: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--lambda" => {
                out.lambdas = value(&mut iter)?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("bad --lambda entry: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--window" => {
                out.window = value(&mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
            }
            "--seeds" => {
                out.seeds = value(&mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?;
            }
            "--seed" => {
                out.master_seed = value(&mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--checkpoint" => out.checkpoint = Some(PathBuf::from(value(&mut iter)?)),
            "--resume" => out.resume = true,
            "--jsonl" => out.jsonl = Some(PathBuf::from(value(&mut iter)?)),
            "--registry" => out.registry = Some(PathBuf::from(value(&mut iter)?)),
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: sweep [--n N] [--c 1,2,3] [--lambda 0.75,0.9] \
                     [--window W] [--seeds S] [--seed SEED] [--checkpoint PATH] [--resume] \
                     [--jsonl PATH] [--registry PATH]"
                ))
            }
        }
    }
    if out.resume && out.checkpoint.is_none() {
        out.checkpoint = Some(PathBuf::from("sweep.ckpt"));
    }
    Ok(out)
}

/// The measured (non-recomputable) outputs of one grid cell. Everything
/// else in the table row is a pure function of `(n, c, λ)` and is
/// recomputed on resume.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellResult {
    lambda: f64,
    c: u32,
    pool_per_bin: f64,
    wait_mean: f64,
    wait_max: f64,
}

/// Sweep progress file: the grid's identity plus completed cells.
#[derive(Debug, Clone, PartialEq)]
struct SweepProgress {
    n: u64,
    window: u64,
    seeds: u64,
    master_seed: u64,
    cells: Vec<CellResult>,
}

const PROGRESS_TAG: &str = "IBAS";
const PROGRESS_VERSION: u32 = 1;

impl SweepProgress {
    fn for_args(args: &Args) -> Self {
        SweepProgress {
            n: args.n as u64,
            window: args.window,
            seeds: args.seeds as u64,
            master_seed: args.master_seed,
            cells: Vec::new(),
        }
    }

    /// Whether this progress file belongs to the same sweep (identical
    /// cell results require identical measurement parameters).
    fn matches(&self, args: &Args) -> bool {
        self.n == args.n as u64
            && self.window == args.window
            && self.seeds == args.seeds as u64
            && self.master_seed == args.master_seed
    }

    fn find(&self, lambda: f64, c: u32) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|cell| cell.c == c && cell.lambda.to_bits() == lambda.to_bits())
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.header(PROGRESS_TAG, PROGRESS_VERSION);
        enc.u64(self.n);
        enc.u64(self.window);
        enc.u64(self.seeds);
        enc.u64(self.master_seed);
        enc.usize(self.cells.len());
        for cell in &self.cells {
            enc.f64(cell.lambda);
            enc.u32(cell.c);
            enc.f64(cell.pool_per_bin);
            enc.f64(cell.wait_mean);
            enc.f64(cell.wait_max);
        }
        enc.finish()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes)?;
        dec.header(PROGRESS_TAG, PROGRESS_VERSION)?;
        let n = dec.u64("sweep n")?;
        let window = dec.u64("sweep window")?;
        let seeds = dec.u64("sweep seeds")?;
        let master_seed = dec.u64("sweep master seed")?;
        let count = dec.usize("cell count")?;
        let mut cells = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            cells.push(CellResult {
                lambda: dec.f64("cell lambda")?,
                c: dec.u32("cell c")?,
                pool_per_bin: dec.f64("cell pool")?,
                wait_mean: dec.f64("cell wait mean")?,
                wait_max: dec.f64("cell wait max")?,
            });
        }
        if !dec.is_exhausted() {
            return Err(CodecError::Invalid {
                what: "trailing bytes",
            });
        }
        Ok(SweepProgress {
            n,
            window,
            seeds,
            master_seed,
            cells,
        })
    }
}

fn prev_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(ToOwned::to_owned).unwrap_or_default();
    name.push(".prev");
    path.with_file_name(name)
}

/// Loads the newest usable progress file: `path` first, `.prev` on
/// corruption or absence.
fn load_progress(path: &Path) -> Option<SweepProgress> {
    for candidate in [path.to_path_buf(), prev_path(path)] {
        match std::fs::read(&candidate) {
            Ok(bytes) => match SweepProgress::from_bytes(&bytes) {
                Ok(progress) => {
                    if candidate != path {
                        eprintln!(
                            "checkpoint {} was unreadable; resumed from rotation {}",
                            path.display(),
                            candidate.display()
                        );
                    }
                    return Some(progress);
                }
                Err(e) => eprintln!("checkpoint {} is unusable: {e}", candidate.display()),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => eprintln!("checkpoint {} is unreadable: {e}", candidate.display()),
        }
    }
    None
}

/// Rotates the current file to `.prev` and writes the new progress
/// crash-safely.
fn save_progress(path: &Path, progress: &SweepProgress) -> Result<(), String> {
    if path.exists() {
        std::fs::rename(path, prev_path(path))
            .map_err(|e| format!("rotating {}: {e}", path.display()))?;
    }
    checkpoint::write_bytes_atomic(path, &progress.to_bytes())
        .map_err(|e| format!("saving {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let started = std::time::Instant::now();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut progress = SweepProgress::for_args(&args);
    if args.resume {
        let path = args.checkpoint.as_deref().expect("resume implies a path");
        match load_progress(path) {
            Some(loaded) if loaded.matches(&args) => {
                eprintln!(
                    "resuming from {}: {} cell(s) already complete",
                    path.display(),
                    loaded.cells.len()
                );
                progress = loaded;
            }
            Some(_) => {
                eprintln!(
                    "checkpoint {} belongs to a different sweep (n/window/seeds/seed mismatch); \
                     starting fresh",
                    path.display()
                );
            }
            None => eprintln!("no usable checkpoint at {}; starting fresh", path.display()),
        }
    }

    let mut table = Table::new(
        &format!("sweep over n = {}", args.n),
        &[
            "lambda",
            "c",
            "pool/n",
            "mf pool/n",
            "avg wait",
            "mf wait",
            "max wait",
            "wait envelope",
            "thm2 bound",
            "bound ok",
        ],
    );
    for &lambda in &args.lambdas {
        for &c in &args.capacities {
            let config = match CappedConfig::new(args.n, c, lambda) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("skipping c={c}, lambda={lambda}: {e}");
                    continue;
                }
            };
            // Each cell is a pure function of the parameters and the
            // (c-decorrelated) master seed, so a cell loaded from the
            // checkpoint equals the cell an uninterrupted run computes.
            let cell = match progress.find(lambda, c) {
                Some(cell) => *cell,
                None => {
                    let measure = MeasureConfig::for_lambda(lambda, args.window, args.seeds)
                        .with_master_seed(args.master_seed ^ u64::from(c));
                    let est = measure_capped(&config, &measure);
                    let cell = CellResult {
                        lambda,
                        c,
                        pool_per_bin: est.normalized_pool_mean(),
                        wait_mean: est.wait_mean.mean(),
                        wait_max: est.wait_max.mean(),
                    };
                    progress.cells.push(cell);
                    if let Some(path) = &args.checkpoint {
                        if let Err(msg) = save_progress(path, &progress) {
                            eprintln!("warning: {msg}");
                        }
                    }
                    cell
                }
            };
            let mf = meanfield::solve(c, lambda);
            let check = verify::waiting_check(args.n, c, lambda, cell.wait_max);
            table.row(vec![
                format!("{lambda:.6}").into(),
                u64::from(c).into(),
                cell.pool_per_bin.into(),
                mf.pool_per_bin.into(),
                cell.wait_mean.into(),
                mf.mean_wait.unwrap_or(0.0).into(),
                cell.wait_max.into(),
                fits::waiting_time_fit(args.n, c, lambda).into(),
                bounds::theorem2_waiting_bound(args.n, c, lambda).into(),
                if check.within_bound() { "yes" } else { "NO" }.into(),
            ]);
        }
    }
    println!("{}", table.render());
    if let Some(path) = &args.jsonl {
        let mut body = table.to_jsonl();
        if !body.is_empty() {
            body.push('\n');
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} JSONL row(s) to {}", table.len(), path.display());
    }
    if let Some(path) = &args.registry {
        let pairs = iba_exp::bench_data::sweep_config_pairs(
            args.n as u64,
            &args.capacities,
            &args.lambdas,
            args.window,
            args.seeds as u64,
            args.master_seed,
        );
        if let Err(e) = iba_bench::prov::append_sweep_registry(
            path,
            &pairs,
            args.master_seed,
            &table.to_jsonl(),
            started.elapsed().as_secs_f64() * 1e3,
        ) {
            eprintln!("registry {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
