//! Custom parameter sweep: measure CAPPED(c, λ) for an arbitrary grid of
//! capacities and rates, printing measured values next to the mean-field
//! prediction, the Section-V envelope and the Theorem-2 bound.
//!
//! ```text
//! cargo run -p iba-bench --release --bin sweep -- \
//!     --n 8192 --c 1,2,3,4 --lambda 0.75,0.9375 --window 600 --seeds 3
//! ```

use std::process::ExitCode;

use iba_analysis::{bounds, fits, meanfield, verify};
use iba_bench::measure::{measure_capped, MeasureConfig};
use iba_core::config::CappedConfig;
use iba_sim::output::Table;

#[derive(Debug)]
struct Args {
    n: usize,
    capacities: Vec<u32>,
    lambdas: Vec<f64>,
    window: u64,
    seeds: usize,
    master_seed: u64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        n: 1 << 13,
        capacities: vec![1, 2, 3],
        lambdas: vec![0.75],
        window: 600,
        seeds: 3,
        master_seed: 0x5eed,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--n" => out.n = value(&mut iter)?.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--c" => {
                out.capacities = value(&mut iter)?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("bad --c entry: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--lambda" => {
                out.lambdas = value(&mut iter)?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("bad --lambda entry: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--window" => {
                out.window = value(&mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
            }
            "--seeds" => {
                out.seeds = value(&mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?;
            }
            "--seed" => {
                out.master_seed = value(&mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: sweep [--n N] [--c 1,2,3] [--lambda 0.75,0.9] [--window W] [--seeds S] [--seed SEED]"
                ))
            }
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut table = Table::new(
        &format!("sweep over n = {}", args.n),
        &[
            "lambda",
            "c",
            "pool/n",
            "mf pool/n",
            "avg wait",
            "mf wait",
            "max wait",
            "wait envelope",
            "thm2 bound",
            "bound ok",
        ],
    );
    for &lambda in &args.lambdas {
        for &c in &args.capacities {
            let config = match CappedConfig::new(args.n, c, lambda) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("skipping c={c}, lambda={lambda}: {e}");
                    continue;
                }
            };
            let measure = MeasureConfig::for_lambda(lambda, args.window, args.seeds)
                .with_master_seed(args.master_seed ^ u64::from(c));
            let est = measure_capped(&config, &measure);
            let mf = meanfield::solve(c, lambda);
            let check = verify::waiting_check(args.n, c, lambda, est.wait_max.mean());
            table.row(vec![
                format!("{lambda:.6}").into(),
                u64::from(c).into(),
                est.normalized_pool_mean().into(),
                mf.pool_per_bin.into(),
                est.wait_mean.mean().into(),
                mf.mean_wait.unwrap_or(0.0).into(),
                est.wait_max.mean().into(),
                fits::waiting_time_fit(args.n, c, lambda).into(),
                bounds::theorem2_waiting_bound(args.n, c, lambda).into(),
                if check.within_bound() { "yes" } else { "NO" }.into(),
            ]);
        }
    }
    println!("{}", table.render());
    ExitCode::SUCCESS
}
