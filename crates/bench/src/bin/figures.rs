//! The figure-regeneration binary: one subcommand per experiment in
//! DESIGN.md's per-experiment index.
//!
//! ```text
//! cargo run -p iba-bench --release --bin figures -- fig4-left --scale quick
//! cargo run -p iba-bench --release --bin figures -- all --scale paper --out results/
//! ```

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use iba_bench::cli::{self, Cli};
use iba_bench::figures::ExperimentOutput;
use iba_bench::{ablations, compare, figures};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cli::parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let started = Instant::now();
    let outputs = run(&cli);
    for (name, output) in &outputs {
        println!("{}", output.render_with_charts());
        if let Some(dir) = &cli.out_dir {
            if let Err(e) = write_csv(dir, name, output) {
                eprintln!("failed to write {name}.csv: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "completed {} experiment(s) at scale {} in {:.1}s",
        outputs.len(),
        cli.scale,
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn run(cli: &Cli) -> Vec<(String, ExperimentOutput)> {
    let s = cli.scale;
    let single = |out: ExperimentOutput| vec![(cli.command.clone(), out)];
    match cli.command.as_str() {
        "fig4-left" => single(figures::fig4_left(s)),
        "fig4-right" => single(figures::fig4_right(s)),
        "fig5-left" => single(figures::fig5_left(s)),
        "fig5-right" => single(figures::fig5_right(s)),
        "sweet-spot" => single(figures::sweet_spot(s)),
        "compare" => single(compare::compare_head_to_head(s)),
        "compare-growth" => single(compare::compare_growth(s).0),
        "dominance" => single(ablations::dominance(s)),
        "ablation-choices" => single(ablations::choice_ablation(s)),
        "ablation-arrivals" => single(ablations::arrival_ablation(s)),
        "stabilization" => single(ablations::stabilization(s)),
        "lemma-phases" => single(ablations::lemma_phases(s)),
        "chaos" => single(ablations::chaos(s)),
        "adler-region" => single(compare::adler_region(s)),
        "wait-tail" => single(ablations::wait_tail(s)),
        "load-dist" => single(ablations::load_distribution(s)),
        "hetero" => single(ablations::hetero(s)),
        "async" => single(ablations::async_comparison(s)),
        "mstar" => single(ablations::mstar_sensitivity(s)),
        "n-invariance" => single(figures::n_invariance(s)),
        "batch-pileup" => single(compare::batch_pileup(s)),
        "policy" => single(ablations::policy_ablation(s)),
        "all" => vec![
            ("fig4-left".into(), figures::fig4_left(s)),
            ("fig4-right".into(), figures::fig4_right(s)),
            ("fig5-left".into(), figures::fig5_left(s)),
            ("fig5-right".into(), figures::fig5_right(s)),
            ("sweet-spot".into(), figures::sweet_spot(s)),
            ("compare".into(), compare::compare_head_to_head(s)),
            ("compare-growth".into(), compare::compare_growth(s).0),
            ("dominance".into(), ablations::dominance(s)),
            ("ablation-choices".into(), ablations::choice_ablation(s)),
            ("ablation-arrivals".into(), ablations::arrival_ablation(s)),
            ("stabilization".into(), ablations::stabilization(s)),
            ("lemma-phases".into(), ablations::lemma_phases(s)),
            ("chaos".into(), ablations::chaos(s)),
            ("adler-region".into(), compare::adler_region(s)),
            ("wait-tail".into(), ablations::wait_tail(s)),
            ("load-dist".into(), ablations::load_distribution(s)),
            ("hetero".into(), ablations::hetero(s)),
            ("async".into(), ablations::async_comparison(s)),
            ("mstar".into(), ablations::mstar_sensitivity(s)),
            ("n-invariance".into(), figures::n_invariance(s)),
            ("batch-pileup".into(), compare::batch_pileup(s)),
            ("policy".into(), ablations::policy_ablation(s)),
        ],
        other => unreachable!("cli::parse validated the command '{other}'"),
    }
}

fn write_csv(dir: &str, name: &str, output: &ExperimentOutput) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = Path::new(dir).join(format!("{name}.csv"));
    fs::write(path, output.table.to_csv())
}
