//! Regenerates `BENCH_obs_overhead.json` — the repo's committed
//! measurement of what the telemetry layer costs inside the arena round
//! kernel.
//!
//! The tool runs two identically seeded arena-kernel processes in
//! **lockstep segments**: one stepped with telemetry disabled (every
//! probe is a single relaxed load), one with telemetry enabled (counters,
//! phase timers, flight recorder). The global flag is flipped around each
//! segment, rounds are timed individually, and the per-segment
//! [`RoundReport`]s are asserted bit-identical — the measurement doubles
//! as a live check that probes do not perturb the trajectory. It reports
//! the median ns/round for both modes and the on-cost as a percentage.
//!
//! ```text
//! cargo run --release -p iba-bench --bin obs_overhead_baseline -- \
//!     [--quick] [--out BENCH_obs_overhead.json]
//! ```
//!
//! The default cell is the acceptance cell of the telemetry PR — n = 10⁶,
//! c = 4, λ = 0.95; `--quick` shrinks n to 20 000 for a seconds-long
//! smoke run (do **not** commit quick output as the baseline).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use iba_core::process::KernelMode;
use iba_core::{CappedConfig, CappedProcess};
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::rng::SimRng;

/// Rounds run before measurement starts (on top of the warm-started
/// pool), so timed rounds sit in the stationary regime.
const WARMUP_ROUNDS: u64 = 48;
/// Alternating off/on measurement segments per cell.
const SEGMENTS: usize = 8;
/// Timed rounds per mode per segment; each segment also runs one untimed
/// round first to re-warm the caches after the other mode's segment.
const ROUNDS_PER_SEGMENT: usize = 4;
/// Individually timed rounds per mode per cell.
const MEASURED_ROUNDS: usize = SEGMENTS * ROUNDS_PER_SEGMENT;
const SEED: u64 = 20210705; // ICDCS'21 presentation date, arbitrary but fixed

struct ModeStats {
    median_ns_per_round: u128,
    min_ns_per_round: u128,
    rounds_per_sec: f64,
}

/// Folds one mode's per-round samples into its summary stats.
fn summarize(mut samples: Vec<Duration>) -> ModeStats {
    samples.sort_unstable();
    let median = samples[samples.len() / 2].as_nanos();
    ModeStats {
        median_ns_per_round: median,
        min_ns_per_round: samples[0].as_nanos(),
        rounds_per_sec: 1e9 / median as f64,
    }
}

struct Measurement {
    n: usize,
    c: u32,
    lambda: f64,
    thrown_per_round: u64,
    off: ModeStats,
    on: ModeStats,
}

impl Measurement {
    /// On-cost of telemetry relative to the disabled median, in percent.
    /// Negative values are measurement noise: the on-path was not slower
    /// than the noise floor.
    fn overhead_percent(&self) -> f64 {
        (self.on.median_ns_per_round as f64 - self.off.median_ns_per_round as f64)
            / self.off.median_ns_per_round as f64
            * 100.0
    }
}

/// Runs the off-mode and on-mode processes in lockstep segments on the
/// same seed, toggling the global telemetry flag around each side, and
/// asserts the trajectories stay bit-identical throughout.
fn measure_cell(n: usize, c: u32, lambda: f64) -> Measurement {
    eprintln!("measuring n={n} c={c} lambda={lambda} ...");
    let config = CappedConfig::new(n, c, lambda).expect("valid cell");
    let mut off_p = CappedProcess::with_kernel(config.clone(), KernelMode::Arena);
    let mut on_p = CappedProcess::with_kernel(config, KernelMode::Arena);
    off_p.warm_start();
    on_p.warm_start();
    let mut off_rng = SimRng::seed_from(SEED);
    let mut on_rng = SimRng::seed_from(SEED);
    let mut off_report = RoundReport::default();
    let mut on_report = RoundReport::default();
    iba_obs::set_enabled(false);
    for _ in 0..WARMUP_ROUNDS {
        off_p.step_into(&mut off_rng, &mut off_report);
        on_p.step_into(&mut on_rng, &mut on_report);
    }
    let mut off_samples: Vec<Duration> = Vec::with_capacity(MEASURED_ROUNDS);
    let mut on_samples: Vec<Duration> = Vec::with_capacity(MEASURED_ROUNDS);
    let mut thrown_total = 0u64;
    for segment in 0..SEGMENTS {
        iba_obs::set_enabled(false);
        off_p.step_into(&mut off_rng, &mut off_report);
        for _ in 0..ROUNDS_PER_SEGMENT {
            let start = Instant::now();
            off_p.step_into(&mut off_rng, &mut off_report);
            off_samples.push(start.elapsed());
        }
        iba_obs::set_enabled(true);
        on_p.step_into(&mut on_rng, &mut on_report);
        for _ in 0..ROUNDS_PER_SEGMENT {
            let start = Instant::now();
            on_p.step_into(&mut on_rng, &mut on_report);
            on_samples.push(start.elapsed());
            thrown_total += on_report.thrown;
        }
        assert_eq!(
            on_report, off_report,
            "telemetry perturbed the trajectory in segment {segment} at n={n} c={c} lambda={lambda}"
        );
    }
    iba_obs::set_enabled(false);
    let measurement = Measurement {
        n,
        c,
        lambda,
        thrown_per_round: thrown_total / MEASURED_ROUNDS as u64,
        off: summarize(off_samples),
        on: summarize(on_samples),
    };
    eprintln!(
        "  off {:>12} ns/round   on {:>12} ns/round   overhead {:+.2}%",
        measurement.off.median_ns_per_round,
        measurement.on.median_ns_per_round,
        measurement.overhead_percent()
    );
    measurement
}

fn render_json(cells: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"obs_overhead\",\n");
    out.push_str(
        "  \"description\": \"Cost of the iba-obs telemetry layer inside the arena round \
         kernel: the same warmed CAPPED(c, lambda) process stepped with the registry disabled \
         (every probe a single relaxed load) vs enabled (allocation counters, phase timers, \
         flight recorder). Same seed, bit-identical trajectories asserted every segment, \
         alternating off/on measurement segments; median over timed rounds in the stationary \
         regime.\",\n",
    );
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p iba-bench --bin obs_overhead_baseline -- \
         --out BENCH_obs_overhead.json\",\n",
    );
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"warmup_rounds\": {WARMUP_ROUNDS},");
    let _ = writeln!(out, "  \"measured_rounds\": {MEASURED_ROUNDS},");
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"n\": {}, \"c\": {}, \"lambda\": {}, \"thrown_per_round\": {},",
            cell.n, cell.c, cell.lambda, cell.thrown_per_round
        );
        for (name, stats) in [("telemetry_off", &cell.off), ("telemetry_on", &cell.on)] {
            let _ = writeln!(
                out,
                "      \"{name}\": {{ \"median_ns_per_round\": {}, \"min_ns_per_round\": {}, \
                 \"rounds_per_sec\": {:.3} }},",
                stats.median_ns_per_round, stats.min_ns_per_round, stats.rounds_per_sec
            );
        }
        let _ = writeln!(
            out,
            "      \"overhead_percent\": {:.3}",
            cell.overhead_percent()
        );
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let started = Instant::now();
    let mut quick = false;
    let mut out_path = String::from("BENCH_obs_overhead.json");
    let mut registry: Option<String> = None;
    let mut force = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--force" => force = true,
            "--registry" => match args.next() {
                Some(path) => registry = Some(path),
                None => {
                    eprintln!("--registry requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: obs_overhead_baseline [--quick] [--out BENCH_obs_overhead.json] \
                     [--registry PATH] [--force]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let n = if quick { 20_000 } else { 1_000_000 };
    let cells = vec![measure_cell(n, 4, 0.95)];

    let json = render_json(&cells);
    let json = match iba_bench::prov::finalize(
        "obs_overhead",
        &json,
        std::path::Path::new(&out_path),
        registry.as_deref().map(std::path::Path::new),
        force,
        Some(("arena", 1)),
        started.elapsed().as_secs_f64() * 1e3,
    ) {
        Ok(stamped) => stamped,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    println!("{json}");
    for cell in &cells {
        let overhead = cell.overhead_percent();
        if overhead > 5.0 {
            eprintln!(
                "WARNING: telemetry overhead {overhead:.2}% exceeds the 5% bar at n={} c={}",
                cell.n, cell.c
            );
        }
    }
    ExitCode::SUCCESS
}
