//! Generates a complete Markdown results report — every experiment's
//! table in GitHub-Markdown form, with notes — suitable for pasting into
//! EXPERIMENTS.md or a paper-reproduction writeup.
//!
//! ```text
//! cargo run -p iba-bench --release --bin report -- [--scale quick] [--out report.md]
//! ```

use std::fs;
use std::process::ExitCode;
use std::str::FromStr;
use std::time::Instant;

use iba_bench::figures::ExperimentOutput;
use iba_bench::scale::Scale;
use iba_bench::{ablations, compare, figures};

fn all_experiments(scale: Scale) -> Vec<(&'static str, ExperimentOutput)> {
    vec![
        ("F4L — Figure 4 (left)", figures::fig4_left(scale)),
        ("F4R — Figure 4 (right)", figures::fig4_right(scale)),
        ("F5L — Figure 5 (left)", figures::fig5_left(scale)),
        ("F5R — Figure 5 (right)", figures::fig5_right(scale)),
        ("SWEET — sweet-spot capacity", figures::sweet_spot(scale)),
        ("CMP — head-to-head", compare::compare_head_to_head(scale)),
        ("CMP — growth laws", compare::compare_growth(scale).0),
        ("ADLER — stability region", compare::adler_region(scale)),
        ("DOM — dominance coupling", ablations::dominance(scale)),
        (
            "MSTAR — m* sensitivity",
            ablations::mstar_sensitivity(scale),
        ),
        ("LEMMA — survivor phases", ablations::lemma_phases(scale)),
        ("TAIL — waiting-time tail", ablations::wait_tail(scale)),
        (
            "LOAD — load distribution",
            ablations::load_distribution(scale),
        ),
        (
            "ABL-d — choices ablation",
            ablations::choice_ablation(scale),
        ),
        (
            "ABL-arr — arrival models",
            ablations::arrival_ablation(scale),
        ),
        ("STAB — self-stabilization", ablations::stabilization(scale)),
        ("CHAOS — fault injection", ablations::chaos(scale)),
        ("HETERO — capacity mixtures", ablations::hetero(scale)),
        (
            "ASYNC — continuous time",
            ablations::async_comparison(scale),
        ),
    ]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut out_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--scale" => match iter.next().map(|v| Scale::from_str(v)) {
                Some(Ok(s)) => scale = s,
                _ => {
                    eprintln!("--scale requires paper|quick|smoke");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match iter.next() {
                Some(v) => out_path = Some(v.clone()),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other}\nusage: report [--scale S] [--out FILE]");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let mut doc = String::new();
    doc.push_str(&format!(
        "# Reproduction report — scale `{scale}` (n = {}, window = {} rounds, {} seeds)\n\n",
        scale.bins(),
        scale.window(),
        scale.seeds()
    ));
    for (title, output) in all_experiments(scale) {
        doc.push_str(&format!("## {title}\n\n"));
        doc.push_str(&output.table.to_markdown());
        doc.push('\n');
        for note in &output.notes {
            doc.push_str(&format!("> {note}\n"));
        }
        doc.push('\n');
    }
    doc.push_str(&format!(
        "_Generated in {:.1}s by the `report` binary._\n",
        started.elapsed().as_secs_f64()
    ));

    match out_path {
        Some(path) => {
            if let Err(e) = fs::write(&path, &doc) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} in {:.1}s", started.elapsed().as_secs_f64());
        }
        None => print!("{doc}"),
    }
    ExitCode::SUCCESS
}
