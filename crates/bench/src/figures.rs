//! Regeneration of the paper's figures (experiments `F4L`, `F4R`, `F5L`,
//! `F5R`, `SWEET`).
//!
//! Every function reproduces one plot of Section V as a data table: the
//! same series the paper plots, plus the Section-V fit (the paper's dashed
//! line) and the Theorem-2 bound for context. Measurements follow the
//! paper's protocol (stationary window statistics; see
//! [`crate::measure`]).
//!
//! λ values that are invalid at the chosen scale (because `λn` would not
//! be an integer) are *reported*, not silently dropped: every experiment
//! returns an [`ExperimentOutput`] whose `notes` list exactly what was
//! skipped and why.

use iba_analysis::{fits, meanfield, sweetspot};
use iba_core::config::CappedConfig;
use iba_sim::output::Table;
use iba_sim::plot::{Chart, Series};

use crate::measure::{measure_capped, MeasureConfig, StationaryEstimate};
use crate::scale::Scale;

/// A regenerated experiment: the data table plus protocol notes
/// (skipped parameters, non-converged burn-ins, scale used) and optional
/// pre-rendered ASCII charts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// The data table (one row per plotted point).
    pub table: Table,
    /// Protocol notes: anything a reader must know to interpret the table.
    pub notes: Vec<String>,
    /// Rendered ASCII charts of the main series (may be empty).
    pub charts: Vec<String>,
}

impl ExperimentOutput {
    /// Creates an output with no charts.
    pub fn new(table: Table, notes: Vec<String>) -> Self {
        ExperimentOutput {
            table,
            notes,
            charts: Vec::new(),
        }
    }

    /// Renders the table and notes for the terminal / EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = self.table.render();
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Renders the table, notes and charts.
    pub fn render_with_charts(&self) -> String {
        let mut out = self.render();
        for chart in &self.charts {
            out.push('\n');
            out.push_str(chart);
        }
        out
    }
}

/// `λ = 1 − 2⁻ⁱ`.
pub fn lambda_pow2(i: u32) -> f64 {
    1.0 - 2.0f64.powi(-(i as i32))
}

/// Whether `λ = 1 − 2⁻ⁱ` yields an integral batch for `n` bins.
pub fn lambda_pow2_valid(i: u32, n: usize) -> bool {
    n.is_multiple_of(1usize << i.min(63))
}

fn measure_point(n: usize, c: u32, lambda: f64, scale: Scale, seed: u64) -> StationaryEstimate {
    let config = CappedConfig::new(n, c, lambda).expect("figure parameters are valid");
    let measure = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
        .with_master_seed(seed ^ 0xf16);
    measure_capped(&config, &measure)
}

fn note_scale(notes: &mut Vec<String>, scale: Scale, n: usize) {
    notes.push(format!(
        "scale = {scale} (n = {n}, window = {} rounds, {} seeds); paper uses n = 2^15, 1000 rounds",
        scale.window(),
        scale.seeds()
    ));
}

/// **Figure 4, left**: normalized pool size as a function of the capacity
/// `c ∈ [1, 5]`, for `λ = 1 − 2⁻²` and `λ = 1 − 2⁻¹⁰`. The paper's dashed
/// reference line is `ln(1/(1−λ))/c + 1`.
pub fn fig4_left(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let mut table = Table::new(
        "Figure 4 (left): normalized pool size vs capacity",
        &[
            "lambda",
            "c",
            "pool/n",
            "ci95",
            "mean-field",
            "envelope ln(1/(1-l))/c+1",
            "meas/envelope",
        ],
    );
    let mut notes = Vec::new();
    note_scale(&mut notes, scale, n);
    let mut chart = Chart::new("Figure 4 (left): pool/n vs c", 50, 14);
    for i in [2u32, 10] {
        if !lambda_pow2_valid(i, n) {
            notes.push(format!(
                "skipped lambda = 1 - 2^-{i}: not integral for n = {n}"
            ));
            continue;
        }
        let lambda = lambda_pow2(i);
        let mut points = Vec::new();
        for c in 1..=5u32 {
            let est = measure_point(n, c, lambda, scale, u64::from(i * 100 + c));
            if !est.all_converged {
                notes.push(format!("burn-in not converged at lambda=1-2^-{i}, c={c}"));
            }
            let measured = est.normalized_pool_mean();
            let fit = fits::normalized_pool_fit(c, lambda);
            points.push((f64::from(c), measured));
            table.row(vec![
                format!("1-2^-{i}").into(),
                u64::from(c).into(),
                measured.into(),
                (est.pool_mean.ci95.half_width / n as f64).into(),
                meanfield::solve(c, lambda).pool_per_bin.into(),
                fit.into(),
                (measured / fit).into(),
            ]);
        }
        chart = chart.with_series(Series::new(&format!("lambda = 1-2^-{i}"), points));
    }
    let mut out = ExperimentOutput::new(table, notes);
    out.charts.push(chart.render());
    out
}

/// **Figure 4, right**: normalized pool size as a function of
/// `λ = 1 − 2⁻ⁱ, i ∈ [1, 10]`, for capacities `c = 1` and `c = 3`.
pub fn fig4_right(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let mut table = Table::new(
        "Figure 4 (right): normalized pool size vs injection rate",
        &[
            "c",
            "i (lambda=1-2^-i)",
            "pool/n",
            "ci95",
            "mean-field",
            "envelope",
            "meas/envelope",
        ],
    );
    let mut notes = Vec::new();
    note_scale(&mut notes, scale, n);
    for c in [1u32, 3] {
        for i in 1..=10u32 {
            if !lambda_pow2_valid(i, n) {
                notes.push(format!(
                    "skipped lambda = 1 - 2^-{i}: not integral for n = {n}"
                ));
                continue;
            }
            let lambda = lambda_pow2(i);
            let est = measure_point(n, c, lambda, scale, u64::from(c * 1000 + i));
            if !est.all_converged {
                notes.push(format!("burn-in not converged at i={i}, c={c}"));
            }
            let measured = est.normalized_pool_mean();
            let fit = fits::normalized_pool_fit(c, lambda);
            table.row(vec![
                u64::from(c).into(),
                u64::from(i).into(),
                measured.into(),
                (est.pool_mean.ci95.half_width / n as f64).into(),
                meanfield::solve(c, lambda).pool_per_bin.into(),
                fit.into(),
                (measured / fit).into(),
            ]);
        }
    }
    ExperimentOutput::new(table, notes)
}

/// **Figure 5, left**: average and maximum waiting time as a function of
/// the capacity `c ∈ [1, 5]`, for `λ ∈ {1−2⁻², 1−2⁻¹⁰, 1−2⁻¹³}`. The
/// paper's dashed reference line is `ln(1/(1−λ))/c + log log n + c`.
pub fn fig5_left(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let mut table = Table::new(
        "Figure 5 (left): waiting time vs capacity",
        &[
            "lambda",
            "c",
            "avg wait",
            "p50 wait",
            "p99 wait",
            "p999 wait",
            "max wait",
            "mean-field avg",
            "envelope",
            "avg/envelope",
        ],
    );
    let mut notes = Vec::new();
    note_scale(&mut notes, scale, n);
    let mut chart = Chart::new("Figure 5 (left): avg waiting time vs c", 50, 14);
    for i in [2u32, 10, 13] {
        if !lambda_pow2_valid(i, n) {
            notes.push(format!(
                "skipped lambda = 1 - 2^-{i}: not integral for n = {n}"
            ));
            continue;
        }
        let lambda = lambda_pow2(i);
        let mut points = Vec::new();
        for c in 1..=5u32 {
            let est = measure_point(n, c, lambda, scale, u64::from(i * 100 + c + 7));
            if !est.all_converged {
                notes.push(format!("burn-in not converged at lambda=1-2^-{i}, c={c}"));
            }
            let fit = fits::waiting_time_fit(n, c, lambda);
            let mf_wait = meanfield::solve(c, lambda).mean_wait.unwrap_or(0.0);
            points.push((f64::from(c), est.wait_mean.mean()));
            table.row(vec![
                format!("1-2^-{i}").into(),
                u64::from(c).into(),
                est.wait_mean.mean().into(),
                est.wait_p50.mean().into(),
                est.wait_p99.mean().into(),
                est.wait_p999.mean().into(),
                est.wait_max.mean().into(),
                mf_wait.into(),
                fit.into(),
                (est.wait_mean.mean() / fit).into(),
            ]);
        }
        chart = chart.with_series(Series::new(&format!("lambda = 1-2^-{i}"), points));
    }
    let mut out = ExperimentOutput::new(table, notes);
    out.charts.push(chart.render());
    out
}

/// **Figure 5, right**: average and maximum waiting time as a function of
/// `λ = 1 − 2⁻ⁱ, i ∈ [1, 10]`, for capacities `c = 1` and `c = 3`.
pub fn fig5_right(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let mut table = Table::new(
        "Figure 5 (right): waiting time vs injection rate",
        &[
            "c",
            "i (lambda=1-2^-i)",
            "avg wait",
            "p50 wait",
            "p99 wait",
            "p999 wait",
            "max wait",
            "mean-field avg",
            "envelope",
            "avg/envelope",
        ],
    );
    let mut notes = Vec::new();
    note_scale(&mut notes, scale, n);
    for c in [1u32, 3] {
        for i in 1..=10u32 {
            if !lambda_pow2_valid(i, n) {
                notes.push(format!(
                    "skipped lambda = 1 - 2^-{i}: not integral for n = {n}"
                ));
                continue;
            }
            let lambda = lambda_pow2(i);
            let est = measure_point(n, c, lambda, scale, u64::from(c * 2000 + i));
            if !est.all_converged {
                notes.push(format!("burn-in not converged at i={i}, c={c}"));
            }
            let fit = fits::waiting_time_fit(n, c, lambda);
            let mf_wait = meanfield::solve(c, lambda).mean_wait.unwrap_or(0.0);
            table.row(vec![
                u64::from(c).into(),
                u64::from(i).into(),
                est.wait_mean.mean().into(),
                est.wait_p50.mean().into(),
                est.wait_p99.mean().into(),
                est.wait_p999.mean().into(),
                est.wait_max.mean().into(),
                mf_wait.into(),
                fit.into(),
                (est.wait_mean.mean() / fit).into(),
            ]);
        }
    }
    ExperimentOutput::new(table, notes)
}

/// **Sweet spot** (`SWEET`): locate the capacity minimizing the measured
/// waiting times for several λ and compare against the theoretical
/// `c* = √ln(1/(1−λ))` (paper: minima around c = 2 and c = 3).
pub fn sweet_spot(scale: Scale) -> ExperimentOutput {
    let n = scale.bins();
    let c_range = 1..=6u32;
    let mut table = Table::new(
        "Sweet spot: argmin_c of waiting time vs theory",
        &[
            "lambda",
            "argmin avg wait",
            "argmin max wait",
            "theory c* (sqrt ln)",
            "fit argmin",
        ],
    );
    let mut notes = Vec::new();
    note_scale(&mut notes, scale, n);
    for i in [2u32, 6, 10, 13] {
        if !lambda_pow2_valid(i, n) {
            notes.push(format!(
                "skipped lambda = 1 - 2^-{i}: not integral for n = {n}"
            ));
            continue;
        }
        let lambda = lambda_pow2(i);
        let mut avg_profile = Vec::new();
        let mut max_profile = Vec::new();
        for c in c_range.clone() {
            let est = measure_point(n, c, lambda, scale, u64::from(i * 31 + c));
            avg_profile.push(est.wait_mean.mean());
            max_profile.push(est.wait_max.mean());
        }
        table.row(vec![
            format!("1-2^-{i}").into(),
            u64::from(sweetspot::argmin_capacity(&avg_profile)).into(),
            u64::from(sweetspot::argmin_capacity(&max_profile)).into(),
            sweetspot::continuous_sweet_spot(lambda).into(),
            u64::from(sweetspot::optimal_capacity(lambda, n)).into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`NSCALE`** — the Section-V claim that "the actual number of n has
/// negligible impact on the (normalized) simulation results": normalized
/// pool size and waiting times measured across a range of `n` at fixed
/// `(c, λ)` must be flat in `n` (waiting times up to the `log log n`
/// term, which moves by < 0.4 over this range).
pub fn n_invariance(scale: Scale) -> ExperimentOutput {
    let max_exp = (scale.bins() as f64).log2() as u32;
    let min_exp = max_exp.saturating_sub(5).max(8);
    let mut table = Table::new(
        "n-invariance of normalized results (Section V claim)",
        &["c", "lambda", "n", "pool/n", "avg wait", "max wait"],
    );
    let mut notes = vec![format!(
        "n from 2^{min_exp} to 2^{max_exp}; normalized pool must be flat; waits may move by the loglog n term only"
    )];
    for (c, lambda) in [(2u32, 0.75), (2, 1.0 - 1.0 / 64.0)] {
        let mut pools = Vec::new();
        for e in min_exp..=max_exp {
            let n = 1usize << e;
            let est = measure_point(n, c, lambda, scale, u64::from(c) * 1_000 + u64::from(e));
            pools.push(est.normalized_pool_mean());
            table.row(vec![
                u64::from(c).into(),
                format!("{lambda:.6}").into(),
                n.into(),
                est.normalized_pool_mean().into(),
                est.wait_mean.mean().into(),
                est.wait_max.mean().into(),
            ]);
        }
        let spread = pools.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - pools.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = pools.iter().sum::<f64>() / pools.len() as f64;
        notes.push(format!(
            "c={c}, lambda={lambda:.4}: normalized-pool spread {spread:.4} around mean {mean:.4} ({:.1}%)",
            100.0 * spread / mean.max(1e-9)
        ));
    }
    ExperimentOutput::new(table, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_helpers() {
        assert_eq!(lambda_pow2(2), 0.75);
        assert!(lambda_pow2_valid(10, 1 << 10));
        assert!(!lambda_pow2_valid(11, 1 << 10));
    }

    #[test]
    fn fig4_left_smoke_has_shape() {
        let out = fig4_left(Scale::Smoke);
        // Smoke scale (n = 2^10) supports both λ values -> 10 rows.
        assert_eq!(out.table.len(), 10);
        let text = out.render();
        assert!(text.contains("Figure 4"));
        // CSV export works too.
        assert!(out.table.to_csv().lines().count() > 5);
    }

    #[test]
    fn fig5_left_smoke_skips_invalid_lambda() {
        let out = fig5_left(Scale::Smoke);
        // λ = 1 − 2⁻¹³ is invalid at n = 2^10 and must be reported.
        assert!(out.notes.iter().any(|n| n.contains("2^-13")));
        assert_eq!(out.table.len(), 10); // two λ values × five capacities
    }

    #[test]
    fn n_invariance_smoke_reports_flat_pools() {
        let out = n_invariance(Scale::Smoke);
        assert_eq!(out.table.len(), 6); // 2 configs x 3 n values
                                        // The flatness notes must be present and report small spreads.
        let spread_notes: Vec<&String> =
            out.notes.iter().filter(|n| n.contains("spread")).collect();
        assert_eq!(spread_notes.len(), 2);
    }

    #[test]
    fn fig4_right_covers_both_capacities() {
        let out = fig4_right(Scale::Smoke);
        assert_eq!(out.table.len(), 20); // c ∈ {1,3} × i ∈ 1..=10
    }
}
