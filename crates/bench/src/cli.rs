//! A minimal command-line parser for the figure harness.
//!
//! Hand-rolled because `clap` is not in the approved dependency set; the
//! surface is tiny: one subcommand plus `--scale <preset>`, `--out <dir>`
//! and `--seed <u64>` flags.

use std::str::FromStr;

use crate::scale::Scale;

/// Parsed command line for the `figures` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The experiment subcommand (e.g. `fig4-left`, `all`).
    pub command: String,
    /// Scale preset (default: quick).
    pub scale: Scale,
    /// Optional directory to also write CSV files into.
    pub out_dir: Option<String>,
    /// Optional master-seed override.
    pub seed: Option<u64>,
}

/// All subcommands the `figures` binary understands.
pub const COMMANDS: &[&str] = &[
    "fig4-left",
    "fig4-right",
    "fig5-left",
    "fig5-right",
    "sweet-spot",
    "compare",
    "compare-growth",
    "dominance",
    "ablation-choices",
    "ablation-arrivals",
    "stabilization",
    "lemma-phases",
    "chaos",
    "adler-region",
    "wait-tail",
    "load-dist",
    "hetero",
    "async",
    "mstar",
    "n-invariance",
    "batch-pileup",
    "policy",
    "all",
];

/// Usage text.
pub fn usage() -> String {
    format!(
        "usage: figures <command> [--scale paper|quick|smoke] [--out <dir>] [--seed <u64>]\n\
         commands: {}",
        COMMANDS.join(", ")
    )
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable error string on unknown commands, unknown
/// flags, missing flag values or malformed values.
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut iter = args.iter();
    let command = iter.next().ok_or_else(usage)?.clone();
    if !COMMANDS.contains(&command.as_str()) {
        return Err(format!("unknown command '{command}'\n{}", usage()));
    }
    let mut cli = Cli {
        command,
        scale: Scale::Quick,
        out_dir: None,
        seed: None,
    };
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--scale" => {
                let v = iter.next().ok_or("--scale requires a value")?;
                cli.scale = Scale::from_str(v)?;
            }
            "--out" => {
                let v = iter.next().ok_or("--out requires a value")?;
                cli.out_dir = Some(v.clone());
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed requires a value")?;
                cli.seed = Some(v.parse::<u64>().map_err(|e| format!("bad seed: {e}"))?);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_defaults() {
        let cli = parse(&strings(&["fig4-left"])).unwrap();
        assert_eq!(cli.command, "fig4-left");
        assert_eq!(cli.scale, Scale::Quick);
        assert_eq!(cli.out_dir, None);
        assert_eq!(cli.seed, None);
    }

    #[test]
    fn parses_all_flags() {
        let cli = parse(&strings(&[
            "all", "--scale", "smoke", "--out", "/tmp/x", "--seed", "9",
        ]))
        .unwrap();
        assert_eq!(cli.scale, Scale::Smoke);
        assert_eq!(cli.out_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(cli.seed, Some(9));
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse(&strings(&["fig9"])).is_err());
        assert!(parse(&strings(&["all", "--wat"])).is_err());
        assert!(parse(&strings(&["all", "--scale"])).is_err());
        assert!(parse(&strings(&["all", "--seed", "x"])).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn every_advertised_command_parses() {
        for cmd in COMMANDS {
            assert!(parse(&strings(&[cmd])).is_ok(), "{cmd}");
        }
    }
}
