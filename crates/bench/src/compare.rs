//! Comparison against the PODC'16 batched GREEDY\[d\] baseline
//! (experiment `CMP`).
//!
//! The paper's headline claim (Section I-B): for constant λ the waiting
//! time of the GREEDY processes of \[Berenbrink et al., PODC'16\] is
//! Θ(log n), while CAPPED achieves `log log n + O(1)`. We reproduce the
//! *shape* of that separation by measuring the maximum waiting time for a
//! range of `n` and classifying each process's growth law by regressing
//! against `log₂ n` and `log₂ log₂ n` covariates.

use iba_sim::output::Table;
use iba_sim::stats::regression::best_covariate;

use iba_core::config::CappedConfig;

use crate::figures::ExperimentOutput;
use crate::measure::{measure_capped, measure_greedy, MeasureConfig};
use crate::scale::Scale;

/// One measured growth series: a label and the max waiting time per `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthSeries {
    /// Process label.
    pub label: String,
    /// `(n, max waiting time)` pairs.
    pub points: Vec<(usize, f64)>,
}

impl GrowthSeries {
    /// Classifies the series' growth law: `"≈ constant"` when the series
    /// barely moves across the whole `n` range (less than one round of
    /// spread — regressing noise would be meaningless), otherwise
    /// `"log log n"` or `"log n"`, whichever covariate explains the data
    /// better (higher R²).
    ///
    /// # Panics
    ///
    /// Panics if the series has fewer than 2 points.
    pub fn growth_law(&self) -> &'static str {
        let ys: Vec<f64> = self.points.iter().map(|&(_, y)| y).collect();
        let spread = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ys.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread < 1.0 {
            return "≈ constant";
        }
        let loglog: Vec<f64> = self
            .points
            .iter()
            .map(|&(n, _)| (n as f64).log2().log2())
            .collect();
        let log: Vec<f64> = self
            .points
            .iter()
            .map(|&(n, _)| (n as f64).log2())
            .collect();
        let (winner, _) = best_covariate(&[loglog, log], &ys);
        if winner == 0 {
            "log log n"
        } else {
            "log n"
        }
    }
}

/// Runs the comparison at constant `λ = 0.75` over a range of `n`
/// (powers of two up to the scale's `n`), for CAPPED(c ∈ {1, 2, 3}) and
/// GREEDY\[1\], GREEDY\[2\].
pub fn compare_growth(scale: Scale) -> (ExperimentOutput, Vec<GrowthSeries>) {
    let lambda = 0.75;
    let max_exp = (scale.bins() as f64).log2() as u32;
    let min_exp = max_exp.saturating_sub(5).max(8);
    let ns: Vec<usize> = (min_exp..=max_exp).map(|e| 1usize << e).collect();

    let mut series: Vec<GrowthSeries> = Vec::new();
    let mut table = Table::new(
        "Comparison: max waiting time growth, lambda = 0.75",
        &["process", "n", "avg wait", "max wait"],
    );
    let mut notes = vec![format!(
        "n from 2^{min_exp} to 2^{max_exp}; growth law classified by best-R^2 covariate"
    )];

    // CAPPED variants.
    for c in [1u32, 2, 3] {
        let mut points = Vec::new();
        for &n in &ns {
            let config = CappedConfig::new(n, c, lambda).expect("valid");
            let m = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
                .with_master_seed(u64::from(c) * 7919 + n as u64);
            let est = measure_capped(&config, &m);
            table.row(vec![
                format!("capped(c={c})").into(),
                n.into(),
                est.wait_mean.mean().into(),
                est.wait_max.mean().into(),
            ]);
            points.push((n, est.wait_max.mean()));
        }
        series.push(GrowthSeries {
            label: format!("capped(c={c})"),
            points,
        });
    }

    // GREEDY[d] baselines.
    for d in [1u32, 2] {
        let mut points = Vec::new();
        for &n in &ns {
            let m = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
                .with_master_seed(u64::from(d) * 104729 + n as u64)
                .cold();
            let est = measure_greedy(n, d, lambda, &m);
            table.row(vec![
                format!("greedy[{d}]").into(),
                n.into(),
                est.wait_mean.mean().into(),
                est.wait_max.mean().into(),
            ]);
            points.push((n, est.wait_max.mean()));
        }
        series.push(GrowthSeries {
            label: format!("greedy[{d}]"),
            points,
        });
    }

    for s in &series {
        notes.push(format!("{}: growth law ≈ {}", s.label, s.growth_law()));
    }
    (ExperimentOutput::new(table, notes), series)
}

/// Head-to-head at a single `n`: CAPPED's waiting time against both GREEDY
/// baselines, the paper's "who wins" summary.
pub fn compare_head_to_head(scale: Scale) -> ExperimentOutput {
    let lambda = 0.75;
    let n = scale.bins();
    let mut table = Table::new(
        "Head-to-head at fixed n, lambda = 0.75",
        &[
            "process",
            "avg wait",
            "max wait",
            "mean pool/n",
            "probes/ball",
        ],
    );
    let notes = vec![format!("n = {n}")];
    for c in [1u32, 2, 3] {
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let m = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
            .with_master_seed(u64::from(c));
        let est = measure_capped(&config, &m);
        table.row(vec![
            format!("capped(c={c})").into(),
            est.wait_mean.mean().into(),
            est.wait_max.mean().into(),
            est.normalized_pool_mean().into(),
            est.probes_per_ball.mean().into(),
        ]);
    }
    for d in [1u32, 2] {
        let m = MeasureConfig::for_lambda(lambda, scale.window(), scale.seeds())
            .with_master_seed(u64::from(d) + 50)
            .cold();
        let est = measure_greedy(n, d, lambda, &m);
        table.row(vec![
            format!("greedy[{d}]").into(),
            est.wait_mean.mean().into(),
            est.wait_max.mean().into(),
            est.normalized_pool_mean().into(),
            // GREEDY[d] issues exactly d probes per ball, by definition.
            f64::from(d).into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`ADLER`** — the stability-region story (Section I-A): the d-copy
/// process of Adler, Berenbrink, Schröder guarantees constant expected
/// waiting time only for arrival batches `m < n/(3de)` ≈ 0.061·n (d = 2) —
/// "the major drawback of this process". CAPPED(c, λ) serves *any*
/// λ ≤ 1 − 1/n. This experiment sweeps the arrival rate across and beyond
/// the Adler region and reports both processes' backlog and waiting times.
pub fn adler_region(scale: Scale) -> ExperimentOutput {
    use iba_baselines::adler::AdlerProcess;
    use iba_core::process::CappedProcess;
    use iba_sim::process::AllocationProcess;
    use iba_sim::rng::SimRng;

    let n = scale.bins();
    let d = 2u32;
    let region = n as f64 / (3.0 * d as f64 * std::f64::consts::E); // ≈ 0.061 n
    let mut table = Table::new(
        "Adler d-copy process vs CAPPED across arrival rates (d = 2, c = 2)",
        &[
            "m/n",
            "in Adler region",
            "adler backlog/m",
            "adler max wait",
            "capped pool/n",
            "capped max wait",
        ],
    );
    let notes = vec![format!(
        "n = {n}; Adler's analysis requires m < n/(3de) = {region:.0}; CAPPED has no such restriction"
    )];
    // Rates: inside, at, and far beyond the Adler region.
    for num in [n / 32, n / 16, n / 8, n / 2, 3 * n / 4] {
        let m = num as u64;
        let lambda = m as f64 / n as f64;

        let mut adler = AdlerProcess::new(n, d, m).expect("valid");
        let in_region = adler.within_stability_region();
        let mut rng_a = SimRng::seed_from(m + 5);
        let rounds = scale.window() * 3;
        let mut adler_max_wait = 0u64;
        for i in 0..rounds {
            let r = adler.step(&mut rng_a);
            if i >= rounds / 2 {
                adler_max_wait = adler_max_wait.max(r.max_waiting_time().unwrap_or(0));
            }
        }
        let adler_backlog = adler.balls_in_system() as f64 / (m.max(1)) as f64;

        let config = iba_core::config::CappedConfig::new(n, 2, lambda).expect("valid");
        let mut capped = CappedProcess::new(config);
        capped.warm_start();
        let mut rng_c = SimRng::seed_from(m + 6);
        let mut capped_max_wait = 0u64;
        let mut pool_sum = 0.0;
        for i in 0..rounds {
            let r = capped.step(&mut rng_c);
            if i >= rounds / 2 {
                capped_max_wait = capped_max_wait.max(r.max_waiting_time().unwrap_or(0));
                pool_sum += r.pool_size as f64;
            }
        }
        table.row(vec![
            format!("{lambda:.4}").into(),
            if in_region { "yes" } else { "no" }.into(),
            adler_backlog.into(),
            adler_max_wait.into(),
            (pool_sum / (rounds - rounds / 2) as f64 / n as f64).into(),
            capped_max_wait.into(),
        ]);
    }
    ExperimentOutput::new(table, notes)
}

/// **`BATCH`** — the intra-batch pileup mechanism (paper, Section I): in
/// batched GREEDY\[d\] the members of one batch cannot see each other, so
/// "the expected maximum number of tasks allocated to some server is
/// Ω(log n)" for d = 1 and `Θ(log n / log log n)` even for d = 2. We
/// measure the per-round maximum number of batch members committing to one
/// bin, across `n`, next to the one-choice occupancy prediction.
pub fn batch_pileup(scale: Scale) -> ExperimentOutput {
    use iba_analysis::math::ln_ln;
    use iba_baselines::GreedyBatchProcess;
    use iba_sim::process::AllocationProcess;
    use iba_sim::rng::SimRng;

    let lambda = 0.75;
    let max_exp = (scale.bins() as f64).log2() as u32;
    let min_exp = max_exp.saturating_sub(5).max(8);
    let mut table = Table::new(
        "Intra-batch pileup in batched GREEDY[d], lambda = 0.75",
        &["d", "n", "mean pileup", "max pileup", "ln n / ln ln n"],
    );
    let notes = vec![
        "pileup = max over bins of batch members committing to that bin in one round".into(),
        "the Theta(log n / log log n) growth is why batched GREEDY loses the power of two choices"
            .into(),
    ];
    for d in [1u32, 2] {
        for e in min_exp..=max_exp {
            let n = 1usize << e;
            let mut p = GreedyBatchProcess::new(n, d, lambda).expect("valid");
            let mut rng = SimRng::seed_from(u64::from(d) * 1_000 + u64::from(e));
            for _ in 0..300 {
                p.step(&mut rng); // burn-in
            }
            let rounds = scale.window();
            let mut sum = 0.0;
            let mut max = 0u64;
            for _ in 0..rounds {
                p.step(&mut rng);
                let pileup = p.last_batch_pileup();
                sum += pileup as f64;
                max = max.max(pileup);
            }
            let prediction = (n as f64).ln() / ln_ln(n).max(1.0);
            table.row(vec![
                u64::from(d).into(),
                n.into(),
                (sum / rounds as f64).into(),
                max.into(),
                prediction.into(),
            ]);
        }
    }
    ExperimentOutput::new(table, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_law_classifier_on_synthetic_series() {
        let log_series = GrowthSeries {
            label: "synthetic-log".into(),
            points: (8..=16).map(|e| (1usize << e, e as f64 * 2.0)).collect(),
        };
        assert_eq!(log_series.growth_law(), "log n");
        let loglog_series = GrowthSeries {
            label: "synthetic-loglog".into(),
            points: (8..=16)
                .map(|e| (1usize << e, (e as f64).log2() * 2.0 + 1.0))
                .collect(),
        };
        assert_eq!(loglog_series.growth_law(), "log log n");
    }

    #[test]
    fn batch_pileup_grows_with_n() {
        let out = batch_pileup(Scale::Smoke);
        let csv = out.table.to_csv();
        // For each d, the mean pileup at the largest n exceeds the
        // smallest n (the log n / log log n growth).
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.to_string()).collect())
            .collect();
        for d in ["1", "2"] {
            let means: Vec<f64> = rows
                .iter()
                .filter(|r| r[0] == d)
                .map(|r| r[2].parse().unwrap())
                .collect();
            assert!(means.len() >= 3, "d={d}");
            assert!(
                means.last().unwrap() > means.first().unwrap(),
                "d={d}: {means:?}"
            );
        }
    }

    #[test]
    fn head_to_head_smoke_produces_all_rows() {
        let out = compare_head_to_head(Scale::Smoke);
        assert_eq!(out.table.len(), 5); // capped c∈{1,2,3} + greedy d∈{1,2}
    }
}
