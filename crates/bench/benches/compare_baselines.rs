//! Comparison bench (`CMP`, `DOM` and the ablations): times a coupled
//! CAPPED/MODCAPPED round and prints the smoke-scale comparison,
//! dominance, ablation and stabilization tables.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iba_bench::ablations::{arrival_ablation, choice_ablation, dominance, stabilization};
use iba_bench::compare::{compare_growth, compare_head_to_head};
use iba_bench::scale::Scale;
use iba_core::config::CappedConfig;
use iba_core::coupling::CoupledRun;
use iba_sim::rng::SimRng;

fn bench_coupled_round(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("coupled_round");
    for &c in &[1u32, 3] {
        group.bench_function(BenchmarkId::from_parameter(format!("c{c}")), |b| {
            let config = CappedConfig::new(1 << 10, c, 0.75).expect("valid");
            let mut run = CoupledRun::new(config).expect("valid");
            let mut rng = SimRng::seed_from(5);
            for _ in 0..50 {
                run.step(&mut rng);
            }
            b.iter(|| run.step(&mut rng));
        });
    }
    group.finish();

    println!("\n{}", compare_head_to_head(Scale::Smoke).render());
    let (growth, _) = compare_growth(Scale::Smoke);
    println!("{}", growth.render());
    println!("{}", dominance(Scale::Smoke).render());
    println!("{}", choice_ablation(Scale::Smoke).render());
    println!("{}", arrival_ablation(Scale::Smoke).render());
    println!("{}", stabilization(Scale::Smoke).render());
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_coupled_round
}
criterion_main!(benches);
