//! Figure-4 regeneration bench (`F4L` + `F4R`): times one stationary
//! pool-size data point and prints the full smoke-scale Figure 4 tables so
//! `cargo bench` leaves a record of the reproduced series.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iba_bench::figures::{fig4_left, fig4_right};
use iba_bench::measure::{measure_capped, MeasureConfig};
use iba_bench::scale::Scale;
use iba_core::config::CappedConfig;

fn bench_fig4_data_point(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("fig4_data_point");
    let n = Scale::Smoke.bins();
    for &c in &[1u32, 3] {
        let lambda = 0.75;
        group.bench_function(BenchmarkId::from_parameter(format!("c{c}")), |b| {
            let config = CappedConfig::new(n, c, lambda).expect("valid");
            let measure = MeasureConfig::for_lambda(lambda, 100, 1);
            b.iter(|| measure_capped(&config, &measure));
        });
    }
    group.finish();

    // Regenerate and print the full smoke-scale tables once.
    println!("\n{}", fig4_left(Scale::Smoke).render());
    println!("{}", fig4_right(Scale::Smoke).render());
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig4_data_point
}
criterion_main!(benches);
