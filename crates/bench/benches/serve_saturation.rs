//! Serving-layer throughput: wall-clock cost of one service round across
//! shard counts and RNG modes, against the single-threaded process as the
//! baseline, plus a saturation probe at demand near the service limit.
//!
//! The interesting comparisons:
//!
//! - `service_round/central` vs the bare process: the cost of routing,
//!   channels, and merging with serial randomness generation;
//! - `service_round/pershard` across shard counts: how much the parallel
//!   RNG mode buys once randomness generation is off the driver;
//! - `open_loop_saturated`: rounds/second with ingress admission and
//!   ticket accounting in the loop, offered load at ~95 % of capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iba_core::config::CappedConfig;
use iba_core::process::CappedProcess;
use iba_serve::workload::{run_open_loop, OpenLoop};
use iba_serve::{CappedService, RngMode, ServiceConfig};
use iba_sim::process::AllocationProcess;
use iba_sim::rng::SimRng;

const N: usize = 1 << 14;
const C: u32 = 4;
const LAMBDA: f64 = 0.75;

fn warmed_service(shards: usize, mode: RngMode) -> CappedService {
    let capped = CappedConfig::new(N, C, LAMBDA).expect("valid");
    let mut service = CappedService::spawn(
        ServiceConfig::new(capped, shards, 1)
            .with_rng_mode(mode)
            .with_model_arrivals(true),
    )
    .expect("valid service");
    for _ in 0..100 {
        service.run_round();
    }
    service
}

fn bench_service_round(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("service_round");
    // Baseline: the bare single-threaded process on the same cell.
    group.bench_function(BenchmarkId::new("bare_process", "1"), |b| {
        let mut p = CappedProcess::new(CappedConfig::new(N, C, LAMBDA).expect("valid"));
        p.warm_start();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            p.step(&mut rng);
        }
        b.iter(|| p.step(&mut rng));
    });
    for &shards in &[1usize, 2, 4, 8] {
        for (label, mode) in [
            ("central", RngMode::Central),
            ("pershard", RngMode::PerShard),
        ] {
            group.bench_function(BenchmarkId::new(label, shards), |b| {
                let mut service = warmed_service(shards, mode);
                b.iter(|| service.run_round());
            });
        }
    }
    group.finish();
}

fn bench_open_loop_saturated(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("open_loop_saturated");
    // Offered load ≈ 95 % of the λn service budget, submitted through the
    // dispatcher so admission and ticket bookkeeping are on the hot path.
    let rate = (LAMBDA * N as f64 * 0.95) as u64;
    for &shards in &[2usize, 8] {
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            let capped = CappedConfig::new(N, C, 0.0).expect("valid");
            let mut service = CappedService::spawn(
                ServiceConfig::new(capped, shards, 1).with_ingress_capacity(2 * rate as usize),
            )
            .expect("valid service");
            let load = OpenLoop::new(rate);
            b.iter(|| run_open_loop(&mut service, &load, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service_round, bench_open_loop_saturated);
criterion_main!(benches);
