//! Substrate microbenchmarks: raw generator output, uniform bin sampling,
//! buffer operations and the static sequential baselines.

use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iba_baselines::sequential::{greedy_d, one_choice};
use iba_core::ball::Ball;
use iba_core::buffer::BinBuffer;
use iba_core::config::Capacity;
use iba_sim::rng::{SimRng, SplitMix64, Xoshiro256PlusPlus};

fn bench_generators(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("rng");
    group.bench_function("xoshiro256pp_next_u64", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.bench_function("splitmix64_next_u64", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.bench_function("uniform_bin_lemire", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(rng.uniform_bin(1 << 15)));
    });
    group.bench_function("unit_f64", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(rng.unit_f64()));
    });
    group.finish();
}

fn bench_buffers(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("buffers");
    group.bench_function("bin_buffer_accept_serve_c3", |b| {
        let mut buf = BinBuffer::new(Capacity::finite(3).expect("valid"));
        let mut label = 0u64;
        b.iter(|| {
            label += 1;
            buf.try_accept(Ball::generated_in(label));
            black_box(buf.serve())
        });
    });
    group.bench_function("vecdeque_push_pop_reference", |b| {
        let mut q: VecDeque<u64> = VecDeque::new();
        let mut label = 0u64;
        b.iter(|| {
            label += 1;
            q.push_back(label);
            black_box(q.pop_front())
        });
    });
    group.finish();
}

fn bench_sequential_baselines(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("sequential_static");
    group.sample_size(10);
    let n = 1 << 14;
    group.bench_function(BenchmarkId::new("one_choice", n), |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| one_choice(n as u64, n, &mut rng).expect("valid"));
    });
    group.bench_function(BenchmarkId::new("greedy_d2", n), |b| {
        let mut rng = SimRng::seed_from(3);
        b.iter(|| greedy_d(n as u64, n, 2, &mut rng).expect("valid"));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generators, bench_buffers, bench_sequential_baselines
}
criterion_main!(benches);
