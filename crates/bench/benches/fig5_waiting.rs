//! Figure-5 regeneration bench (`F5L` + `F5R`): times one stationary
//! waiting-time data point and prints the full smoke-scale Figure 5 tables
//! plus the sweet-spot summary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iba_bench::figures::{fig5_left, fig5_right, sweet_spot};
use iba_bench::measure::{measure_capped, MeasureConfig};
use iba_bench::scale::Scale;
use iba_core::config::CappedConfig;

fn bench_fig5_data_point(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("fig5_data_point");
    let n = Scale::Smoke.bins();
    // The heavy-λ point dominates Figure 5's cost; bench it explicitly.
    for &(c, i) in &[(1u32, 2u32), (3, 10)] {
        let lambda = 1.0 - 2.0f64.powi(-(i as i32));
        group.bench_function(BenchmarkId::from_parameter(format!("c{c}_i{i}")), |b| {
            let config = CappedConfig::new(n, c, lambda).expect("valid");
            let measure = MeasureConfig::for_lambda(lambda, 100, 1);
            b.iter(|| measure_capped(&config, &measure));
        });
    }
    group.finish();

    println!("\n{}", fig5_left(Scale::Smoke).render());
    println!("{}", fig5_right(Scale::Smoke).render());
    println!("{}", sweet_spot(Scale::Smoke).render());
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig5_data_point
}
criterion_main!(benches);
