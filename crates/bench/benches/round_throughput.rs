//! Engine micro-throughput: wall-clock cost of one synchronous round for
//! every process in the workspace, across bin counts, capacities and
//! injection rates.
//!
//! This is the systems-performance view of the simulator (rounds/second);
//! the figure-regeneration benches cover the scientific outputs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iba_baselines::greedy_batch::GreedyBatchProcess;
use iba_core::config::CappedConfig;
use iba_core::modcapped::ModCappedProcess;
use iba_core::process::CappedProcess;
use iba_sim::process::AllocationProcess;
use iba_sim::rng::SimRng;

/// Steps a process to its stationary regime so the benched rounds are
/// representative (a cold system throws far fewer balls per round).
fn warmed_capped(n: usize, c: u32, lambda: f64) -> CappedProcess {
    let mut p = CappedProcess::new(CappedConfig::new(n, c, lambda).expect("valid"));
    p.warm_start();
    let mut rng = SimRng::seed_from(1);
    for _ in 0..200 {
        p.step(&mut rng);
    }
    p
}

fn bench_capped_round(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("capped_round");
    for &n in &[1usize << 10, 1 << 12, 1 << 14] {
        for &(c, lambda) in &[(1u32, 0.75), (3, 0.75), (1, 1.0 - 1.0 / 1024.0)] {
            let id = BenchmarkId::new(format!("n{n}_c{c}"), format!("lambda{lambda:.4}"));
            group.bench_function(id, |b| {
                let mut p = warmed_capped(n, c, lambda);
                let mut rng = SimRng::seed_from(2);
                b.iter(|| p.step(&mut rng));
            });
        }
    }
    group.finish();
}

fn bench_modcapped_round(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("modcapped_round");
    for &c in &[1u32, 3] {
        let n = 1 << 12;
        group.bench_function(BenchmarkId::from_parameter(format!("n{n}_c{c}")), |b| {
            let mut p = ModCappedProcess::new(n, c, 0.75).expect("valid");
            let mut rng = SimRng::seed_from(3);
            for _ in 0..50 {
                p.step(&mut rng);
            }
            b.iter(|| p.step(&mut rng));
        });
    }
    group.finish();
}

fn bench_greedy_round(c_bench: &mut Criterion) {
    let mut group = c_bench.benchmark_group("greedy_batch_round");
    for &d in &[1u32, 2] {
        let n = 1 << 12;
        group.bench_function(BenchmarkId::from_parameter(format!("n{n}_d{d}")), |b| {
            let mut p = GreedyBatchProcess::new(n, d, 0.75).expect("valid");
            let mut rng = SimRng::seed_from(4);
            for _ in 0..200 {
                p.step(&mut rng);
            }
            b.iter(|| p.step(&mut rng));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_capped_round, bench_modcapped_round, bench_greedy_round
}
criterion_main!(benches);
