//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build image has no crates.io access, so this crate mirrors the
//! benchmark-harness surface the `benches/` targets rely on: the
//! [`criterion_group!`] / [`criterion_main!`] macros, the [`Criterion`]
//! builder, [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and
//! [`black_box`]. It is a measurement shim, not a statistics engine: each
//! benchmark runs `sample_size` timed iterations (after one warm-up
//! iteration) and prints min / median / max wall-clock times. Benchmarks
//! stay source-compatible with real criterion, so restoring the crates.io
//! dependency is a drop-in swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value; forwards to
/// [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier composed of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{parameter}", function_name.into()))
    }

    /// Identifier consisting only of a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` invocations of `routine` after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!("{label:<40} min {min:>12.3?}   median {median:>12.3?}   max {max:>12.3?}");
}

/// Entry point mirroring `criterion::Criterion`. Builder methods other than
/// `sample_size` are accepted and ignored so real-criterion configuration
/// code compiles unchanged.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this shim times a fixed iteration count.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; this shim warms up with one iteration.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; the shim has no plotting backend.
    #[must_use]
    pub fn without_plots(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), None, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Accepted for compatibility; summaries are printed as benchmarks run.
    pub fn final_summary(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: BenchmarkId,
    group: Option<&str>,
    sample_size: usize,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.0),
        None => id.0,
    };
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    report(&label, &mut bencher.samples);
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this shim times a fixed iteration count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this shim warms up with one iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), Some(&self.name), self.sample_size, f);
        self
    }

    /// Finishes the group. Summaries were printed as benchmarks ran.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(7u64) * black_box(7u64)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter("n=4"), |b| {
            b.iter(|| (0..4u64).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(1));
        targets = bench_square
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
