//! Offline stand-in for the tiny part of the `rand` 0.9 API this workspace
//! uses.
//!
//! The workspace's own generators (`iba_sim::rng`) are hand-rolled and
//! self-contained; the only thing taken from `rand` is the [`RngCore`]
//! abstraction so the generators can be plugged into external samplers.
//! The build image has no crates.io access, so this crate provides that
//! trait with the exact `rand` 0.9 signatures. If registry access ever
//! returns, deleting `crates/compat` and restoring the crates.io
//! dependency is a drop-in swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator, signature-compatible with
/// `rand::RngCore` 0.9.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        R::fill_bytes(self, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dst: &mut [u8]) {
            for chunk in dst.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn trait_object_and_reference_impls_work() {
        let mut c = Counter(0);
        assert_eq!((&mut c).next_u64(), 1);
        let dyn_rng: &mut dyn RngCore = &mut c;
        assert_eq!(dyn_rng.next_u64(), 2);
        let mut buf = [0u8; 4];
        dyn_rng.fill_bytes(&mut buf);
        assert_eq!(u32::from_le_bytes(buf), 3);
    }
}
