//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build image has no crates.io access, so this crate re-implements the
//! surface the test suite relies on with the same names and shapes:
//!
//! - the [`proptest!`] macro (including the `#![proptest_config(..)]` form),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`Strategy`] with `prop_map`, `prop_flat_map`, and `boxed`,
//! - numeric `Range` / `RangeInclusive` strategies, [`Just`], tuples,
//! - [`prop_oneof!`], [`any`]`::<T>()`, and [`collection::vec`].
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! **deterministic** (seeded from the test function name, so failures
//! reproduce exactly across runs and machines) and there is **no
//! shrinking** — a failing case panics with the standard assert message.
//! Tests written against this crate remain source-compatible with real
//! proptest, so restoring the crates.io dependency is a drop-in swap.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from an arbitrary label (typically the test
    /// function name), so every run of a given test sees the same cases.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Returns the next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        // Modulo bias is negligible for test-case generation purposes.
        ((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())) % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values, mirroring `proptest::strategy::Strategy`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// samples a value from the [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap {
            source: self,
            expand: f,
        }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    expand: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.expand)(self.source.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally weighted alternatives; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u128) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start() <= self.end(),
                    "empty range strategy {:?}",
                    self
                );
                let span =
                    (*self.end() as i128).wrapping_sub(*self.start() as i128) as u128 + 1;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {:?}", self);
                // unit_f64 is in [0, 1); stretch slightly so `hi` is reachable,
                // then clamp back into the closed interval.
                let v = lo + (rng.unit_f64() as $t) * (hi - lo) * 1.000_001;
                v.clamp(lo, hi)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range {r:?}");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range {r:?}");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    /// Strategy for vectors with element strategy `S` and length in a
    /// [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u128 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run for each property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Compatibility alias module matching `proptest::test_runner`.
pub mod test_runner {
    pub use crate::ProptestConfig;
}

/// Compatibility alias module matching `proptest::strategy`.
pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    /// Re-export of the crate root under the conventional `prop` name, so
    /// `prop::collection::vec(..)` resolves as with real proptest.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __proptest_case in 0..config.cases {
                let _ = __proptest_case;
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let strat = (0u64..100).prop_map(|v| v * 2);
        for _ in 0..32 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..512 {
            let v = (5u32..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..=0.75).sample(&mut rng);
            assert!((0.25..=0.75).contains(&f));
            let n = (-3i32..4).sample(&mut rng);
            assert!((-3..4).contains(&n));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::deterministic("vec");
        let strat = prop::collection::vec(0u64..10, 2..6);
        for _ in 0..128 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::TestRng::deterministic("oneof");
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..64 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: patterns, flat_map, any, trailing comma.
        #[test]
        fn macro_binds_patterns(
            (n, k) in (1usize..20).prop_flat_map(|n| (Just(n), 0..(n as u64))),
            flip in any::<bool>(),
        ) {
            prop_assert!(k < n as u64);
            prop_assert_eq!(flip || !flip, true);
            prop_assert_ne!(n, 0);
        }
    }
}
