//! Bounded FIFO bin buffers.

use std::collections::VecDeque;

use crate::ball::Ball;
use crate::config::Capacity;

/// A bin's buffer: a FIFO queue of balls bounded by the capacity `c`.
///
/// The buffer enforces two invariants of the model:
///
/// 1. the load never exceeds the capacity (acceptance via
///    [`try_accept`](Self::try_accept) fails on a full buffer), and
/// 2. service is strictly FIFO — [`serve`](Self::serve) always removes the
///    ball that was accepted first (Algorithm 1's end-of-round deletion).
///
/// # Examples
///
/// ```
/// use iba_core::{Ball, BinBuffer, Capacity};
/// let mut buf = BinBuffer::new(Capacity::finite(2)?);
/// assert!(buf.try_accept(Ball::generated_in(1)));
/// assert!(buf.try_accept(Ball::generated_in(2)));
/// assert!(!buf.try_accept(Ball::generated_in(3))); // full
/// assert_eq!(buf.serve(), Some(Ball::generated_in(1))); // FIFO
/// # Ok::<(), iba_sim::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinBuffer {
    queue: VecDeque<Ball>,
    capacity: Capacity,
}

impl BinBuffer {
    /// Creates an empty buffer with the given capacity.
    ///
    /// Finite capacities reserve `min(c, 4096)` slots up front so buffers
    /// at realistic capacities never reallocate mid-run; the 4096 clamp
    /// keeps pathological capacities from pre-committing memory that would
    /// almost never be used.
    pub fn new(capacity: Capacity) -> Self {
        let reserve = match capacity {
            Capacity::Finite(c) => (c.get() as usize).min(4096),
            Capacity::Infinite => 4,
        };
        BinBuffer {
            queue: VecDeque::with_capacity(reserve),
            capacity,
        }
    }

    /// Rebuilds a buffer from checkpointed contents, in FIFO order. The
    /// queue is pre-reserved to the restored length (and to the capacity,
    /// under the same `min(c, 4096)` clamp as [`new`](Self::new)) so a
    /// restored run does not reallocate as the buffer refills.
    ///
    /// Unlike [`try_accept`](Self::try_accept), this does **not** enforce
    /// `len ≤ capacity`: a bin whose capacity was degraded mid-run (see
    /// `iba_sim::faults`) legally holds more balls than its current
    /// capacity allows and must round-trip through a checkpoint unchanged.
    pub fn restore(capacity: Capacity, balls: impl IntoIterator<Item = Ball>) -> Self {
        let reserve = match capacity {
            Capacity::Finite(c) => (c.get() as usize).min(4096),
            Capacity::Infinite => 4,
        };
        let mut queue = VecDeque::with_capacity(reserve);
        queue.extend(balls);
        BinBuffer { queue, capacity }
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Changes the buffer's capacity (fault injection: capacity
    /// degradation or restoration). Balls already stored above a lowered
    /// capacity stay; the buffer simply rejects new balls until it drains
    /// below the new bound.
    pub fn set_capacity(&mut self, capacity: Capacity) {
        self.capacity = capacity;
    }

    /// Current load (number of stored balls).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        !self.capacity.has_room(self.queue.len())
    }

    /// Accepts `ball` if there is room, returning whether it was accepted.
    pub fn try_accept(&mut self, ball: Ball) -> bool {
        if self.capacity.has_room(self.queue.len()) {
            self.queue.push_back(ball);
            true
        } else {
            false
        }
    }

    /// Serves (deletes) the first-accepted ball, if any — Algorithm 1's
    /// FIFO deletion.
    pub fn serve(&mut self) -> Option<Ball> {
        self.queue.pop_front()
    }

    /// The ball that would be served next, if any.
    pub fn head(&self) -> Option<&Ball> {
        self.queue.front()
    }

    /// Iterates over stored balls in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &Ball> {
        self.queue.iter()
    }

    /// The stored balls as a pair of slices in FIFO order (front slice
    /// first), mirroring [`VecDeque::as_slices`].
    pub fn as_slices(&self) -> (&[Ball], &[Ball]) {
        self.queue.as_slices()
    }

    /// Removes every ball (used by chaos/recovery experiments).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite(c: u32) -> BinBuffer {
        BinBuffer::new(Capacity::finite(c).unwrap())
    }

    #[test]
    fn accepts_up_to_capacity() {
        let mut buf = finite(3);
        assert!(!buf.is_full());
        for label in 0..3 {
            assert!(buf.try_accept(Ball::generated_in(label)));
        }
        assert!(buf.is_full());
        assert!(!buf.try_accept(Ball::generated_in(9)));
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn serve_is_fifo() {
        let mut buf = finite(3);
        buf.try_accept(Ball::generated_in(5));
        buf.try_accept(Ball::generated_in(1));
        buf.try_accept(Ball::generated_in(3));
        // FIFO by acceptance order, not by label.
        assert_eq!(buf.serve(), Some(Ball::generated_in(5)));
        assert_eq!(buf.serve(), Some(Ball::generated_in(1)));
        assert_eq!(buf.serve(), Some(Ball::generated_in(3)));
        assert_eq!(buf.serve(), None);
    }

    #[test]
    fn serve_frees_room() {
        let mut buf = finite(1);
        assert!(buf.try_accept(Ball::generated_in(1)));
        assert!(!buf.try_accept(Ball::generated_in(2)));
        assert_eq!(buf.serve(), Some(Ball::generated_in(1)));
        assert!(buf.try_accept(Ball::generated_in(2)));
    }

    #[test]
    fn head_peeks_without_removing() {
        let mut buf = finite(2);
        assert_eq!(buf.head(), None);
        buf.try_accept(Ball::generated_in(4));
        assert_eq!(buf.head(), Some(&Ball::generated_in(4)));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn infinite_capacity_never_fills() {
        let mut buf = BinBuffer::new(Capacity::Infinite);
        for label in 0..10_000 {
            assert!(buf.try_accept(Ball::generated_in(label)));
        }
        assert!(!buf.is_full());
        assert_eq!(buf.len(), 10_000);
    }

    #[test]
    fn lowered_capacity_keeps_overflow_but_rejects_new() {
        let mut buf = finite(3);
        for label in 0..3 {
            assert!(buf.try_accept(Ball::generated_in(label)));
        }
        buf.set_capacity(Capacity::finite(1).unwrap());
        assert_eq!(buf.len(), 3, "stored balls survive degradation");
        assert!(buf.is_full());
        assert!(!buf.try_accept(Ball::generated_in(9)));
        // Drain below the new bound; acceptance resumes.
        buf.serve();
        buf.serve();
        buf.serve();
        assert!(buf.try_accept(Ball::generated_in(10)));
        assert!(!buf.try_accept(Ball::generated_in(11)));
    }

    #[test]
    fn raised_capacity_opens_room() {
        let mut buf = finite(1);
        assert!(buf.try_accept(Ball::generated_in(1)));
        assert!(!buf.try_accept(Ball::generated_in(2)));
        buf.set_capacity(Capacity::finite(2).unwrap());
        assert!(buf.try_accept(Ball::generated_in(2)));
        buf.set_capacity(Capacity::Infinite);
        assert!(buf.try_accept(Ball::generated_in(3)));
    }

    #[test]
    fn restore_accepts_over_capacity_contents() {
        let balls: Vec<Ball> = (0..5).map(Ball::generated_in).collect();
        let mut buf = BinBuffer::restore(Capacity::finite(2).unwrap(), balls);
        assert_eq!(buf.len(), 5);
        assert!(buf.is_full());
        assert!(!buf.try_accept(Ball::generated_in(9)));
        // FIFO order preserved.
        assert_eq!(buf.serve(), Some(Ball::generated_in(0)));
        assert_eq!(buf.serve(), Some(Ball::generated_in(1)));
    }

    #[test]
    fn new_reserves_full_finite_capacity_up_to_clamp() {
        // A c = 1000 buffer must hold c balls without reallocating: the old
        // 64-slot clamp forced mid-run growth on every large-capacity bin.
        let mut buf = finite(1000);
        let before = buf.queue.capacity();
        assert!(before >= 1000, "reserve {before} below capacity");
        for label in 0..1000 {
            assert!(buf.try_accept(Ball::generated_in(label)));
        }
        assert_eq!(buf.queue.capacity(), before, "filling must not reallocate");
        // The clamp still bounds absurd capacities.
        let huge = finite(1_000_000);
        assert!(huge.queue.capacity() < 10_000);
    }

    #[test]
    fn restore_reserves_for_refill() {
        let balls: Vec<Ball> = (0..5).map(Ball::generated_in).collect();
        let buf = BinBuffer::restore(Capacity::finite(200).unwrap(), balls);
        assert_eq!(buf.len(), 5);
        assert!(
            buf.queue.capacity() >= 200,
            "restored buffer must be able to refill to capacity without reallocating"
        );
    }

    #[test]
    fn as_slices_concatenate_to_fifo_order() {
        let mut buf = finite(3);
        for label in [7, 8, 9] {
            buf.try_accept(Ball::generated_in(label));
        }
        buf.serve();
        buf.try_accept(Ball::generated_in(10)); // forces ring wrap-around
        let (a, b) = buf.as_slices();
        let labels: Vec<u64> = a.iter().chain(b).map(Ball::label).collect();
        assert_eq!(labels, vec![8, 9, 10]);
    }

    #[test]
    fn iter_and_clear() {
        let mut buf = finite(3);
        buf.try_accept(Ball::generated_in(1));
        buf.try_accept(Ball::generated_in(2));
        let labels: Vec<u64> = buf.iter().map(Ball::label).collect();
        assert_eq!(labels, vec![1, 2]);
        buf.clear();
        assert!(buf.is_empty());
    }
}
