//! SWAR and intra-round-parallel variants of the arena round kernel.
//!
//! The flat-arena kernel's per-bin state is already packed for data
//! parallelism: the acceptance register is a `u32` of two `u16` fields
//! (`remaining quota << 16 | ring cursor`), so a `u64` word holds **two
//! bins = four `u16` lanes** — `(cursor₀ | quota₀ | cursor₁ | quota₁)`.
//! This module exploits that three ways, all in safe, std-only Rust (the
//! crate forbids `unsafe`, so there are no intrinsics and no pointer
//! tricks — "SIMD" here is SWAR over `u64` words plus chunked loops the
//! autovectorizer can keep in vector registers):
//!
//! 1. **SWAR meta sweeps** ([`commit_serve_prime_swar`],
//!    [`prime_uniform_range`]): the fused commit + serve + re-prime pass
//!    runs on register *words* — two bins per iteration, one subtraction
//!    computing both post-accept lengths at once — and, on "regular"
//!    windows (every bin online, no bin overfull), **never reads bin
//!    meta**. The whole sweep is derivable from the registers alone:
//!    with `rem` the remaining quota after the scatter, the post-accept
//!    length is `c₀ − rem`, the register cursor *is* the ring tail
//!    (serving advances `head`, not `tail`), and so `head = (cursor −
//!    len) & mask`. Re-priming a served bin is then a per-lane add of
//!    `1 << 16` — `rem′ = c₀ − (len − 1) = rem + 1`.
//! 2. **Lookahead scatter** ([`fast_accept_simd`]): the scatter's
//!    random accesses are the kernel's only cache-unfriendly pass; a
//!    fixed-distance lookahead touch of the register and slot line a few
//!    iterations ahead acts as a safe software prefetch (an
//!    architectural load the out-of-order core can retire early).
//! 3. **Intra-round parallel scatter + serve** ([`parallel_round`]):
//!    bins are partitioned into contiguous ranges (boundaries rounded to
//!    [`PARTITION_ALIGN`] bins so no two workers share a meta/register
//!    cache line), `BinArena::split_slices_mut` hands each
//!    `std::thread::scope` worker exclusive `&mut` windows, every worker
//!    scans the *full* `(ball, choice)` stream read-only and scatters
//!    only its own bins, and a driver-side merge replays the per-worker
//!    reject lists in canonical stream order.
//!
//! # Why the parallel kernel is still bit-exact
//!
//! Bit-identity to the sequential kernel (and hence to the scalar
//! reference, the Central-mode differential oracle) holds because nothing
//! that depends on scheduling ever feeds back into the trajectory:
//!
//! - **Randomness** is drawn once, on the driver, by the same bulk
//!   `fill_uniform_bins` call the sequential kernel makes — workers
//!   consume no RNG. (Per-worker decorrelated streams, as the PerShard
//!   serve mode uses, would change the draw order and break the oracle;
//!   see DESIGN.md §kernel.)
//! - **Acceptance** at a bin depends only on that bin's own request
//!   subsequence, which each worker processes in stream order — the same
//!   greedy oldest-first outcome as the sequential scatter, bin by bin.
//! - **Rejects** are pushed per-worker as `(stream index, ball)` with
//!   ascending indices; the k-way merge by stream index reproduces the
//!   global age order exactly, so the pool refill is identical.
//! - **Serves** happen per-bin in ascending bin order within each
//!   worker, and worker ranges are themselves ascending, so the
//!   concatenated waiting-time lists equal the sequential sweep's.
//! - **Statistics** are folded with commutative/associative reductions
//!   (sums and maxes of `u64`s), independent of completion order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use crate::arena::{self, ArenaSliceMut, BinArena};
use crate::ball::Ball;
use crate::obs;

/// Worker partition boundaries are rounded up to this many bins. 16 bins
/// cover two 64-byte lines of packed meta (8 × u64) and one line of
/// acceptance registers (16 × u32), so adjacent workers never write the
/// same cache line of either array — the false-sharing guard that makes
/// the safe `split_at_mut` partitioning also be the cache-aware one.
pub(crate) const PARTITION_ALIGN: usize = 16;

/// Scatter lookahead distance (iterations). The touched register and
/// slot-line loads act as safe software prefetches for the random
/// accesses `LOOKAHEAD` iterations later.
const LOOKAHEAD: usize = 16;

/// Below this many thrown balls a parallel round runs its partitions
/// inline (same partitioning, same merge — bit-identical), because
/// spawning scoped workers costs more than the scatter saves.
const SPAWN_MIN_THROWN: usize = 1 << 15;

/// A bin index in a request stream — `u32` for the bulk-RNG path,
/// `usize` for pre-drawn choice slices.
pub(crate) trait BinIndex: Copy + Send + Sync {
    /// The index as a `usize`.
    fn bin(self) -> usize;
}

impl BinIndex for u32 {
    #[inline]
    fn bin(self) -> usize {
        self as usize
    }
}

impl BinIndex for usize {
    #[inline]
    fn bin(self) -> usize {
        self
    }
}

/// Serve-sweep outputs, per window or merged: what the process folds
/// into its `RoundReport` and counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SweepStats {
    /// Balls FIFO-served this sweep.
    pub deleted: u64,
    /// Online bins that had nothing to serve.
    pub failed_deletions: u64,
    /// Total post-serve buffered balls.
    pub buffered: u64,
    /// Largest post-serve bin load.
    pub max_load: u64,
    /// Whether the swept window is *regular* after the sweep: every bin
    /// online with post-serve load ≤ c₀ — the precondition for the next
    /// round's register-only SWAR sweep.
    pub regular: bool,
}

impl Default for SweepStats {
    fn default() -> Self {
        SweepStats {
            deleted: 0,
            failed_deletions: 0,
            buffered: 0,
            max_load: 0,
            regular: true,
        }
    }
}

impl SweepStats {
    fn absorb(&mut self, o: SweepStats) {
        self.deleted += o.deleted;
        self.failed_deletions += o.failed_deletions;
        self.buffered += o.buffered;
        self.max_load = self.max_load.max(o.max_load);
        self.regular &= o.regular;
    }
}

/// Writes the acceptance registers of one bin window under a uniform
/// capacity `c0` — `state[b] = (room << 16) | tail` — two bins per
/// iteration (the meta reads are sequential and the two register
/// assemblies independent, so the loop body pipelines as a 2-lane
/// chunk). Offline bins get zero room.
///
/// Returns `None` on the shared fast-path bail conditions (`room >
/// avail` — a capacity above the clamped stride — or a room that would
/// not fit the `u16` quota field), in which case the caller must fall
/// back to the exact-histogram pass; the registers written so far are
/// scratch and harmless. On `Some`, the flag reports whether the window
/// is regular (no offline bins, no bin holding more than `c0` balls) —
/// the precondition for [`commit_serve_prime_swar`].
///
/// Bail-out telemetry is the caller's job (workers must not multi-count
/// a single round's bail).
fn prime_uniform_range(
    part: &ArenaSliceMut<'_>,
    offline: &[bool],
    state: &mut [u32],
    c0: u32,
) -> Option<bool> {
    let stride = part.stride;
    let mask = stride - 1;
    let n = state.len();
    debug_assert_eq!(part.meta.len(), n);
    debug_assert_eq!(offline.len(), n);
    let c0us = c0 as usize;
    let mut regular = true;
    let mut bailed = false;
    let mut b = 0usize;
    let mut meta_pairs = part.meta.chunks_exact(2);
    let mut state_pairs = state.chunks_exact_mut(2);
    for (mp, sp) in (&mut meta_pairs).zip(&mut state_pairs) {
        for lane in 0..2 {
            let (head, len) = arena::unpack(mp[lane]);
            let off = offline[b + lane];
            let room = if off { 0 } else { c0us.saturating_sub(len) };
            // Accumulated branchlessly; one test after the loop.
            bailed |= room > stride - len || room > u16::MAX as usize;
            regular &= !off && len <= c0us;
            sp[lane] = ((room as u32) << 16) | (((head + len) & mask) as u32);
        }
        b += 2;
    }
    for (&m, s) in meta_pairs
        .remainder()
        .iter()
        .zip(state_pairs.into_remainder())
    {
        let (head, len) = arena::unpack(m);
        let off = offline[b];
        let room = if off { 0 } else { c0us.saturating_sub(len) };
        bailed |= room > stride - len || room > u16::MAX as usize;
        regular &= !off && len <= c0us;
        *s = ((room as u32) << 16) | (((head + len) & mask) as u32);
        b += 1;
    }
    if bailed {
        return None;
    }
    Some(regular)
}

/// The register-only fused commit + serve + re-prime sweep over a
/// *regular* window (see [`prime_uniform_range`]): two bins per `u64`
/// word, meta write-only. The derivations making this sound are in the
/// module docs; the `debug_assert`s below re-check them per lane (kept
/// hot in CI by the `-C debug-assertions` differential leg).
///
/// Bit-exact to the scalar sweep in `CappedProcess::run_round_into`:
/// identical serve order, waiting times, statistics, and re-primed
/// registers.
pub(crate) fn commit_serve_prime_swar(
    part: &mut ArenaSliceMut<'_>,
    state: &mut [u32],
    c0: u32,
    round: u64,
    waits: &mut Vec<u64>,
) -> SweepStats {
    let stride = part.stride;
    let mask = (stride - 1) as u32;
    let n = state.len();
    debug_assert_eq!(part.meta.len(), n);
    let c0u = c0 as u64;
    // Both quota lanes of a register word.
    const QMASK: u64 = 0xFFFF_0000_FFFF_0000;
    let c0both = (c0u << 16) | (c0u << 48);
    let mut stats = SweepStats::default();
    let mut b = 0usize;
    let mut pairs = state.chunks_exact_mut(2);
    for sp in &mut pairs {
        // The 4×u16 word: (cursor₀ | rem₀ | cursor₁ | rem₁).
        let w = (sp[0] as u64) | ((sp[1] as u64) << 32);
        // Both post-accept lengths in one subtraction: len = c₀ − rem in
        // each quota lane. No borrow crosses into a cursor lane because
        // rem ≤ c₀ in a regular window.
        debug_assert!((w >> 16) & 0xFFFF <= c0u && (w >> 48) <= c0u);
        let lens = c0both.wrapping_sub(w & QMASK) & QMASK;
        if lens == 0 {
            // Both bins empty: nothing to commit or serve, and the
            // registers already hold next round's (c₀ << 16 | tail).
            stats.failed_deletions += 2;
            b += 2;
            continue;
        }
        let mut reprime = 0u64;
        for lane in 0..2 {
            let shift = 32 * lane;
            let len_post = ((lens >> (16 + shift)) & 0xFFFF) as u32;
            if len_post == 0 {
                stats.failed_deletions += 1;
                continue;
            }
            let cur = ((w >> shift) & 0xFFFF) as u32;
            let head = cur.wrapping_sub(len_post) & mask;
            let bb = b + lane;
            debug_assert_eq!(
                arena::unpack(part.meta[bb]).0,
                head as usize,
                "regular-window head derivation out of sync with meta"
            );
            let ball = part.slots[bb * stride + head as usize];
            waits.push(ball.age_at(round));
            let len = len_post - 1;
            part.meta[bb] = arena::pack(((head + 1) & mask) as usize, len as usize);
            reprime += 1 << (16 + shift);
            stats.deleted += 1;
            stats.buffered += u64::from(len);
            stats.max_load = stats.max_load.max(u64::from(len));
        }
        let w = w + reprime;
        sp[0] = w as u32;
        sp[1] = (w >> 32) as u32;
        b += 2;
    }
    for s in pairs.into_remainder() {
        let rem = *s >> 16;
        debug_assert!(rem <= c0);
        let len_post = c0 - rem;
        if len_post == 0 {
            stats.failed_deletions += 1;
            continue;
        }
        let cur = *s & 0xFFFF;
        let head = cur.wrapping_sub(len_post) & mask;
        debug_assert_eq!(arena::unpack(part.meta[b]).0, head as usize);
        let ball = part.slots[b * stride + head as usize];
        waits.push(ball.age_at(round));
        let len = len_post - 1;
        part.meta[b] = arena::pack(((head + 1) & mask) as usize, len as usize);
        *s += 1 << 16;
        stats.deleted += 1;
        stats.buffered += u64::from(len);
        stats.max_load = stats.max_load.max(u64::from(len));
    }
    stats
}

/// The general fused commit + serve + re-prime sweep over a window that
/// may hold offline or overfull bins — the windowed form of the scalar
/// uniform sweep in `CappedProcess::run_round_into`, bit-exact to it.
/// Recomputes the window's regularity for the next round.
pub(crate) fn commit_serve_prime_general(
    part: &mut ArenaSliceMut<'_>,
    offline: &[bool],
    state: &mut [u32],
    c0: u32,
    round: u64,
    waits: &mut Vec<u64>,
) -> SweepStats {
    let stride = part.stride;
    let mask = stride - 1;
    let c0us = c0 as usize;
    let mut stats = SweepStats::default();
    for (b, s) in state.iter_mut().enumerate() {
        let (head, len_pre) = arena::unpack(part.meta[b]);
        if offline[b] {
            // A crashed bin neither serves nor counts as a failed
            // deletion *attempt* — it makes none. Its register had zero
            // room; re-arm it with zero room again.
            debug_assert_eq!(*s >> 16, 0);
            *s = ((head + len_pre) & mask) as u32;
            stats.buffered += len_pre as u64;
            stats.max_load = stats.max_load.max(len_pre as u64);
            stats.regular = false;
            continue;
        }
        let taken = c0us.saturating_sub(len_pre) - (*s >> 16) as usize;
        let len = len_pre + taken;
        debug_assert!(len <= stride, "commit past ring bounds");
        if len == 0 {
            stats.failed_deletions += 1;
            *s = (c0 << 16) | (head as u32);
            continue;
        }
        let ball = part.slots[b * stride + head];
        waits.push(ball.age_at(round));
        stats.deleted += 1;
        let head = (head + 1) & mask;
        let len = len - 1;
        part.meta[b] = arena::pack(head, len);
        let tail = ((head + len) & mask) as u32;
        // `saturating_sub`: an overfull bin (degraded-checkpoint restore)
        // legally holds more than c₀ balls and must re-arm with zero
        // room, not an underflowed quota.
        *s = (c0.saturating_sub(len as u32) << 16) | tail;
        stats.buffered += len as u64;
        stats.max_load = stats.max_load.max(len as u64);
        stats.regular &= len <= c0us;
    }
    stats
}

/// The scatter pass over a whole arena: one register read-modify-write
/// per request plus the lookahead touch (see the module docs). Rejects
/// go straight to `rejected` in stream order.
fn scatter_all<C: BinIndex>(
    part: &mut ArenaSliceMut<'_>,
    state: &mut [u32],
    balls: &[Ball],
    choices: &[C],
    rejected: &mut Vec<Ball>,
) -> u64 {
    let stride = part.stride;
    let mask = (stride - 1) as u32;
    let m = balls.len();
    debug_assert_eq!(choices.len(), m);
    let mut accepted = 0u64;
    for i in 0..m {
        if LOOKAHEAD != 0 && i + LOOKAHEAD < m {
            let bf = choices[i + LOOKAHEAD].bin();
            std::hint::black_box(state[bf]);
            std::hint::black_box(part.slots[bf * stride]);
        }
        let b = choices[i].bin();
        let s = state[b];
        if s >= 1 << 16 {
            let cur = (s & 0xFFFF) as usize;
            part.slots[b * stride + cur] = balls[i];
            state[b] = ((s >> 16) - 1) << 16 | ((cur as u32 + 1) & mask);
            accepted += 1;
        } else {
            rejected.push(balls[i]);
        }
    }
    accepted
}

/// A worker's scatter: scans the full stream but touches only the bins
/// of its window (`first ..= first + window`), pushing its rejects as
/// `(stream index, ball)` — ascending by construction, ready for the
/// canonical k-way merge.
fn scatter_window<C: BinIndex>(
    part: &mut ArenaSliceMut<'_>,
    state: &mut [u32],
    first: usize,
    balls: &[Ball],
    choices: &[C],
    rejects: &mut Vec<(u32, Ball)>,
) -> u64 {
    let stride = part.stride;
    let mask = (stride - 1) as u32;
    let lim = state.len();
    let m = balls.len();
    debug_assert_eq!(choices.len(), m);
    let mut accepted = 0u64;
    for i in 0..m {
        if LOOKAHEAD != 0 && i + LOOKAHEAD < m {
            let bf = choices[i + LOOKAHEAD].bin().wrapping_sub(first);
            if bf < lim {
                std::hint::black_box(state[bf]);
                std::hint::black_box(part.slots[bf * stride]);
            }
        }
        let b = choices[i].bin().wrapping_sub(first);
        if b >= lim {
            continue; // another worker's bin
        }
        let s = state[b];
        if s >= 1 << 16 {
            let cur = (s & 0xFFFF) as usize;
            part.slots[b * stride + cur] = balls[i];
            state[b] = ((s >> 16) - 1) << 16 | ((cur as u32 + 1) & mask);
            accepted += 1;
        } else {
            rejects.push((i as u32, balls[i]));
        }
    }
    accepted
}

/// SWAR/lookahead variant of [`arena::fast_accept`] for the sequential
/// `ArenaSimd` path (and small/1-thread `ArenaParallel` rounds on
/// non-uniform profiles). Uniform-capacity profiles get the chunked
/// register-prime sweep and the lookahead scatter; non-uniform profiles
/// delegate to the scalar fast path unchanged (their init must stream
/// `caps` anyway). Same contract as `fast_accept`: `None` bails without
/// consuming the stream, `Some` leaves ring lengths uncommitted, and
/// `*regular` reports whether the arena qualifies for the register-only
/// SWAR serve sweep.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fast_accept_simd<C: BinIndex>(
    arena_: &mut BinArena,
    offline: &[bool],
    state: &mut Vec<u32>,
    quotas: &mut Vec<u32>,
    balls: &[Ball],
    choices: &[C],
    rejected: &mut Vec<Ball>,
    primed: bool,
    regular: &mut bool,
) -> Option<u64> {
    let n = offline.len();
    debug_assert_eq!(n, arena_.bins());
    debug_assert_eq!(balls.len(), choices.len());
    let Some(c0) = arena_.uniform_cap() else {
        *regular = false;
        return arena::fast_accept(
            arena_,
            offline,
            state,
            quotas,
            balls.len(),
            choices.iter().map(|c| c.bin()).zip(balls.iter().copied()),
            rejected,
            primed,
        );
    };
    if arena_.stride() > 1 << 15 {
        *regular = false;
        return arena::bail(); // register fields are u16
    }
    if primed {
        debug_assert_eq!(state.len(), n);
    } else {
        let prime_timer = iba_obs::PhaseTimer::start();
        state.resize(n, 0);
        let part = arena_.as_slice_mut();
        match prime_uniform_range(&part, offline, state, c0) {
            Some(r) => *regular = r,
            None => {
                *regular = false;
                return arena::bail();
            }
        }
        if let Some(p) = obs::probes() {
            prime_timer.observe(&p.phase_prime_nanos);
        }
    }
    let scatter_timer = iba_obs::PhaseTimer::start();
    let mut part = arena_.as_slice_mut();
    let accepted = scatter_all(&mut part, state, balls, choices, rejected);
    if let Some(p) = obs::probes() {
        scatter_timer.observe(&p.phase_scatter_nanos);
        p.fast_accept_rounds.inc();
    }
    Some(accepted)
}

/// Per-worker round-persistent scratch of the parallel kernel.
#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerScratch {
    /// This round's rejects, `(stream index, ball)`, ascending.
    rejects: Vec<(u32, Ball)>,
    /// Merge cursor into `rejects`.
    cursor: usize,
    /// This round's waiting times, ascending bin order within the window.
    waits: Vec<u64>,
    /// Balls this worker accepted.
    accepted: u64,
    /// This worker's serve-sweep outputs.
    stats: SweepStats,
    /// Whether this worker's window was regular at accept time.
    regular: bool,
}

/// One worker's job: exclusive windows plus shared read-only stream.
struct Job<'a, 'b, C: BinIndex> {
    part: ArenaSliceMut<'a>,
    state: &'a mut [u32],
    offline: &'a [bool],
    ws: &'a mut WorkerScratch,
    first: usize,
    balls: &'b [Ball],
    choices: &'b [C],
}

impl<C: BinIndex> Job<'_, '_, C> {
    /// Prime (cold rounds) + scatter. Returns `false` on a prime bail.
    fn accept_phase(&mut self, primed: bool, regular_in: bool, c0: u32) -> bool {
        self.ws.accepted = 0;
        self.ws.stats = SweepStats::default();
        if primed {
            self.ws.regular = regular_in;
        } else {
            match prime_uniform_range(&self.part, self.offline, self.state, c0) {
                Some(r) => self.ws.regular = r,
                None => return false,
            }
        }
        self.ws.accepted = scatter_window(
            &mut self.part,
            self.state,
            self.first,
            self.balls,
            self.choices,
            &mut self.ws.rejects,
        );
        true
    }

    /// Fused commit + serve + re-prime over the window. `all_regular` is
    /// the cross-worker AND of the accept-phase regular flags — the SWAR
    /// sweep is only entered when *every* window qualifies, so the global
    /// regular flag the driver keeps stays one bit.
    fn serve_phase(&mut self, all_regular: bool, c0: u32, round: u64) {
        self.ws.stats = if all_regular {
            commit_serve_prime_swar(&mut self.part, self.state, c0, round, &mut self.ws.waits)
        } else {
            commit_serve_prime_general(
                &mut self.part,
                self.offline,
                self.state,
                c0,
                round,
                &mut self.ws.waits,
            )
        };
    }
}

/// Merged outputs of a parallel round (accept *and* serve are done; the
/// caller only folds these into its report and counters).
#[derive(Debug)]
pub(crate) struct ParallelOutcome {
    /// Balls accepted across all workers.
    pub accepted: u64,
    /// Merged serve statistics; `regular` is next round's flag.
    pub stats: SweepStats,
}

/// One full accept + serve round of the partitioned parallel kernel over
/// a uniform-capacity arena. Returns `None` (bit-exactly nothing
/// committed or served — the caller falls back to the exact-histogram
/// pass and its own serve sweep) if any worker hit a fast-path bail
/// condition. See the module docs for the determinism argument.
///
/// `threads` is the target worker count; rounds below
/// [`SPAWN_MIN_THROWN`] thrown balls run the same partitions inline.
/// Waiting times are appended to `waits` in global bin order; merged
/// rejects to `rejected` in global age (stream) order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_round<C: BinIndex>(
    arena_: &mut BinArena,
    offline: &[bool],
    state: &mut Vec<u32>,
    workers: &mut Vec<WorkerScratch>,
    threads: usize,
    primed: bool,
    regular_in: bool,
    round: u64,
    balls: &[Ball],
    choices: &[C],
    rejected: &mut Vec<Ball>,
    waits: &mut Vec<u64>,
) -> Option<ParallelOutcome> {
    let n = offline.len();
    debug_assert_eq!(n, arena_.bins());
    let Some(c0) = arena_.uniform_cap() else {
        unreachable!("parallel_round is gated on a uniform capacity profile");
    };
    if arena_.stride() > 1 << 15 {
        let _ = arena::bail();
        return None;
    }

    // Partition into ≤ `threads` contiguous ranges on PARTITION_ALIGN
    // boundaries (see its docs for the cache-line argument).
    let per = n.div_ceil(threads.max(1)).next_multiple_of(PARTITION_ALIGN);
    let mut bounds = Vec::with_capacity(threads.max(1));
    let mut at = 0usize;
    while at < n {
        at = (at + per).min(n);
        bounds.push(at);
    }
    let w = bounds.len();
    if workers.len() < w {
        workers.resize_with(w, WorkerScratch::default);
    }
    for ws in workers.iter_mut() {
        ws.rejects.clear();
        ws.cursor = 0;
        ws.waits.clear();
    }
    if state.len() != n {
        debug_assert!(!primed);
        state.resize(n, 0);
    }

    // Safe exclusive windows: arena slots/meta, registers, offline mask.
    let parts = arena_.split_slices_mut(&bounds);
    let mut jobs: Vec<Job<'_, '_, C>> = Vec::with_capacity(w);
    let mut state_rest: &mut [u32] = state;
    let mut first = 0usize;
    for (part, ws) in parts.into_iter().zip(workers.iter_mut()) {
        let take = part.meta.len();
        let (st, rest) = state_rest.split_at_mut(take);
        state_rest = rest;
        jobs.push(Job {
            part,
            state: st,
            offline: &offline[first..first + take],
            ws,
            first,
            balls,
            choices,
        });
        first += take;
    }

    let scatter_timer = iba_obs::PhaseTimer::start();
    let spawn = w > 1 && balls.len() >= SPAWN_MIN_THROWN;
    let bailed;
    if spawn {
        let barrier = Barrier::new(w);
        let bail_flag = AtomicBool::new(false);
        let irregular = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let barrier = &barrier;
            let bail_flag = &bail_flag;
            let irregular = &irregular;
            for mut job in jobs {
                scope.spawn(move || {
                    if !job.accept_phase(primed, regular_in, c0) {
                        bail_flag.store(true, Ordering::Relaxed);
                    } else if !job.ws.regular {
                        irregular.store(true, Ordering::Relaxed);
                    }
                    // Every worker must finish (or abandon) its scatter
                    // before any serve commits state, and the SWAR-vs-
                    // general serve choice needs the cross-worker flags.
                    barrier.wait();
                    if bail_flag.load(Ordering::Relaxed) {
                        return; // uncommitted scatter writes are scratch
                    }
                    job.serve_phase(!irregular.load(Ordering::Relaxed), c0, round);
                });
            }
        });
        bailed = bail_flag.load(Ordering::Relaxed);
    } else {
        let mut ok = true;
        for job in jobs.iter_mut() {
            ok &= job.accept_phase(primed, regular_in, c0);
        }
        if ok {
            let all_regular = jobs.iter().all(|j| j.ws.regular);
            for job in jobs.iter_mut() {
                job.serve_phase(all_regular, c0, round);
            }
        }
        bailed = !ok;
        drop(jobs);
    }
    if bailed {
        let _ = arena::bail();
        return None;
    }
    if let Some(p) = obs::probes() {
        scatter_timer.observe(&p.phase_scatter_nanos);
        p.fast_accept_rounds.inc();
        if spawn {
            p.parallel_rounds.inc();
        }
    }

    // Deterministic merge: commutative stat folds, waits concatenated in
    // worker (= global bin) order, rejects k-way-merged back into exact
    // stream order by their indices.
    let merge_timer = iba_obs::PhaseTimer::start();
    let mut accepted = 0u64;
    let mut stats = SweepStats::default();
    for ws in workers[..w].iter() {
        accepted += ws.accepted;
        stats.absorb(ws.stats);
        waits.extend_from_slice(&ws.waits);
    }
    if w == 1 {
        rejected.extend(workers[0].rejects.iter().map(|&(_, ball)| ball));
    } else {
        let total: usize = workers[..w].iter().map(|ws| ws.rejects.len()).sum();
        rejected.reserve(total);
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (i, ws) in workers[..w].iter().enumerate() {
                if let Some(&(si, _)) = ws.rejects.get(ws.cursor) {
                    if best.is_none_or(|(bs, _)| si < bs) {
                        best = Some((si, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let ws = &mut workers[i];
            rejected.push(ws.rejects[ws.cursor].1);
            ws.cursor += 1;
        }
    }
    if let Some(p) = obs::probes() {
        merge_timer.observe(&p.phase_merge_nanos);
    }
    Some(ParallelOutcome { accepted, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Capacity;

    fn uniform_arena(n: usize, c: u32) -> BinArena {
        BinArena::new(vec![Capacity::finite(c).unwrap(); n])
    }

    /// Runs one full fast round (prime + scatter + SWAR sweep) on a
    /// fresh arena and cross-checks against the plain sequential kernel
    /// primitives.
    #[test]
    fn swar_round_matches_scalar_primitives() {
        let n = 37; // odd: exercises the remainder lanes
        let c = 3u32;
        let round = 5u64;
        let balls: Vec<Ball> = (0..200).map(|i| Ball::generated_in(i % 5)).collect();
        let choices: Vec<u32> = (0..200u32).map(|i| (i * 7) % n as u32).collect();
        let offline = vec![false; n];

        // SWAR path.
        let mut a = uniform_arena(n, c);
        let mut state = Vec::new();
        let mut quotas = Vec::new();
        let mut rej_a = Vec::new();
        let mut regular = false;
        let acc_a = fast_accept_simd(
            &mut a,
            &offline,
            &mut state,
            &mut quotas,
            &balls,
            &choices,
            &mut rej_a,
            false,
            &mut regular,
        )
        .expect("no bail on a fresh uniform arena");
        assert!(regular);
        let mut waits_a = Vec::new();
        let stats =
            commit_serve_prime_swar(&mut a.as_slice_mut(), &mut state, c, round, &mut waits_a);
        assert!(stats.regular);

        // Reference path.
        let mut b = uniform_arena(n, c);
        let mut state_b = Vec::new();
        let mut quotas_b = Vec::new();
        let mut rej_b = Vec::new();
        let acc_b = arena::fast_accept(
            &mut b,
            &offline,
            &mut state_b,
            &mut quotas_b,
            balls.len(),
            choices
                .iter()
                .map(|&c| c as usize)
                .zip(balls.iter().copied()),
            &mut rej_b,
            false,
        )
        .expect("no bail");
        let mut waits_b = Vec::new();
        let mut failed_b = 0u64;
        for (bin, reg) in state_b.iter().enumerate().take(n) {
            let (served, _, _) = b.commit_serve_uniform(bin, c, reg >> 16);
            match served {
                Some(ball) => waits_b.push(ball.age_at(round)),
                None => failed_b += 1,
            }
        }

        assert_eq!(acc_a, acc_b);
        assert_eq!(rej_a, rej_b);
        assert_eq!(waits_a, waits_b);
        assert_eq!(stats.deleted, waits_b.len() as u64);
        assert_eq!(stats.failed_deletions, failed_b);
        for bin in 0..n {
            assert_eq!(a.len(bin), b.len(bin), "bin {bin} length diverged");
            assert_eq!(
                a.iter_bin(bin).collect::<Vec<_>>(),
                b.iter_bin(bin).collect::<Vec<_>>(),
                "bin {bin} contents diverged"
            );
        }
        // Re-primed registers must match what the reference priming
        // sweep would write from the post-serve meta.
        let mut fresh = Vec::new();
        let reg = prime_uniform_range(
            &a.as_slice_mut(),
            &offline,
            {
                fresh.resize(n, 0);
                &mut fresh
            },
            c,
        )
        .expect("regular arena");
        assert!(reg);
        assert_eq!(state, fresh);
    }

    /// The parallel round (inline partitions and any thread count) is
    /// bit-identical to the sequential SWAR round.
    #[test]
    fn parallel_round_matches_sequential_for_any_worker_count() {
        let n = 100;
        let c = 2u32;
        let balls: Vec<Ball> = (0..400).map(|i| Ball::generated_in(i % 7)).collect();
        let choices: Vec<u32> = (0..400u32).map(|i| (i * 13) % n as u32).collect();
        let offline = vec![false; n];
        let round = 9u64;

        // Sequential reference.
        let mut a = uniform_arena(n, c);
        let mut state_a = Vec::new();
        let mut quotas = Vec::new();
        let mut rej_a = Vec::new();
        let mut regular = false;
        let acc_a = fast_accept_simd(
            &mut a,
            &offline,
            &mut state_a,
            &mut quotas,
            &balls,
            &choices,
            &mut rej_a,
            false,
            &mut regular,
        )
        .unwrap();
        let mut waits_a = Vec::new();
        let stats_a =
            commit_serve_prime_swar(&mut a.as_slice_mut(), &mut state_a, c, round, &mut waits_a);

        for threads in 1..=8 {
            let mut b = uniform_arena(n, c);
            let mut state_b = Vec::new();
            let mut workers = Vec::new();
            let mut rej_b = Vec::new();
            let mut waits_b = Vec::new();
            let out = parallel_round(
                &mut b,
                &offline,
                &mut state_b,
                &mut workers,
                threads,
                false,
                false,
                round,
                &balls,
                &choices,
                &mut rej_b,
                &mut waits_b,
            )
            .expect("no bail");
            assert_eq!(out.accepted, acc_a, "threads={threads}");
            assert_eq!(rej_b, rej_a, "threads={threads}");
            assert_eq!(waits_b, waits_a, "threads={threads}");
            assert_eq!(out.stats.deleted, stats_a.deleted);
            assert_eq!(out.stats.failed_deletions, stats_a.failed_deletions);
            assert_eq!(out.stats.buffered, stats_a.buffered);
            assert_eq!(out.stats.max_load, stats_a.max_load);
            assert_eq!(state_b, state_a, "threads={threads}");
            for bin in 0..n {
                assert_eq!(
                    a.iter_bin(bin).collect::<Vec<_>>(),
                    b.iter_bin(bin).collect::<Vec<_>>(),
                    "threads={threads} bin {bin}"
                );
            }
        }
    }

    /// Offline and overfull bins force the general sweep and clear the
    /// regular flag; the sweep still re-arms every register correctly.
    #[test]
    fn general_sweep_handles_offline_and_overfull_windows() {
        let n = 8;
        let c = 2u32;
        // Bin 3 overfull (4 > c), bin 5 offline.
        let mut contents = vec![Vec::new(); n];
        contents[3] = (0..4).map(Ball::generated_in).collect();
        let mut a = BinArena::from_bins(vec![Capacity::finite(c).unwrap(); n], contents);
        let mut offline = vec![false; n];
        offline[5] = true;

        let mut state = vec![0u32; n];
        let reg =
            prime_uniform_range(&a.as_slice_mut(), &offline, &mut state, c).expect("fits the ring");
        assert!(!reg, "overfull + offline windows are not regular");
        assert_eq!(state[3] >> 16, 0, "overfull bin gets zero room");
        assert_eq!(state[5] >> 16, 0, "offline bin gets zero room");

        let mut waits = Vec::new();
        let stats = commit_serve_prime_general(
            &mut a.as_slice_mut(),
            &offline,
            &mut state,
            c,
            7,
            &mut waits,
        );
        assert!(!stats.regular, "still overfull after one serve");
        assert_eq!(stats.deleted, 1, "only the overfull bin had a ball");
        assert_eq!(a.len(3), 3);
        assert_eq!(state[3] >> 16, 0, "3 > c₀: still zero room, no underflow");
        assert_eq!(
            stats.failed_deletions,
            (n - 2) as u64,
            "all empty online bins fail to serve; the offline bin is not counted"
        );
    }
}
