//! The pool of balls awaiting allocation.

use iba_sim::stats::Histogram;

use crate::ball::Ball;

/// The pool `M(t)`: all balls that have been generated but not yet accepted
/// by any bin.
///
/// The pool maintains the invariant that balls are ordered oldest-first
/// (non-decreasing labels). This invariant is what makes the per-round
/// allocation loop equivalent to Algorithm 1's "accept the oldest
/// min{c − ℓ, ν} requests": processing balls in global age order and
/// accepting greedily yields, at every bin, exactly its oldest requests up
/// to remaining capacity.
///
/// # Examples
///
/// ```
/// use iba_core::Pool;
/// let mut pool = Pool::new();
/// pool.push_generation(1, 3); // three balls labeled 1
/// pool.push_generation(2, 2); // two balls labeled 2
/// assert_eq!(pool.len(), 5);
/// assert_eq!(pool.oldest_label(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pool {
    balls: Vec<Ball>,
}

impl Pool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Pool::default()
    }

    /// Creates an empty pool with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Pool {
            balls: Vec::with_capacity(capacity),
        }
    }

    /// Number of pooled balls `m(t)`.
    pub fn len(&self) -> usize {
        self.balls.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.balls.is_empty()
    }

    /// Appends `count` balls generated in round `round`.
    ///
    /// # Panics
    ///
    /// Panics if this would violate the oldest-first invariant, i.e. if a
    /// ball with a larger label is already pooled.
    pub fn push_generation(&mut self, round: u64, count: u64) {
        if let Some(last) = self.balls.last() {
            assert!(
                last.label() <= round,
                "pool already contains younger balls (label {}) than round {round}",
                last.label()
            );
        }
        self.balls.extend(std::iter::repeat_n(
            Ball::generated_in(round),
            count as usize,
        ));
    }

    /// Removes and returns all pooled balls (oldest first) for the
    /// allocation stage. Rejected balls are returned via
    /// [`restore`](Self::restore).
    pub fn take(&mut self) -> Vec<Ball> {
        std::mem::take(&mut self.balls)
    }

    /// Puts rejected balls back into the pool.
    ///
    /// # Panics
    ///
    /// Panics if the pool is not empty (restore must follow [`take`])
    /// or if `rejected` is not sorted oldest-first.
    ///
    /// [`take`]: Self::take
    pub fn restore(&mut self, rejected: Vec<Ball>) {
        assert!(
            self.balls.is_empty(),
            "restore must follow take within the same round"
        );
        debug_assert!(
            rejected.windows(2).all(|w| w[0].label() <= w[1].label()),
            "rejected balls must be ordered oldest-first"
        );
        self.balls = rejected;
    }

    /// Label of the oldest pooled ball, if any.
    pub fn oldest_label(&self) -> Option<u64> {
        self.balls.first().map(Ball::label)
    }

    /// Label of the youngest pooled ball, if any.
    pub fn youngest_label(&self) -> Option<u64> {
        self.balls.last().map(Ball::label)
    }

    /// Iterates over pooled balls, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Ball> {
        self.balls.iter()
    }

    /// Whether the oldest-first invariant holds (always true unless the
    /// pool was corrupted through a bug; used by property tests).
    pub fn is_age_sorted(&self) -> bool {
        self.balls.windows(2).all(|w| w[0].label() <= w[1].label())
    }

    /// Number of pooled balls generated in round `t` or earlier — the
    /// survivor count `m(t, t')` from the paper's waiting-time analysis,
    /// evaluated at the current state.
    pub fn survivors_from(&self, t: u64) -> usize {
        // Balls are sorted by label; binary-search the first label > t.
        self.balls.partition_point(|b| b.label() <= t)
    }

    /// Histogram of ball ages at round `round`.
    pub fn age_histogram(&self, round: u64) -> Histogram {
        self.balls.iter().map(|b| b.age_at(round)).collect()
    }
}

impl FromIterator<Ball> for Pool {
    /// Collects balls into a pool, sorting them oldest-first.
    fn from_iter<I: IntoIterator<Item = Ball>>(iter: I) -> Self {
        let mut balls: Vec<Ball> = iter.into_iter().collect();
        balls.sort();
        Pool { balls }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_generation_appends_in_order() {
        let mut pool = Pool::new();
        pool.push_generation(1, 2);
        pool.push_generation(3, 1);
        assert_eq!(pool.len(), 3);
        assert!(pool.is_age_sorted());
        assert_eq!(pool.oldest_label(), Some(1));
        assert_eq!(pool.youngest_label(), Some(3));
    }

    #[test]
    fn push_generation_zero_is_noop() {
        let mut pool = Pool::new();
        pool.push_generation(1, 0);
        assert!(pool.is_empty());
    }

    #[test]
    #[should_panic(expected = "younger balls")]
    fn push_generation_rejects_out_of_order() {
        let mut pool = Pool::new();
        pool.push_generation(5, 1);
        pool.push_generation(4, 1);
    }

    #[test]
    fn take_restore_roundtrip() {
        let mut pool = Pool::new();
        pool.push_generation(1, 3);
        let balls = pool.take();
        assert!(pool.is_empty());
        assert_eq!(balls.len(), 3);
        pool.restore(balls);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    #[should_panic(expected = "must follow take")]
    fn restore_into_nonempty_pool_panics() {
        let mut pool = Pool::new();
        pool.push_generation(1, 1);
        pool.restore(vec![Ball::generated_in(0)]);
    }

    #[test]
    fn survivors_counts_by_label() {
        let mut pool = Pool::new();
        pool.push_generation(1, 2);
        pool.push_generation(2, 3);
        pool.push_generation(4, 1);
        assert_eq!(pool.survivors_from(0), 0);
        assert_eq!(pool.survivors_from(1), 2);
        assert_eq!(pool.survivors_from(2), 5);
        assert_eq!(pool.survivors_from(3), 5);
        assert_eq!(pool.survivors_from(10), 6);
    }

    #[test]
    fn age_histogram_at_round() {
        let mut pool = Pool::new();
        pool.push_generation(1, 1);
        pool.push_generation(3, 2);
        let h = pool.age_histogram(4);
        assert_eq!(h.count(), 3);
        assert_eq!(h.count_at(3), 1); // ball labeled 1
        assert_eq!(h.count_at(1), 2); // balls labeled 3
    }

    #[test]
    fn from_iterator_sorts() {
        let pool: Pool = [3u64, 1, 2].into_iter().map(Ball::generated_in).collect();
        assert!(pool.is_age_sorted());
        assert_eq!(pool.oldest_label(), Some(1));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let pool = Pool::with_capacity(128);
        assert!(pool.is_empty());
        assert_eq!(pool.oldest_label(), None);
    }
}
