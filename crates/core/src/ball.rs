//! Balls: the requests flowing through the allocation process.

use std::fmt;

/// A ball (request), identified by its *label*: the round in which it was
/// generated (Section II of the paper).
///
/// The *age* of a ball in round `t` is `t − label`; the *waiting time* of a
/// ball deleted in round `t` is its age in that round. Balls generated in
/// the same round are interchangeable ("ties broken arbitrarily"), so the
/// label is the only state a ball carries.
///
/// # Examples
///
/// ```
/// use iba_core::Ball;
/// let b = Ball::generated_in(10);
/// assert_eq!(b.label(), 10);
/// assert_eq!(b.age_at(13), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ball {
    label: u64,
}

impl Ball {
    /// Creates a ball generated in round `label`.
    pub fn generated_in(label: u64) -> Self {
        Ball { label }
    }

    /// The generation round of this ball.
    pub fn label(&self) -> u64 {
        self.label
    }

    /// Age of the ball in round `round`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `round` precedes the generation round —
    /// a ball cannot be observed before it exists.
    pub fn age_at(&self, round: u64) -> u64 {
        debug_assert!(
            round >= self.label,
            "ball labeled {} observed in earlier round {round}",
            self.label
        );
        round.saturating_sub(self.label)
    }

    /// Whether this ball is at least as old as `other` (older balls have
    /// smaller labels and are preferred by the acceptance rule).
    pub fn at_least_as_old_as(&self, other: &Ball) -> bool {
        self.label <= other.label
    }
}

impl fmt::Display for Ball {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ball@{}", self.label)
    }
}

impl From<u64> for Ball {
    fn from(label: u64) -> Self {
        Ball::generated_in(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_and_age() {
        let b = Ball::generated_in(5);
        assert_eq!(b.label(), 5);
        assert_eq!(b.age_at(5), 0);
        assert_eq!(b.age_at(9), 4);
    }

    #[test]
    fn ordering_is_by_label() {
        let old = Ball::generated_in(1);
        let young = Ball::generated_in(2);
        assert!(old < young);
        assert!(old.at_least_as_old_as(&young));
        assert!(old.at_least_as_old_as(&old));
        assert!(!young.at_least_as_old_as(&old));
    }

    #[test]
    fn conversion_and_display() {
        let b: Ball = 7u64.into();
        assert_eq!(b.label(), 7);
        assert_eq!(b.to_string(), "ball@7");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "earlier round")]
    fn age_before_generation_panics_in_debug() {
        Ball::generated_in(10).age_at(9);
    }
}
