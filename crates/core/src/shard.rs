//! Per-shard bin state: the sequential kernel of a sharded CAPPED service.
//!
//! A [`BinShard`] owns a contiguous range of bins — their FIFO buffers and
//! fault masks — and executes the bin-local half of one CAPPED(c, λ) round:
//! the greedy oldest-first acceptance stage ([`accept`](BinShard::accept))
//! and the FIFO deletion stage ([`serve`](BinShard::serve)). It is the
//! single-threaded building block the `iba-serve` dispatch service runs one
//! per worker thread; composing `S` shards over a partition of `0..n`
//! reproduces [`CappedProcess`](crate::process::CappedProcess) exactly:
//!
//! - acceptance at a bin depends only on that bin's load and the age order
//!   of the requests *to that bin*, so routing an age-ordered request
//!   stream to shards preserves Algorithm 1's "accept the oldest
//!   min{c − ℓ, ν}" rule at every bin;
//! - the deletion stage is bin-local by definition.
//!
//! The bit-exact equivalence of the composition is property-tested in this
//! module and anchored end-to-end by the `iba-serve` differential tests.

use std::ops::Range;

use crate::arena::{
    commit_accepts, commit_accepts_uniform, counting_accept, fast_accept, BinStore, BinView,
};
use crate::ball::Ball;
use crate::config::{Capacity, CappedConfig};
use crate::obs;
use crate::process::KernelMode;

/// The contiguous bin range owned by shard `shard` when `bins` bins are
/// partitioned across `shards` shards as evenly as possible (the first
/// `bins % shards` shards own one extra bin).
///
/// # Panics
///
/// Panics if `shards == 0`, `shards > bins`, or `shard >= shards`.
pub fn shard_range(bins: usize, shards: usize, shard: usize) -> Range<usize> {
    assert!(shards > 0, "need at least one shard");
    assert!(
        shards <= bins,
        "cannot spread {bins} bins over {shards} shards"
    );
    assert!(shard < shards, "shard index {shard} out of range");
    let base = bins / shards;
    let extra = bins % shards;
    let start = shard * base + shard.min(extra);
    let len = base + usize::from(shard < extra);
    start..start + len
}

/// The shard owning bin `bin` under the [`shard_range`] partition.
///
/// # Panics
///
/// Panics if `shards == 0`, `shards > bins`, or `bin >= bins`.
pub fn shard_of(bins: usize, shards: usize, bin: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    assert!(
        shards <= bins,
        "cannot spread {bins} bins over {shards} shards"
    );
    assert!(bin < bins, "bin index {bin} out of range");
    let base = bins / shards;
    let extra = bins % shards;
    let boundary = extra * (base + 1);
    if bin < boundary {
        bin / (base + 1)
    } else {
        extra + (bin - boundary) / base
    }
}

/// Statistics of one shard's deletion stage, aggregated over its bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardServeStats {
    /// Bins that attempted a deletion and found their buffer empty
    /// (offline bins make no attempt and are excluded, matching
    /// [`CappedProcess`](crate::process::CappedProcess)).
    pub failed_deletions: u64,
    /// Balls left in this shard's buffers after the deletion stage.
    pub buffered: u64,
    /// Maximum bin load in this shard after the deletion stage.
    pub max_load: u64,
}

/// A contiguous slice of a CAPPED system's bins, with their FIFO buffers
/// and fault state.
///
/// # Examples
///
/// ```
/// use iba_core::shard::BinShard;
/// use iba_core::{Ball, CappedConfig};
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let config = CappedConfig::new(8, 1, 0.5)?;
/// // Shard 1 of 2 owns bins 4..8.
/// let mut shard = BinShard::new(&config, 4..8);
/// let mut rejected = Vec::new();
/// // Two requests for local bin 0 (global bin 4): c = 1 keeps only one.
/// let accepted = shard.accept(
///     &[(0, Ball::generated_in(1)), (0, Ball::generated_in(1))],
///     &mut rejected,
/// );
/// assert_eq!(accepted, 1);
/// assert_eq!(rejected.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BinShard {
    first_bin: usize,
    store: BinStore,
    bin_count: usize,
    offline: Vec<bool>,
    /// Counting-sort scratch (request histogram / scatter cursor,
    /// acceptance quotas, and the fast path's packed per-bin registers),
    /// persisted across rounds so the steady state allocates nothing.
    counts: Vec<u32>,
    quotas: Vec<u32>,
    state: Vec<u32>,
    /// Acceptance kernel variant (see [`KernelMode`]). Within one shard
    /// the SIMD and parallel modes are the same SWAR accept sweep —
    /// intra-round parallelism is the dispatch service's job (one thread
    /// per shard), so `ArenaParallel` degrades to `ArenaSimd` here.
    kernel: KernelMode,
    /// Unzipped request scratch for the SWAR accept path (persisted so the
    /// steady state allocates nothing).
    ball_buf: Vec<Ball>,
    choice_buf: Vec<u32>,
}

impl BinShard {
    /// Creates the shard owning `range`, with per-bin capacities taken
    /// from `config` (heterogeneous profiles respected). Finite-capacity
    /// configurations store their bins in a flat [`crate::arena::BinArena`]
    /// and accept through the counting-sort kernel; an unbounded
    /// configuration keeps one `VecDeque` buffer per bin.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the configured bin count or is empty.
    pub fn new(config: &CappedConfig, range: Range<usize>) -> Self {
        assert!(
            range.end <= config.bins(),
            "shard range {range:?} exceeds n = {}",
            config.bins()
        );
        assert!(!range.is_empty(), "a shard must own at least one bin");
        let caps: Vec<Capacity> = range.clone().map(|i| config.capacity_of(i)).collect();
        let bin_count = caps.len();
        let store = BinStore::from_capacities(caps, false);
        let offline = vec![false; bin_count];
        BinShard {
            first_bin: range.start,
            store,
            bin_count,
            offline,
            counts: Vec::new(),
            quotas: Vec::new(),
            state: Vec::new(),
            kernel: KernelMode::default(),
            ball_buf: Vec::new(),
            choice_buf: Vec::new(),
        }
    }

    /// Rebuilds a shard from checkpointed state: per-bin **live**
    /// capacities (which fault injection may have diverged from the
    /// configured profile), FIFO bin contents (oldest first), and the
    /// offline mask. Storage selection mirrors [`BinShard::new`]: the
    /// layout is keyed on the *configured* capacities of the range, so a
    /// resumed shard behaves identically to one that lived through the
    /// original run.
    ///
    /// # Panics
    ///
    /// Panics if `range` is invalid for `config`, or if `caps`,
    /// `contents`, and `offline` do not all have the range's length.
    pub fn from_state(
        config: &CappedConfig,
        range: Range<usize>,
        caps: Vec<Capacity>,
        contents: Vec<Vec<Ball>>,
        offline: Vec<bool>,
    ) -> Self {
        assert!(
            range.end <= config.bins(),
            "shard range {range:?} exceeds n = {}",
            config.bins()
        );
        assert!(!range.is_empty(), "a shard must own at least one bin");
        let bin_count = range.len();
        assert_eq!(caps.len(), bin_count, "one live capacity per bin");
        assert_eq!(contents.len(), bin_count, "one content list per bin");
        assert_eq!(offline.len(), bin_count, "one offline flag per bin");
        let configured_unbounded = range
            .clone()
            .any(|i| config.capacity_of(i) == Capacity::Infinite);
        let store = if configured_unbounded {
            BinStore::Buffers(
                caps.into_iter()
                    .zip(contents)
                    .map(|(cap, balls)| crate::buffer::BinBuffer::restore(cap, balls))
                    .collect(),
            )
        } else {
            BinStore::Arena(crate::arena::BinArena::from_bins(caps, contents))
        };
        BinShard {
            first_bin: range.start,
            store,
            bin_count,
            offline,
            counts: Vec::new(),
            quotas: Vec::new(),
            state: Vec::new(),
            kernel: KernelMode::default(),
            ball_buf: Vec::new(),
            choice_buf: Vec::new(),
        }
    }

    /// Selects the acceptance kernel (builder form, for construction
    /// sites). Within a shard `ArenaParallel` runs the same SWAR sweep as
    /// `ArenaSimd` — the service's parallelism is one thread per shard, so
    /// a nested per-round worker pool would oversubscribe the host.
    /// `Scalar` keeps whatever storage the shard was built with and simply
    /// routes acceptance through the per-ball walk.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Switches the acceptance kernel in place (see
    /// [`with_kernel`](Self::with_kernel)). Takes effect from the next
    /// `accept` call; no storage conversion happens at shard level.
    pub fn set_kernel(&mut self, kernel: KernelMode) {
        self.kernel = kernel;
    }

    /// The acceptance kernel this shard runs.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// Global index of the first bin this shard owns.
    pub fn first_bin(&self) -> usize {
        self.first_bin
    }

    /// Number of bins this shard owns.
    pub fn len(&self) -> usize {
        self.bin_count
    }

    /// Whether the shard owns no bins (never true for a constructed shard).
    pub fn is_empty(&self) -> bool {
        self.bin_count == 0
    }

    /// Read access to the local bin `i` (0-based within the shard), as a
    /// storage-independent view.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin(&self, i: usize) -> BinView<'_> {
        self.store.view(i)
    }

    /// Current loads of this shard's bins, in bin order.
    pub fn loads(&self) -> Vec<usize> {
        (0..self.bin_count).map(|i| self.store.len(i)).collect()
    }

    /// Total balls stored in this shard's buffers.
    pub fn buffered(&self) -> usize {
        self.store.buffered()
    }

    /// Takes local bin `i` offline (`true`) or back online (`false`):
    /// offline bins reject every request and stop serving; buffered balls
    /// freeze (crash-recovery semantics, no ball loss).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_offline(&mut self, i: usize, offline: bool) {
        self.offline[i] = offline;
    }

    /// Whether local bin `i` is offline.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_offline(&self, i: usize) -> bool {
        self.offline[i]
    }

    /// Changes local bin `i`'s live buffer capacity (fault injection).
    /// Balls above a lowered bound stay until served.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_capacity(&mut self, i: usize, capacity: Capacity) {
        assert!(i < self.bin_count, "local bin index {i} out of range");
        self.store.set_capacity(i, capacity);
    }

    /// Rebuilds a shard directly from extracted per-bin parts — the
    /// membership transfer path (shard splits spawn the upper half of a
    /// range as a new shard without a `CappedConfig` describing the
    /// resized topology). `base_capacity` is the *configured* capacity
    /// class and picks the storage layout like [`BinShard::new`] does:
    /// finite configurations get the flat arena even if faults degraded
    /// some live capacities to unbounded.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn from_parts(
        first_bin: usize,
        base_capacity: Capacity,
        parts: Vec<(Capacity, Vec<Ball>, bool)>,
    ) -> Self {
        assert!(!parts.is_empty(), "a shard must own at least one bin");
        let bin_count = parts.len();
        let mut caps = Vec::with_capacity(bin_count);
        let mut contents = Vec::with_capacity(bin_count);
        let mut offline = Vec::with_capacity(bin_count);
        for (cap, balls, off) in parts {
            caps.push(cap);
            contents.push(balls);
            offline.push(off);
        }
        let store = if base_capacity == Capacity::Infinite {
            BinStore::Buffers(
                caps.into_iter()
                    .zip(contents)
                    .map(|(cap, balls)| crate::buffer::BinBuffer::restore(cap, balls))
                    .collect(),
            )
        } else {
            BinStore::Arena(crate::arena::BinArena::from_bins(caps, contents))
        };
        BinShard {
            first_bin,
            store,
            bin_count,
            offline,
            counts: Vec::new(),
            quotas: Vec::new(),
            state: Vec::new(),
            kernel: KernelMode::default(),
            ball_buf: Vec::new(),
            choice_buf: Vec::new(),
        }
    }

    /// Appends a bin to the shard (elastic membership growth, or a bin
    /// transferred in from a merged neighbor). A fresh bin enters empty
    /// and online — primed with its full capacity as acceptance quota for
    /// the next round.
    pub fn push_bin_with(&mut self, capacity: Capacity, contents: &[Ball], offline: bool) {
        self.store.push_bin_with(capacity, contents);
        self.offline.push(offline);
        self.bin_count += 1;
    }

    /// Removes the shard's **last** bin, returning its live capacity,
    /// buffered balls (FIFO order), and offline flag. Removed bins drain
    /// their rings back through the caller (the serve path re-pools the
    /// balls; a merge re-inserts them into the absorbing shard).
    ///
    /// # Panics
    ///
    /// Panics if the shard owns a single bin.
    pub fn pop_bin(&mut self) -> (Capacity, Vec<Ball>, bool) {
        assert!(self.bin_count > 1, "a shard must keep at least one bin");
        let (cap, balls) = self.store.pop_bin();
        let offline = self.offline.pop().expect("non-empty shard");
        self.bin_count -= 1;
        (cap, balls, offline)
    }

    /// Splits off the shard's upper bins `at..len` as extracted parts (in
    /// bin order), leaving this shard with `0..at`. The parts feed
    /// [`from_parts`](Self::from_parts) on the new shard — a split moves
    /// only the ownership of the upper half, never balls between rings.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= at < len` (both halves must be non-empty).
    pub fn split_off(&mut self, at: usize) -> Vec<(Capacity, Vec<Ball>, bool)> {
        assert!(
            at >= 1 && at < self.bin_count,
            "split point {at} must leave both halves non-empty (len {})",
            self.bin_count
        );
        let count = self.bin_count - at;
        let mut parts = Vec::with_capacity(count);
        for _ in 0..count {
            parts.push(self.pop_bin());
        }
        parts.reverse();
        parts
    }

    /// The acceptance stage for this shard: processes `requests` —
    /// `(local_bin, ball)` pairs that MUST be ordered oldest-first — and
    /// greedily accepts each ball into its requested bin while the bin is
    /// online and has room. Rejected balls are appended to `rejected` in
    /// request order (hence oldest-first). Returns the number accepted.
    ///
    /// Because acceptance at a bin depends only on that bin's state and
    /// the relative order of its own requests, running this per shard on
    /// an age-ordered routed stream is exactly Algorithm 1's acceptance
    /// rule (see [`Pool`](crate::pool::Pool) for the equivalence).
    pub fn accept(&mut self, requests: &[(u32, Ball)], rejected: &mut Vec<Ball>) -> u64 {
        let accepted = match &mut self.store {
            // Counting-sort kernel over the flat arena: bit-exactly the
            // scalar greedy walk (see `arena::fast_accept`), one sequential
            // write per accepted ball. The single-pass fast path bails out
            // only when a fault-raised capacity could overflow the ring;
            // the exact-histogram pass then sizes the growth. The
            // `u32::MAX` guard keeps the quota counters from overflowing.
            BinStore::Arena(arena)
                if self.kernel != KernelMode::Scalar && requests.len() <= u32::MAX as usize =>
            {
                let stream = || requests.iter().map(|&(local, ball)| (local as usize, ball));
                let fast = if self.kernel.uses_simd() {
                    // SWAR accept sweep: unzip the routed pairs into the
                    // persisted parallel slices the vector kernel wants.
                    // The shard's accept and serve stages are separate
                    // calls, so registers are never primed across rounds
                    // and the fused SWAR serve does not apply here.
                    self.ball_buf.clear();
                    self.choice_buf.clear();
                    self.ball_buf.extend(requests.iter().map(|&(_, ball)| ball));
                    self.choice_buf
                        .extend(requests.iter().map(|&(local, _)| local));
                    let mut regular = false;
                    crate::simd::fast_accept_simd(
                        arena,
                        &self.offline,
                        &mut self.state,
                        &mut self.quotas,
                        &self.ball_buf,
                        &self.choice_buf,
                        rejected,
                        false,
                        &mut regular,
                    )
                } else {
                    fast_accept(
                        arena,
                        &self.offline,
                        &mut self.state,
                        &mut self.quotas,
                        requests.len(),
                        stream(),
                        rejected,
                        false,
                    )
                };
                match fast {
                    Some(accepted) => {
                        // The shard's accept and serve stages are separate
                        // calls with observable state in between, so the
                        // scatter's lengths are committed here rather than
                        // fused into `serve`.
                        match arena.uniform_cap() {
                            Some(c0) => {
                                commit_accepts_uniform(arena, &self.offline, &self.state, c0)
                            }
                            None => commit_accepts(arena, &self.state, &self.quotas),
                        }
                        accepted
                    }
                    None => counting_accept(
                        arena,
                        &self.offline,
                        &mut self.counts,
                        &mut self.quotas,
                        stream(),
                        rejected,
                    ),
                }
            }
            store => {
                let mut accepted = 0u64;
                for &(local, ball) in requests {
                    let local = local as usize;
                    if !self.offline[local] && store.try_accept(local, ball) {
                        accepted += 1;
                    } else {
                        rejected.push(ball);
                    }
                }
                accepted
            }
        };
        if let Some(p) = obs::probes() {
            p.shard_accepted_balls.add(accepted);
            p.shard_rejected_balls.add(requests.len() as u64 - accepted);
        }
        accepted
    }

    /// The deletion stage for this shard: every online non-empty bin
    /// serves the head of its FIFO queue. Served balls are appended to
    /// `served` and their waiting times (`round − label`) to `waits`, in
    /// bin order — concatenating shard outputs in shard order therefore
    /// reproduces [`CappedProcess`](crate::process::CappedProcess)'s
    /// global bin-order waiting-time vector.
    pub fn serve(
        &mut self,
        round: u64,
        served: &mut Vec<Ball>,
        waits: &mut Vec<u64>,
    ) -> ShardServeStats {
        self.serve_impl(round, served, waits, None)
    }

    /// [`serve`](Self::serve), additionally appending the **local** bin
    /// index of each served ball to `bins` (parallel to `served`/`waits`).
    /// The dispatch service uses this to report which bin served each
    /// ticket in its completion notifications.
    pub fn serve_with_bins(
        &mut self,
        round: u64,
        served: &mut Vec<Ball>,
        waits: &mut Vec<u64>,
        bins: &mut Vec<u32>,
    ) -> ShardServeStats {
        self.serve_impl(round, served, waits, Some(bins))
    }

    fn serve_impl(
        &mut self,
        round: u64,
        served: &mut Vec<Ball>,
        waits: &mut Vec<u64>,
        mut bins: Option<&mut Vec<u32>>,
    ) -> ShardServeStats {
        let mut stats = ShardServeStats::default();
        let served_before = served.len();
        match &mut self.store {
            BinStore::Arena(arena) => {
                for b in 0..self.bin_count {
                    if self.offline[b] {
                        let load = arena.len(b) as u64;
                        stats.buffered += load;
                        stats.max_load = stats.max_load.max(load);
                        continue;
                    }
                    match arena.serve(b) {
                        Some(ball) => {
                            waits.push(ball.age_at(round));
                            served.push(ball);
                            if let Some(bins) = bins.as_deref_mut() {
                                bins.push(b as u32);
                            }
                        }
                        None => stats.failed_deletions += 1,
                    }
                    let load = arena.len(b) as u64;
                    stats.buffered += load;
                    stats.max_load = stats.max_load.max(load);
                }
            }
            BinStore::Buffers(buffers) => {
                for (b, (bin, &offline)) in buffers.iter_mut().zip(&self.offline).enumerate() {
                    if offline {
                        stats.buffered += bin.len() as u64;
                        stats.max_load = stats.max_load.max(bin.len() as u64);
                        continue;
                    }
                    match bin.serve() {
                        Some(ball) => {
                            waits.push(ball.age_at(round));
                            served.push(ball);
                            if let Some(bins) = bins.as_deref_mut() {
                                bins.push(b as u32);
                            }
                        }
                        None => stats.failed_deletions += 1,
                    }
                    let load = bin.len() as u64;
                    stats.buffered += load;
                    stats.max_load = stats.max_load.max(load);
                }
            }
        }
        if let Some(p) = obs::probes() {
            p.shard_served_balls
                .add((served.len() - served_before) as u64);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::CappedProcess;

    #[test]
    fn partition_covers_all_bins_without_overlap() {
        for (bins, shards) in [(8, 1), (8, 3), (8, 8), (17, 4), (1024, 7)] {
            let mut next = 0;
            for s in 0..shards {
                let r = shard_range(bins, shards, s);
                assert_eq!(r.start, next, "gap before shard {s}");
                assert!(!r.is_empty());
                for b in r.clone() {
                    assert_eq!(shard_of(bins, shards, b), s, "owner of bin {b}");
                }
                next = r.end;
            }
            assert_eq!(next, bins, "partition must cover 0..{bins}");
        }
    }

    #[test]
    fn partition_is_balanced() {
        let sizes: Vec<usize> = (0..5).map(|s| shard_range(17, 5, s).len()).collect();
        assert_eq!(sizes, vec![4, 4, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn more_shards_than_bins_panics() {
        shard_range(2, 3, 0);
    }

    #[test]
    fn accept_is_greedy_oldest_first_per_bin() {
        let config = CappedConfig::new(4, 1, 0.5).unwrap();
        let mut shard = BinShard::new(&config, 0..4);
        let mut rejected = Vec::new();
        // Oldest-first stream: bin 0 gets labels 1 then 2 — only 1 fits.
        let accepted = shard.accept(
            &[
                (0, Ball::generated_in(1)),
                (0, Ball::generated_in(2)),
                (1, Ball::generated_in(2)),
            ],
            &mut rejected,
        );
        assert_eq!(accepted, 2);
        assert_eq!(rejected, vec![Ball::generated_in(2)]);
        assert_eq!(shard.bin(0).head(), Some(&Ball::generated_in(1)));
    }

    #[test]
    fn serve_reports_waits_in_bin_order() {
        let config = CappedConfig::new(4, 2, 0.5).unwrap();
        let mut shard = BinShard::new(&config, 0..3);
        let mut rejected = Vec::new();
        shard.accept(
            &[(0, Ball::generated_in(1)), (2, Ball::generated_in(3))],
            &mut rejected,
        );
        let mut served = Vec::new();
        let mut waits = Vec::new();
        let stats = shard.serve(4, &mut served, &mut waits);
        assert_eq!(served, vec![Ball::generated_in(1), Ball::generated_in(3)]);
        assert_eq!(waits, vec![3, 1]);
        assert_eq!(stats.failed_deletions, 1); // bin 1 was empty
        assert_eq!(stats.buffered, 0);
        assert_eq!(stats.max_load, 0);
    }

    #[test]
    fn serve_with_bins_labels_each_served_ball() {
        let config = CappedConfig::new(4, 2, 0.5).unwrap();
        let mut shard = BinShard::new(&config, 0..3);
        let mut rejected = Vec::new();
        shard.accept(
            &[(0, Ball::generated_in(1)), (2, Ball::generated_in(3))],
            &mut rejected,
        );
        let mut served = Vec::new();
        let mut waits = Vec::new();
        let mut bins = Vec::new();
        shard.serve_with_bins(4, &mut served, &mut waits, &mut bins);
        assert_eq!(bins, vec![0, 2]);
        assert_eq!(served.len(), bins.len());
        assert_eq!(waits.len(), bins.len());
    }

    #[test]
    fn offline_bins_freeze_and_skip_service() {
        let config = CappedConfig::new(2, 2, 0.5).unwrap();
        let mut shard = BinShard::new(&config, 0..2);
        let mut rejected = Vec::new();
        shard.accept(&[(0, Ball::generated_in(1))], &mut rejected);
        shard.set_offline(0, true);
        assert!(shard.is_offline(0));
        assert_eq!(
            shard.accept(&[(0, Ball::generated_in(2))], &mut rejected),
            0
        );
        let mut served = Vec::new();
        let mut waits = Vec::new();
        let stats = shard.serve(2, &mut served, &mut waits);
        assert!(served.is_empty());
        // Offline bin 0 makes no deletion attempt; empty bin 1 fails one.
        assert_eq!(stats.failed_deletions, 1);
        assert_eq!(stats.buffered, 1);
        assert_eq!(stats.max_load, 1);
        // Recovery: the frozen ball is served first.
        shard.set_offline(0, false);
        shard.serve(3, &mut served, &mut waits);
        assert_eq!(served, vec![Ball::generated_in(1)]);
    }

    #[test]
    fn degraded_capacity_rejects_until_drained() {
        let config = CappedConfig::new(1, 3, 0.0).unwrap();
        let mut shard = BinShard::new(&config, 0..1);
        let mut rejected = Vec::new();
        shard.accept(
            &[
                (0, Ball::generated_in(1)),
                (0, Ball::generated_in(1)),
                (0, Ball::generated_in(1)),
            ],
            &mut rejected,
        );
        shard.set_capacity(0, Capacity::finite(1).unwrap());
        assert_eq!(
            shard.accept(&[(0, Ball::generated_in(2))], &mut rejected),
            0
        );
        assert_eq!(shard.bin(0).len(), 3, "overflow balls stay");
    }

    #[test]
    fn heterogeneous_profile_is_respected_per_shard() {
        let config = CappedConfig::new(4, 2, 0.5)
            .unwrap()
            .with_capacity_profile(vec![1, 3, 1, 3])
            .unwrap();
        let shard = BinShard::new(&config, 2..4);
        assert_eq!(shard.first_bin(), 2);
        assert_eq!(shard.bin(0).capacity(), Capacity::finite(1).unwrap());
        assert_eq!(shard.bin(1).capacity(), Capacity::finite(3).unwrap());
    }

    #[test]
    fn from_state_reproduces_a_live_shard() {
        let config = CappedConfig::new(8, 2, 0.5).unwrap();
        let mut original = BinShard::new(&config, 2..6);
        let mut rejected = Vec::new();
        original.accept(
            &[
                (0, Ball::generated_in(1)),
                (0, Ball::generated_in(2)),
                (3, Ball::generated_in(2)),
            ],
            &mut rejected,
        );
        original.set_offline(1, true);
        original.set_capacity(2, Capacity::finite(1).unwrap());

        let caps: Vec<Capacity> = (0..original.len())
            .map(|i| original.bin(i).capacity())
            .collect();
        let contents: Vec<Vec<Ball>> = (0..original.len())
            .map(|i| original.bin(i).iter().copied().collect())
            .collect();
        let offline: Vec<bool> = (0..original.len())
            .map(|i| original.is_offline(i))
            .collect();
        let mut restored = BinShard::from_state(&config, 2..6, caps, contents, offline);

        assert_eq!(restored.first_bin(), original.first_bin());
        assert_eq!(restored.loads(), original.loads());
        assert_eq!(restored.bin(2).capacity(), Capacity::finite(1).unwrap());
        assert!(restored.is_offline(1));
        // Identical continuations: same accepts, same serves.
        let stream = [
            (0u32, Ball::generated_in(3)),
            (1, Ball::generated_in(3)),
            (2, Ball::generated_in(3)),
        ];
        let (mut r1, mut r2) = (Vec::new(), Vec::new());
        assert_eq!(
            original.accept(&stream, &mut r1),
            restored.accept(&stream, &mut r2)
        );
        assert_eq!(r1, r2);
        let (mut s1, mut w1, mut s2, mut w2) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let st1 = original.serve(3, &mut s1, &mut w1);
        let st2 = restored.serve(3, &mut s2, &mut w2);
        assert_eq!(s1, s2);
        assert_eq!(w1, w2);
        assert_eq!(st1, st2);
    }

    #[test]
    fn from_state_uses_buffers_for_unbounded_configs() {
        let config = CappedConfig::unbounded(4, 0.5).unwrap();
        let restored = BinShard::from_state(
            &config,
            0..4,
            vec![Capacity::Infinite; 4],
            vec![vec![Ball::generated_in(1)], vec![], vec![], vec![]],
            vec![false; 4],
        );
        assert_eq!(restored.buffered(), 1);
        assert_eq!(restored.bin(0).head(), Some(&Ball::generated_in(1)));
    }

    /// Sequential composition of shards reproduces `CappedProcess`
    /// bit-exactly on a shared pre-drawn choice stream — the invariant the
    /// `iba-serve` differential test extends across threads.
    #[test]
    fn shard_composition_matches_capped_process() {
        let n = 12;
        let shards = 3;
        let config = CappedConfig::new(n, 2, 0.75).unwrap();
        let mut reference = CappedProcess::new(config.clone());
        let mut parts: Vec<BinShard> = (0..shards)
            .map(|s| BinShard::new(&config, shard_range(n, shards, s)))
            .collect();
        let mut pool: Vec<Ball> = Vec::new();
        let mut rng = iba_sim::SimRng::seed_from(99);
        for round in 1..=200u64 {
            // Shared choice stream, one uniform bin per thrown ball.
            let batch = 9u64; // λn = 0.75 · 12
            pool.extend(std::iter::repeat_n(
                Ball::generated_in(round),
                batch as usize,
            ));
            let choices: Vec<usize> = pool.iter().map(|_| rng.uniform_bin(n)).collect();
            let report = reference.step_with_choices(&choices);

            // Route the same stream through the shards.
            let mut routed: Vec<Vec<(u32, Ball)>> = vec![Vec::new(); shards];
            for (&ball, &bin) in pool.iter().zip(&choices) {
                let s = shard_of(n, shards, bin);
                let local = (bin - parts[s].first_bin()) as u32;
                routed[s].push((local, ball));
            }
            let mut rejected: Vec<Vec<Ball>> = vec![Vec::new(); shards];
            let mut waits = Vec::new();
            let mut served = Vec::new();
            let mut accepted = 0;
            for (s, part) in parts.iter_mut().enumerate() {
                accepted += part.accept(&routed[s], &mut rejected[s]);
                part.serve(round, &mut served, &mut waits);
            }
            // Merge per-shard rejects oldest-first back into the pool.
            let mut merged: Vec<Ball> = rejected.into_iter().flatten().collect();
            merged.sort();
            pool = merged;

            assert_eq!(report.accepted, accepted, "round {round}");
            assert_eq!(report.pool_size as usize, pool.len(), "round {round}");
            assert_eq!(report.waiting_times, waits, "round {round}");
            let shard_loads: Vec<usize> = parts.iter().flat_map(|p| p.loads()).collect();
            assert_eq!(reference.loads(), shard_loads, "round {round}");
            let pool_labels: Vec<u64> = pool.iter().map(Ball::label).collect();
            let ref_labels: Vec<u64> = reference.pool().iter().map(Ball::label).collect();
            assert_eq!(pool_labels, ref_labels, "round {round}");
        }
    }

    #[test]
    fn push_and_pop_bins_keep_shard_state_consistent() {
        let config = CappedConfig::new(8, 2, 0.5).unwrap();
        let mut shard = BinShard::new(&config, 0..3);
        let mut rejected = Vec::new();
        shard.accept(
            &[(0, Ball::generated_in(1)), (2, Ball::generated_in(2))],
            &mut rejected,
        );

        // Growth: the new bin is empty, online, and accepts immediately.
        shard.push_bin_with(Capacity::finite(2).unwrap(), &[], false);
        assert_eq!(shard.len(), 4);
        assert!(!shard.is_offline(3));
        assert_eq!(
            shard.accept(&[(3, Ball::generated_in(3))], &mut rejected),
            1
        );
        assert_eq!(shard.bin(3).len(), 1);

        // Shrink: the popped bin drains its balls; survivors keep theirs.
        let (cap, balls, offline) = shard.pop_bin();
        assert_eq!(cap, Capacity::finite(2).unwrap());
        assert_eq!(balls, vec![Ball::generated_in(3)]);
        assert!(!offline);
        assert_eq!(shard.len(), 3);
        assert_eq!(shard.buffered(), 2);
        assert!(rejected.is_empty());
    }

    #[test]
    fn split_off_and_from_parts_move_ownership_not_balls() {
        let config = CappedConfig::new(8, 2, 0.5).unwrap();
        let mut shard = BinShard::new(&config, 0..6);
        let mut rejected = Vec::new();
        shard.accept(
            &[
                (1, Ball::generated_in(1)),
                (4, Ball::generated_in(1)),
                (4, Ball::generated_in(2)),
                (5, Ball::generated_in(3)),
            ],
            &mut rejected,
        );
        shard.set_offline(5, true);

        let parts = shard.split_off(3);
        assert_eq!(shard.len(), 3);
        assert_eq!(parts.len(), 3);
        let upper = BinShard::from_parts(3, config.capacity(), parts);
        assert_eq!(upper.first_bin(), 3);
        assert_eq!(upper.len(), 3);
        assert_eq!(upper.bin(1).len(), 2, "global bin 4 kept both balls");
        assert_eq!(upper.bin(1).head(), Some(&Ball::generated_in(1)));
        assert!(upper.is_offline(2), "offline mask travels with the bin");
        assert_eq!(shard.buffered() + upper.buffered(), 4, "no ball lost");

        // The reunited halves serve exactly like an unsplit shard.
        let mut merged = shard.clone();
        for i in 0..upper.len() {
            let caps = upper.bin(i).capacity();
            let balls: Vec<Ball> = upper.bin(i).iter().copied().collect();
            merged.push_bin_with(caps, &balls, upper.is_offline(i));
        }
        let mut reference = BinShard::new(&config, 0..6);
        reference.accept(
            &[
                (1, Ball::generated_in(1)),
                (4, Ball::generated_in(1)),
                (4, Ball::generated_in(2)),
                (5, Ball::generated_in(3)),
            ],
            &mut rejected,
        );
        reference.set_offline(5, true);
        let (mut s1, mut w1, mut s2, mut w2) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let st1 = merged.serve(4, &mut s1, &mut w1);
        let st2 = reference.serve(4, &mut s2, &mut w2);
        assert_eq!(s1, s2);
        assert_eq!(w1, w2);
        assert_eq!(st1, st2);
    }

    #[test]
    #[should_panic(expected = "both halves non-empty")]
    fn split_at_zero_panics() {
        let config = CappedConfig::new(4, 2, 0.5).unwrap();
        let mut shard = BinShard::new(&config, 0..4);
        shard.split_off(0);
    }
}
