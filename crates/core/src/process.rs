//! The CAPPED(c, λ) process (Algorithm 1 of the paper).

use iba_sim::arrivals::ArrivalModel;
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::rng::SimRng;
use iba_sim::stats::Histogram;

use crate::arena::{counting_accept, fast_accept, BinStore, BinView};
use crate::ball::Ball;
use crate::config::{AcceptancePolicy, Capacity, CappedConfig};
use crate::pool::Pool;

/// Which implementation of the round's acceptance/deletion stages a
/// [`CappedProcess`] runs.
///
/// All kernels compute **bit-identical** trajectories (same RNG
/// consumption, same [`RoundReport`]s, same waiting times) — the scalar
/// kernel exists as the in-tree reference for differential tests and
/// old-vs-new benchmarks, and the SIMD/parallel kernels are proven
/// against it by the same lockstep suites. Checkpoints do not record the
/// kernel mode; restored processes run the default (re-select with
/// [`CappedProcess::set_kernel`]).
///
/// Choosing a mode (see also DESIGN.md §kernel): `Arena` is the safe
/// default; `ArenaSimd` adds the SWAR register sweeps and lookahead
/// scatter (strictly sequential, no threads); `ArenaParallel` adds the
/// partitioned intra-round scatter + serve on top, sized by
/// [`IBA_THREADS`](CappedProcess::set_kernel_threads) or
/// `std::thread::available_parallelism`. Parallelism pays off from
/// roughly `n ≥ 10⁵` on multicore hosts; below that (or on one core) it
/// automatically degrades to the sequential SIMD path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Flat-arena storage with the counting-sort acceptance pass and bulk
    /// RNG (the default). Used for the 1-choice oldest-first paper process
    /// on finite capacities; other policies fall back to the scalar walk
    /// over the same arena storage.
    #[default]
    Arena,
    /// `Arena` plus the SWAR meta sweeps (two bins per `u64` register
    /// word in the fused commit+serve+prime pass) and the lookahead
    /// scatter — see `crate::simd`.
    ArenaSimd,
    /// `ArenaSimd` plus the intra-round partitioned scatter + serve
    /// across a `std::thread::scope` worker pool, with the canonical
    /// reject merge that keeps the trajectory bit-identical at any
    /// thread count (parallel implies SIMD).
    ArenaParallel,
    /// The legacy layout and loop: one `VecDeque` buffer per bin, one
    /// RNG draw and one random-access push per ball.
    Scalar,
}

impl KernelMode {
    /// Whether this mode routes through the SWAR/parallel kernel paths.
    #[inline]
    pub(crate) fn uses_simd(self) -> bool {
        matches!(self, KernelMode::ArenaSimd | KernelMode::ArenaParallel)
    }

    /// Stable lowercase identifier, used in provenance records and CLI
    /// flags (`scalar`, `arena`, `arena_simd`, `arena_parallel`).
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Arena => "arena",
            KernelMode::ArenaSimd => "arena_simd",
            KernelMode::ArenaParallel => "arena_parallel",
        }
    }
}

/// Round-persistent scratch buffers of the arena kernel, so steady-state
/// rounds allocate nothing.
#[derive(Debug, Clone, Default)]
struct KernelScratch {
    /// This round's pre-drawn bin choices, one per pooled ball.
    choices: Vec<u32>,
    /// Per-bin request histogram, reused as the scatter cursor
    /// (exact-histogram fallback path only).
    counts: Vec<u32>,
    /// Per-bin acceptance quotas `min{c − ℓ, ν}`.
    quotas: Vec<u32>,
    /// Packed per-bin `(remaining quota, ring cursor)` registers of the
    /// single-pass scatter (see [`fast_accept`]).
    state: Vec<u32>,
    /// Per-worker scratch of the parallel kernel (reject lists, waits).
    workers: Vec<crate::simd::WorkerScratch>,
}

/// The CAPPED(c, λ) process.
///
/// One [`step`](AllocationProcess::step) executes one round of Algorithm 1:
///
/// 1. generate `λn` new balls and add them to the pool;
/// 2. every pooled ball picks a bin independently and uniformly at random;
/// 3. every bin accepts the **oldest** `min{c − ℓᵢ(t−1), νᵢ}` of its
///    requests (ties broken arbitrarily); accepted balls leave the pool and
///    enter the bin's FIFO queue;
/// 4. every non-empty bin deletes (serves) the first ball in its queue.
///
/// The implementation processes the pool in global oldest-first order and
/// accepts greedily while a bin has room, which yields exactly the
/// acceptance rule in item 3 (see `Pool`'s documentation).
///
/// # Examples
///
/// ```
/// use iba_core::{CappedConfig, CappedProcess};
/// use iba_sim::{AllocationProcess, SimRng};
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let mut p = CappedProcess::new(CappedConfig::new(64, 1, 0.5)?);
/// let mut rng = SimRng::seed_from(1);
/// let report = p.step(&mut rng);
/// assert_eq!(report.generated, 32);
/// assert!(report.conserves_balls());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CappedProcess {
    config: CappedConfig,
    pool: Pool,
    store: BinStore,
    /// Fault-injection mask: an offline bin rejects every request and
    /// stops serving; its buffered balls are frozen until it comes back.
    offline: Vec<bool>,
    round: u64,
    total_generated: u64,
    total_deleted: u64,
    scratch: Vec<Ball>,
    kernel: KernelMode,
    kscratch: KernelScratch,
    /// Whether `kscratch.state` already holds valid per-bin acceptance
    /// registers for the *next* round (written by the previous round's
    /// deletion sweep under a uniform capacity profile). Cleared by every
    /// mutation that can change a bin's room or ring offset behind the
    /// kernel's back.
    kernel_primed: bool,
    /// SIMD-kernel regularity: every bin online and no bin holding more
    /// than the uniform capacity — the precondition for the register-only
    /// SWAR serve sweep (`crate::simd::commit_serve_prime_swar`). Only
    /// meaningful while `kernel_primed` propagates it between rounds;
    /// cold rounds recompute it during the prime sweep.
    kernel_regular: bool,
    /// Worker count of the `ArenaParallel` kernel (≥ 1; 1 on the other
    /// modes). Not part of the trajectory: any value yields bit-identical
    /// results.
    threads: usize,
}

/// Resolves the parallel kernel's worker count: the `IBA_THREADS`
/// environment override if set and ≥ 1, else the machine's available
/// parallelism (1 if unknown).
fn resolve_threads() -> usize {
    match std::env::var("IBA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(t) if t >= 1 => t,
        _ => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Routes one round's pre-drawn acceptance through the selected arena
/// kernel. Every path is bit-exact with the scalar oldest-first greedy
/// walk; they differ only in sweep shape (see [`crate::simd`]).
///
/// On the fast paths the scatter leaves ring lengths uncommitted and
/// sets `commit_pending` for the fused deletion sweep. The parallel
/// kernel instead serves inside its worker phase and hands back its
/// merged [`SweepStats`](crate::simd::SweepStats) via `parallel_served`.
#[allow(clippy::too_many_arguments)]
fn kernel_accept<C: crate::simd::BinIndex>(
    kernel: KernelMode,
    threads: usize,
    was_primed: bool,
    regular: &mut bool,
    round: u64,
    arena: &mut crate::arena::BinArena,
    offline: &[bool],
    counts: &mut Vec<u32>,
    quotas: &mut Vec<u32>,
    state: &mut Vec<u32>,
    workers: &mut Vec<crate::simd::WorkerScratch>,
    balls: &[Ball],
    choices: &[C],
    rejected: &mut Vec<Ball>,
    waits: &mut Vec<u64>,
    commit_pending: &mut bool,
    parallel_served: &mut Option<crate::simd::SweepStats>,
) -> u64 {
    let stream = || choices.iter().map(|c| c.bin()).zip(balls.iter().copied());
    match kernel {
        KernelMode::Scalar => unreachable!("the scalar kernel uses buffer storage"),
        KernelMode::Arena => {
            match fast_accept(
                arena,
                offline,
                state,
                quotas,
                balls.len(),
                stream(),
                rejected,
                was_primed,
            ) {
                Some(a) => {
                    *commit_pending = true;
                    a
                }
                None => counting_accept(arena, offline, counts, quotas, stream(), rejected),
            }
        }
        KernelMode::ArenaSimd | KernelMode::ArenaParallel => {
            if kernel == KernelMode::ArenaParallel && threads > 1 && arena.uniform_cap().is_some() {
                match crate::simd::parallel_round(
                    arena, offline, state, workers, threads, was_primed, *regular, round, balls,
                    choices, rejected, waits,
                ) {
                    Some(out) => {
                        *regular = out.stats.regular;
                        *parallel_served = Some(out.stats);
                        return out.accepted;
                    }
                    None => {
                        // A worker bailed with nothing committed; rerun the
                        // round through the exact-histogram pass (and the
                        // ordinary deletion stage).
                        *regular = false;
                        return counting_accept(arena, offline, counts, quotas, stream(), rejected);
                    }
                }
            }
            match crate::simd::fast_accept_simd(
                arena, offline, state, quotas, balls, choices, rejected, was_primed, regular,
            ) {
                Some(a) => {
                    *commit_pending = true;
                    a
                }
                None => {
                    *regular = false;
                    counting_accept(arena, offline, counts, quotas, stream(), rejected)
                }
            }
        }
    }
}

enum ChoiceSource<'a> {
    /// Sample with `d` uniform choices per ball, committing to the
    /// least-loaded sampled bin.
    Rng(&'a mut SimRng, u32),
    /// Use pre-drawn bin choices (index i for the i-th thrown ball) —
    /// the hook used by the Lemma-1/6 coupling.
    Slice(&'a [usize]),
}

impl CappedProcess {
    /// Creates the process in the paper's initial state: empty pool, empty
    /// bins, round 0, running the default (arena) kernel.
    pub fn new(config: CappedConfig) -> Self {
        Self::with_kernel(config, KernelMode::default())
    }

    /// Creates the process with an explicit [`KernelMode`]. All modes are
    /// bit-exact; `Scalar` pins the legacy per-ball loop for differential
    /// tests and old-vs-new benchmarks. `ArenaParallel` sizes its worker
    /// pool from `IBA_THREADS` / `available_parallelism` (adjustable via
    /// [`set_kernel_threads`](Self::set_kernel_threads)).
    pub fn with_kernel(config: CappedConfig, kernel: KernelMode) -> Self {
        let caps: Vec<Capacity> = (0..config.bins()).map(|i| config.capacity_of(i)).collect();
        let store = BinStore::from_capacities(caps, kernel == KernelMode::Scalar);
        CappedProcess {
            pool: Pool::with_capacity(config.predicted_stationary_pool()),
            store,
            offline: vec![false; config.bins()],
            round: 0,
            total_generated: 0,
            total_deleted: 0,
            scratch: Vec::new(),
            kernel,
            kscratch: KernelScratch::default(),
            kernel_primed: false,
            kernel_regular: false,
            threads: if kernel == KernelMode::ArenaParallel {
                resolve_threads()
            } else {
                1
            },
            config,
        }
    }

    /// The kernel mode this process runs.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// Switches the kernel mode in place, converting the bin storage if
    /// the old and new modes disagree on it (`Scalar` keeps per-bin
    /// buffers; the arena modes share the flat arena). The trajectory is
    /// unaffected — all modes are bit-exact — so this is safe mid-run;
    /// it is primarily the hook for re-selecting a non-default kernel
    /// after a checkpoint restore.
    pub fn set_kernel(&mut self, kernel: KernelMode) {
        if kernel == self.kernel {
            return;
        }
        let need_buffers =
            kernel == KernelMode::Scalar || self.config.capacity() == Capacity::Infinite;
        let have_buffers = matches!(self.store, BinStore::Buffers(_));
        if need_buffers != have_buffers {
            let n = self.config.bins();
            let caps: Vec<Capacity> = (0..n).map(|i| self.bin(i).capacity()).collect();
            let contents: Vec<Vec<Ball>> = (0..n)
                .map(|i| self.bin(i).iter().copied().collect())
                .collect();
            self.store = if need_buffers {
                BinStore::Buffers(
                    caps.into_iter()
                        .zip(contents)
                        .map(|(cap, balls)| crate::buffer::BinBuffer::restore(cap, balls))
                        .collect(),
                )
            } else {
                BinStore::Arena(crate::arena::BinArena::from_bins(caps, contents))
            };
        }
        self.kernel = kernel;
        self.kernel_primed = false;
        self.kernel_regular = false;
        if kernel == KernelMode::ArenaParallel && self.threads == 1 {
            self.threads = resolve_threads();
        }
    }

    /// The `ArenaParallel` worker count this process would use (1 unless
    /// that mode is selected).
    pub fn kernel_threads(&self) -> usize {
        if self.kernel == KernelMode::ArenaParallel {
            self.threads
        } else {
            1
        }
    }

    /// Overrides the `ArenaParallel` worker count (clamped to ≥ 1). Has
    /// no effect on the trajectory — any thread count is bit-identical —
    /// only on wall-clock speed. No-op in the other kernel modes beyond
    /// remembering the value for a later [`set_kernel`](Self::set_kernel).
    pub fn set_kernel_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Fault injection: takes bin `i` offline (`true`) or back online
    /// (`false`). An offline bin rejects every allocation request and
    /// stops serving; balls already in its buffer are frozen — they resume
    /// FIFO service when the bin recovers (crash-recovery semantics, no
    /// ball loss). Used by the chaos experiments.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if `i ≥ n`; use
    /// [`try_set_bin_offline`](Self::try_set_bin_offline) for fallible
    /// handling of untrusted indices.
    pub fn set_bin_offline(&mut self, i: usize, offline: bool) {
        assert!(
            i < self.offline.len(),
            "bin index {i} out of range for a process with n = {} bins",
            self.offline.len()
        );
        self.offline[i] = offline;
        self.kernel_primed = false;
    }

    /// Fallible [`set_bin_offline`](Self::set_bin_offline) for indices
    /// coming from untrusted input (CLI arguments, fault-plan files).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfDomain`](iba_sim::error::ConfigError)
    /// if `i ≥ n`; the process is left unchanged.
    pub fn try_set_bin_offline(
        &mut self,
        i: usize,
        offline: bool,
    ) -> Result<(), iba_sim::error::ConfigError> {
        if i >= self.offline.len() {
            return Err(iba_sim::error::ConfigError::OutOfDomain {
                name: "bin index",
                domain: "0..n",
            });
        }
        self.offline[i] = offline;
        self.kernel_primed = false;
        Ok(())
    }

    /// Whether bin `i` is currently offline.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn is_bin_offline(&self, i: usize) -> bool {
        self.offline[i]
    }

    /// Number of currently offline bins.
    pub fn offline_count(&self) -> usize {
        self.offline.iter().filter(|&&o| o).count()
    }

    /// Fault injection: changes bin `i`'s **live** buffer capacity without
    /// touching the configuration (capacity degradation experiments).
    /// Balls buffered above a lowered capacity stay until served; the bin
    /// rejects new balls until it drains below the new bound. Checkpoints
    /// preserve live capacities (format v2).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn set_bin_capacity(&mut self, i: usize, capacity: crate::config::Capacity) {
        assert!(
            i < self.config.bins(),
            "bin index {i} out of range for a process with n = {} bins",
            self.config.bins()
        );
        self.store.set_capacity(i, capacity);
        self.kernel_primed = false;
    }

    /// The configuration this process runs with.
    pub fn config(&self) -> &CappedConfig {
        &self.config
    }

    /// Injects `extra` balls labeled with the current round into the pool.
    ///
    /// Used for two purposes:
    ///
    /// - **warm start** — pre-filling the pool at the predicted stationary
    ///   size to skip most of the transient (see DESIGN.md substitutions);
    /// - **adversarial overload** — the self-stabilization experiment starts
    ///   from a pool far above the stationary band and measures recovery.
    ///
    /// The injected balls count toward `total_generated`, so conservation
    /// invariants keep holding.
    pub fn inject_pool(&mut self, extra: u64) {
        self.pool.push_generation(self.round, extra);
        self.total_generated += extra;
    }

    /// Warm-starts the pool at the theory-predicted stationary size.
    /// Call before the first [`step`](AllocationProcess::step).
    pub fn warm_start(&mut self) {
        let target = self.config.predicted_stationary_pool() as u64;
        let current = self.pool.len() as u64;
        if target > current {
            self.inject_pool(target - current);
        }
    }

    /// Read access to bin `i`'s buffer, as a storage-independent view.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn bin(&self, i: usize) -> BinView<'_> {
        self.store.view(i)
    }

    /// Current loads of all bins.
    pub fn loads(&self) -> Vec<usize> {
        (0..self.config.bins()).map(|i| self.store.len(i)).collect()
    }

    /// Histogram of current bin loads (values `0..=c`).
    pub fn load_histogram(&self) -> Histogram {
        (0..self.config.bins())
            .map(|i| self.store.len(i) as u64)
            .collect()
    }

    /// Total number of balls stored in bin buffers.
    pub fn buffered(&self) -> usize {
        self.store.buffered()
    }

    /// The pool.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Lifetime count of generated balls (including injected ones).
    pub fn total_generated(&self) -> u64 {
        self.total_generated
    }

    /// Lifetime count of deleted (served) balls.
    pub fn total_deleted(&self) -> u64 {
        self.total_deleted
    }

    /// Ball-conservation invariant: every generated ball is pooled,
    /// buffered, or deleted.
    pub fn conserves_balls(&self) -> bool {
        self.total_generated == self.total_deleted + self.pool.len() as u64 + self.buffered() as u64
    }

    /// Serializes the full process state (configuration, round counters,
    /// pool, bin queues with their **live** capacities, fault mask) into a
    /// checkpoint encoder. Restoring via
    /// [`decode_from`](Self::decode_from) and continuing with the same RNG
    /// stream reproduces the original trajectory bit-exactly — including
    /// runs whose capacities were degraded mid-flight by fault injection.
    pub fn encode_into(&self, enc: &mut iba_sim::codec::Encoder) {
        self.config.encode_into(enc);
        enc.u64(self.round);
        enc.u64(self.total_generated);
        enc.u64(self.total_deleted);
        let pool_labels: Vec<u64> = self.pool.iter().map(Ball::label).collect();
        enc.u64_seq(pool_labels.into_iter());
        enc.usize(self.config.bins());
        for i in 0..self.config.bins() {
            let bin = self.store.view(i);
            // Live capacity, which fault injection may have diverged from
            // the configured profile; 0 encodes "unbounded".
            enc.u64(match bin.capacity() {
                Capacity::Finite(c) => u64::from(c.get()),
                Capacity::Infinite => 0,
            });
            let labels: Vec<u64> = bin.iter().map(Ball::label).collect();
            enc.u64_seq(labels.into_iter());
        }
        for &offline in &self.offline {
            enc.bool(offline);
        }
    }

    /// Deserializes a process from a checkpoint decoder.
    ///
    /// # Errors
    ///
    /// Returns a [`iba_sim::codec::CodecError`] on truncated or malformed
    /// input, including states violating the process invariants (unsorted
    /// pool, over-capacity bins, broken conservation).
    pub fn decode_from(
        dec: &mut iba_sim::codec::Decoder<'_>,
    ) -> Result<Self, iba_sim::codec::CodecError> {
        use iba_sim::codec::CodecError;
        let config = CappedConfig::decode_from(dec)?;
        let round = dec.u64("process round")?;
        let total_generated = dec.u64("total generated")?;
        let total_deleted = dec.u64("total deleted")?;
        let pool_labels = dec.u64_seq("pool labels")?;
        if pool_labels.windows(2).any(|w| w[0] > w[1]) {
            return Err(CodecError::Invalid { what: "pool order" });
        }
        let pool: Pool = pool_labels.iter().map(|&l| Ball::generated_in(l)).collect();
        let bin_count = dec.usize("bin count")?;
        if bin_count != config.bins() {
            return Err(CodecError::Invalid { what: "bin count" });
        }
        let mut caps = Vec::with_capacity(bin_count);
        let mut contents = Vec::with_capacity(bin_count);
        for _ in 0..bin_count {
            let raw = dec.u64("bin capacity")?;
            let capacity = if raw == 0 {
                Capacity::Infinite
            } else {
                u32::try_from(raw)
                    .ok()
                    .and_then(|c| Capacity::finite(c).ok())
                    .ok_or(CodecError::Invalid {
                        what: "bin capacity",
                    })?
            };
            let labels = dec.u64_seq("bin queue")?;
            // No load-vs-capacity check: a degraded bin legally holds more
            // balls than its live capacity (capacity degradation);
            // conservation is verified below.
            caps.push(capacity);
            contents.push(
                labels
                    .iter()
                    .map(|&l| Ball::generated_in(l))
                    .collect::<Vec<Ball>>(),
            );
        }
        let mut offline = Vec::with_capacity(bin_count);
        for _ in 0..bin_count {
            offline.push(dec.bool("offline flag")?);
        }
        // Checkpoints never record the kernel mode: restores always run the
        // default kernel. The choice of storage mirrors `with_kernel`,
        // keyed on the *configured* base capacity so a finite configuration
        // restores to the arena even when faults degraded some live
        // capacities to unbounded (the arena grows those on demand).
        let store = if config.capacity() == Capacity::Infinite {
            BinStore::Buffers(
                caps.into_iter()
                    .zip(contents)
                    .map(|(cap, balls)| crate::buffer::BinBuffer::restore(cap, balls))
                    .collect(),
            )
        } else {
            BinStore::Arena(crate::arena::BinArena::from_bins(caps, contents))
        };
        let process = CappedProcess {
            config,
            pool,
            store,
            offline,
            round,
            total_generated,
            total_deleted,
            scratch: Vec::new(),
            kernel: KernelMode::default(),
            kscratch: KernelScratch::default(),
            kernel_primed: false,
            kernel_regular: false,
            threads: 1,
        };
        if !process.conserves_balls() {
            return Err(CodecError::Invalid {
                what: "ball conservation",
            });
        }
        Ok(process)
    }

    /// Number of balls the next round will throw (pool + `λn`), assuming
    /// the deterministic arrival model. Used by the coupled runner to size
    /// the shared choice vector.
    ///
    /// # Panics
    ///
    /// Panics if the arrival model is not deterministic.
    pub fn next_throw_count(&self) -> usize {
        let ArrivalModel::Deterministic { batch } = *self.config.arrivals() else {
            panic!("next_throw_count requires the deterministic arrival model");
        };
        self.pool.len() + batch as usize
    }

    /// Executes one round with **pre-drawn bin choices**: `choices[i]` is
    /// the bin requested by the i-th pooled ball in oldest-first order.
    ///
    /// This is the hook used by [`crate::coupling::CoupledRun`] to share
    /// randomness with MODCAPPED per Lemmas 1 and 6. Ball generation is
    /// performed internally (it must be deterministic for the coupling to
    /// be meaningful).
    ///
    /// # Panics
    ///
    /// Panics if the arrival model is not deterministic, if the configured
    /// choice count is not 1, or if `choices.len()` differs from the number
    /// of thrown balls (`pool + λn`).
    pub fn step_with_choices(&mut self, choices: &[usize]) -> RoundReport {
        let ArrivalModel::Deterministic { batch } = *self.config.arrivals() else {
            panic!("step_with_choices requires the deterministic arrival model");
        };
        assert_eq!(
            self.config.choices(),
            1,
            "step_with_choices supports only the 1-choice process"
        );
        assert_eq!(
            self.config.policy(),
            AcceptancePolicy::OldestFirst,
            "step_with_choices supports only the paper's oldest-first policy"
        );
        assert_eq!(
            choices.len(),
            self.pool.len() + batch as usize,
            "need exactly one choice per thrown ball"
        );
        self.run_round(batch, ChoiceSource::Slice(choices))
    }

    /// Whether this round can run through the counting-sort kernel: the
    /// paper's 1-choice oldest-first process over arena storage (pre-drawn
    /// choice slices are by definition 1-choice). The d-choice and ablation
    /// policies keep the scalar walk — their acceptance depends on loads or
    /// priorities evolving *during* the request stream, which a batched
    /// pass cannot reproduce. The `u32::MAX` guard keeps the per-bin
    /// request histogram's `u32` counters from overflowing.
    fn kernel_eligible(&self, source: &ChoiceSource<'_>, thrown: usize) -> bool {
        self.config.policy() == AcceptancePolicy::OldestFirst
            && matches!(self.store, BinStore::Arena(_))
            && thrown <= u32::MAX as usize
            && match source {
                ChoiceSource::Rng(_, d) => *d == 1,
                ChoiceSource::Slice(_) => true,
            }
    }

    fn run_round(&mut self, generated: u64, source: ChoiceSource<'_>) -> RoundReport {
        let mut report = RoundReport::default();
        self.run_round_into(generated, source, &mut report);
        report
    }

    fn run_round_into(
        &mut self,
        generated: u64,
        mut source: ChoiceSource<'_>,
        report: &mut RoundReport,
    ) {
        let n = self.config.bins();
        self.round += 1;
        let round = self.round;
        // Consume the priming flag up front: whatever path this round
        // takes, the registers it leaves behind are only valid if the
        // uniform deletion sweep below re-arms them.
        let was_primed = std::mem::take(&mut self.kernel_primed);

        // 1. Ball generation.
        let gen_timer = iba_obs::PhaseTimer::start();
        self.pool.push_generation(round, generated);
        self.total_generated += generated;
        let thrown = self.pool.len() as u64;
        if let Some(p) = crate::obs::probes() {
            gen_timer.observe(&p.phase_generate_nanos);
        }

        // 2 + 3. Random choices and priority-ordered greedy acceptance.
        // The default (paper) policy processes balls oldest-first, which
        // realizes "accept the oldest min{c − ℓ, ν} requests"; the ablation
        // policies permute the acceptance priority.
        let accept_timer = iba_obs::PhaseTimer::start();
        let mut balls = self.pool.take();
        let mut rejected = std::mem::take(&mut self.scratch);
        rejected.clear();
        // Cleared before acceptance because the parallel kernel fuses the
        // serve sweep into its worker phase and appends waits there.
        report.waiting_times.clear();
        let mut accepted = 0u64;
        let policy = self.config.policy();
        // Set when the fast path ran: its scatter leaves the ring lengths
        // uncommitted, and the deletion stage below folds the per-bin
        // accepted counts in while it serves (one meta pass, not two).
        let mut commit_pending = false;
        // Set when the parallel kernel already served: its merged sweep
        // stats replace the deletion stage entirely.
        let mut parallel_served: Option<crate::simd::SweepStats> = None;
        if self.kernel_eligible(&source, balls.len()) {
            // Counting-sort kernel. Pre-drawing every choice in pool order
            // consumes the RNG exactly as the scalar per-ball loop does
            // (acceptance itself draws nothing), and the quota/scatter pass
            // is bit-exactly the oldest-first greedy walk — see
            // `arena::counting_accept`.
            let BinStore::Arena(arena) = &mut self.store else {
                unreachable!("kernel_eligible checked the storage variant");
            };
            let KernelScratch {
                choices,
                counts,
                quotas,
                state,
                workers,
            } = &mut self.kscratch;
            accepted = match &mut source {
                ChoiceSource::Rng(rng, _) => {
                    choices.resize(balls.len(), 0);
                    rng.fill_uniform_bins(n, choices);
                    kernel_accept(
                        self.kernel,
                        self.threads,
                        was_primed,
                        &mut self.kernel_regular,
                        round,
                        arena,
                        &self.offline,
                        counts,
                        quotas,
                        state,
                        workers,
                        &balls,
                        choices,
                        &mut rejected,
                        &mut report.waiting_times,
                        &mut commit_pending,
                        &mut parallel_served,
                    )
                }
                ChoiceSource::Slice(slice) => kernel_accept(
                    self.kernel,
                    self.threads,
                    was_primed,
                    &mut self.kernel_regular,
                    round,
                    arena,
                    &self.offline,
                    counts,
                    quotas,
                    state,
                    workers,
                    &balls,
                    slice,
                    &mut rejected,
                    &mut report.waiting_times,
                    &mut commit_pending,
                    &mut parallel_served,
                ),
            };
            balls.clear();
        } else if policy == AcceptancePolicy::OldestFirst {
            for (i, ball) in balls.drain(..).enumerate() {
                let bin_idx = match &mut source {
                    ChoiceSource::Rng(rng, 1) => rng.uniform_bin(n),
                    ChoiceSource::Rng(rng, d) => {
                        // d-choice ablation: commit to the least-loaded of d
                        // uniform samples (ties toward the first sample).
                        let mut best = rng.uniform_bin(n);
                        for _ in 1..*d {
                            let candidate = rng.uniform_bin(n);
                            if self.store.len(candidate) < self.store.len(best) {
                                best = candidate;
                            }
                        }
                        best
                    }
                    ChoiceSource::Slice(choices) => choices[i],
                };
                if !self.offline[bin_idx] && self.store.try_accept(bin_idx, ball) {
                    accepted += 1;
                } else {
                    rejected.push(ball);
                }
            }
        } else {
            // Ablation policies need the RNG both for bin choices and (for
            // `Random`) the priority permutation.
            let ChoiceSource::Rng(rng, d) = &mut source else {
                unreachable!("step_with_choices asserts the oldest-first policy");
            };
            let mut order: Vec<usize> = (0..balls.len()).collect();
            match policy {
                AcceptancePolicy::YoungestFirst => order.reverse(),
                AcceptancePolicy::Random => {
                    // Fisher–Yates shuffle.
                    for i in (1..order.len()).rev() {
                        let j = rng.uniform_below(i as u64 + 1) as usize;
                        order.swap(i, j);
                    }
                }
                AcceptancePolicy::OldestFirst => unreachable!("handled above"),
            }
            for &i in &order {
                let ball = balls[i];
                let mut best = rng.uniform_bin(n);
                for _ in 1..*d {
                    let candidate = rng.uniform_bin(n);
                    if self.store.len(candidate) < self.store.len(best) {
                        best = candidate;
                    }
                }
                if !self.offline[best] && self.store.try_accept(best, ball) {
                    accepted += 1;
                } else {
                    rejected.push(ball);
                }
            }
            // Restore the pool's age order (rejection order followed the
            // priority permutation).
            rejected.sort();
            balls.clear();
        }
        self.scratch = balls;
        self.pool.restore(rejected);
        if let Some(p) = crate::obs::probes() {
            accept_timer.observe(&p.phase_accept_nanos);
            p.accepted_balls.add(accepted);
            p.rejected_balls.add(thrown - accepted);
        }

        // 4. FIFO deletion; collect waiting times and load statistics. The
        // waiting times land in the caller's (reused) report buffer, so
        // steady-state rounds allocate nothing.
        let serve_timer = iba_obs::PhaseTimer::start();
        let waiting_times = &mut report.waiting_times;
        let mut failed_deletions = 0u64;
        let mut buffered = 0u64;
        let mut max_load = 0u64;
        if let Some(stats) = parallel_served {
            // The parallel kernel already committed, served, and
            // re-primed inside its worker phase; fold its merged stats.
            failed_deletions = stats.failed_deletions;
            buffered = stats.buffered;
            max_load = stats.max_load;
            self.total_deleted += stats.deleted;
            self.kernel_primed = true;
        } else {
            match &mut self.store {
                BinStore::Arena(arena) if commit_pending => {
                    // Fused commit + serve: fold each bin's accepted count
                    // (left uncommitted by the fast path's scatter) into
                    // its ring length and FIFO-serve in the same meta pass.
                    match arena.uniform_cap() {
                        Some(c0) if self.kernel.uses_simd() && self.kernel_regular => {
                            // Regular SIMD rounds run the register-only
                            // SWAR sweep: two bins per word, meta
                            // write-only (see `crate::simd`).
                            let state = &mut self.kscratch.state;
                            debug_assert_eq!(state.len(), n);
                            let stats = crate::simd::commit_serve_prime_swar(
                                &mut arena.as_slice_mut(),
                                state,
                                c0,
                                round,
                                waiting_times,
                            );
                            failed_deletions = stats.failed_deletions;
                            buffered = stats.buffered;
                            max_load = stats.max_load;
                            self.total_deleted += stats.deleted;
                            self.kernel_regular = stats.regular;
                            self.kernel_primed = true;
                        }
                        Some(c0) => {
                            // Uniform capacity profile: the accepted count
                            // is recoverable from the register's remaining
                            // room alone (no quota array), and the same
                            // sweep writes next round's register —
                            // (room << 16) | tail — so the next acceptance
                            // pass skips its init sweep entirely
                            // ("priming").
                            let state = &mut self.kscratch.state;
                            debug_assert_eq!(state.len(), n);
                            let mut regular = true;
                            for (b, s) in state.iter_mut().enumerate() {
                                if self.offline[b] {
                                    // A crashed bin neither serves nor
                                    // counts as a failed deletion
                                    // *attempt* — it makes none. Its
                                    // register had zero room, so there is
                                    // nothing to commit; re-arm it with
                                    // zero room again.
                                    debug_assert_eq!(*s >> 16, 0);
                                    let (len, tail) = arena.len_tail(b);
                                    *s = tail;
                                    let load = u64::from(len);
                                    buffered += load;
                                    max_load = max_load.max(load);
                                    regular = false;
                                    continue;
                                }
                                let (served, len, tail) =
                                    arena.commit_serve_uniform(b, c0, *s >> 16);
                                match served {
                                    Some(ball) => {
                                        waiting_times.push(ball.age_at(round));
                                        self.total_deleted += 1;
                                    }
                                    None => failed_deletions += 1,
                                }
                                // `saturating_sub`: an overfull bin (a
                                // degraded-checkpoint restore can leave
                                // len > c₀ under a uniform profile) must
                                // re-arm with zero room, not an
                                // underflowed quota.
                                *s = (c0.saturating_sub(len) << 16) | tail;
                                regular &= len <= c0;
                                let load = u64::from(len);
                                buffered += load;
                                max_load = max_load.max(load);
                            }
                            self.kernel_regular = regular;
                            self.kernel_primed = true;
                        }
                        None => {
                            self.kernel_regular = false;
                            let quotas = &self.kscratch.quotas;
                            let state = &self.kscratch.state;
                            for b in 0..n {
                                let taken = (quotas[b] - (state[b] >> 16)) as usize;
                                if self.offline[b] {
                                    // A crashed bin neither serves nor
                                    // counts as a failed deletion
                                    // *attempt* — it makes none. Its quota
                                    // was 0, so there is nothing to commit.
                                    debug_assert_eq!(taken, 0);
                                    let load = arena.len(b) as u64;
                                    buffered += load;
                                    max_load = max_load.max(load);
                                    continue;
                                }
                                match arena.commit_serve(b, taken) {
                                    Some(ball) => {
                                        waiting_times.push(ball.age_at(round));
                                        self.total_deleted += 1;
                                    }
                                    None => failed_deletions += 1,
                                }
                                let load = arena.len(b) as u64;
                                buffered += load;
                                max_load = max_load.max(load);
                            }
                        }
                    }
                }
                BinStore::Arena(arena) => {
                    for b in 0..n {
                        if self.offline[b] {
                            // A crashed bin neither serves nor counts as a
                            // failed deletion *attempt* — it makes none.
                            let load = arena.len(b) as u64;
                            buffered += load;
                            max_load = max_load.max(load);
                            continue;
                        }
                        match arena.serve(b) {
                            Some(ball) => {
                                waiting_times.push(ball.age_at(round));
                                self.total_deleted += 1;
                            }
                            None => failed_deletions += 1,
                        }
                        let load = arena.len(b) as u64;
                        buffered += load;
                        max_load = max_load.max(load);
                    }
                }
                BinStore::Buffers(bins) => {
                    for (bin, &offline) in bins.iter_mut().zip(&self.offline) {
                        if offline {
                            // A crashed bin neither serves nor counts as a
                            // failed deletion *attempt* — it makes none.
                            buffered += bin.len() as u64;
                            max_load = max_load.max(bin.len() as u64);
                            continue;
                        }
                        match bin.serve() {
                            Some(ball) => {
                                waiting_times.push(ball.age_at(round));
                                self.total_deleted += 1;
                            }
                            None => failed_deletions += 1,
                        }
                        let load = bin.len() as u64;
                        buffered += load;
                        max_load = max_load.max(load);
                    }
                }
            }
        }

        report.round = round;
        report.generated = generated;
        report.thrown = thrown;
        report.accepted = accepted;
        report.deleted = report.waiting_times.len() as u64;
        report.failed_deletions = failed_deletions;
        report.pool_size = self.pool.len() as u64;
        report.buffered = buffered;
        report.max_load = max_load;

        if let Some(p) = crate::obs::probes() {
            serve_timer.observe(&p.phase_serve_nanos);
            iba_obs::flight::recorder().record_round(iba_obs::flight::RoundSample {
                round,
                generated,
                accepted,
                deleted: report.deleted,
                failed_deletions,
                pool_size: report.pool_size,
                buffered,
                max_load,
            });
        }
    }
}

impl AllocationProcess for CappedProcess {
    fn bins(&self) -> usize {
        self.config.bins()
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn pool_size(&self) -> usize {
        self.pool.len()
    }

    fn step(&mut self, rng: &mut SimRng) -> RoundReport {
        let generated = self.config.arrivals().sample(rng);
        let d = self.config.choices();
        self.run_round(generated, ChoiceSource::Rng(rng, d))
    }

    fn step_into(&mut self, rng: &mut SimRng, report: &mut RoundReport) {
        let generated = self.config.arrivals().sample(rng);
        let d = self.config.choices();
        self.run_round_into(generated, ChoiceSource::Rng(rng, d), report);
    }

    fn label(&self) -> String {
        format!(
            "capped(n={}, c={}, λ={}, d={})",
            self.config.bins(),
            self.config.capacity(),
            self.config.lambda(),
            self.config.choices()
        )
    }
}

/// CAPPED under fault injection: crashes freeze a bin's FIFO buffer
/// (crash-recovery semantics, no ball loss), capacity degradation changes
/// the live per-bin bound, and surged balls enter the pool labeled with
/// the current round. All operations preserve ball conservation.
impl iba_sim::faults::FaultTolerant for CappedProcess {
    fn crash_bin(&mut self, i: usize) {
        self.set_bin_offline(i, true);
    }

    fn recover_bin(&mut self, i: usize) {
        self.set_bin_offline(i, false);
    }

    fn offline_bins(&self) -> usize {
        self.offline_count()
    }

    fn set_bin_capacity(&mut self, i: usize, capacity: Option<u32>) {
        let capacity = match capacity {
            None => Capacity::Infinite,
            Some(c) => match Capacity::finite(c) {
                Ok(cap) => cap,
                Err(_) => return, // zero capacity: malformed, ignore
            },
        };
        CappedProcess::set_bin_capacity(self, i, capacity);
    }

    fn surge_pool(&mut self, extra: u64) {
        self.inject_pool(extra);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Capacity;

    fn process(n: usize, c: u32, lambda: f64) -> CappedProcess {
        CappedProcess::new(CappedConfig::new(n, c, lambda).unwrap())
    }

    #[test]
    fn first_round_generates_lambda_n() {
        let mut p = process(100, 1, 0.5);
        let mut rng = SimRng::seed_from(1);
        let r = p.step(&mut rng);
        assert_eq!(r.round, 1);
        assert_eq!(r.generated, 50);
        assert_eq!(r.thrown, 50);
        assert!(r.conserves_balls());
        assert!(p.conserves_balls());
    }

    #[test]
    fn deleted_balls_report_waiting_times() {
        let mut p = process(50, 1, 0.5);
        let mut rng = SimRng::seed_from(2);
        let r = p.step(&mut rng);
        // Every deleted ball was generated this round => waiting time 0.
        assert!(r.deleted > 0);
        assert!(r.waiting_times.iter().all(|&w| w == 0));
    }

    #[test]
    fn loads_never_exceed_capacity() {
        let mut p = process(32, 2, 0.75);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 {
            p.step(&mut rng);
            assert!(p.loads().iter().all(|&l| l <= 2));
        }
    }

    #[test]
    fn conservation_holds_over_many_rounds() {
        let mut p = process(64, 3, 0.75);
        let mut rng = SimRng::seed_from(4);
        for _ in 0..500 {
            let r = p.step(&mut rng);
            assert!(r.conserves_balls(), "round report conservation");
            assert!(p.conserves_balls(), "process conservation");
            assert!(p.pool().is_age_sorted());
        }
    }

    #[test]
    fn accepted_plus_rejected_equals_thrown() {
        let mut p = process(16, 1, 0.75);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..50 {
            let r = p.step(&mut rng);
            assert_eq!(r.thrown, r.accepted + r.pool_size);
        }
    }

    #[test]
    fn zero_rate_stays_empty() {
        let mut p = process(16, 1, 0.0);
        let mut rng = SimRng::seed_from(6);
        for _ in 0..10 {
            let r = p.step(&mut rng);
            assert_eq!(r.generated, 0);
            assert_eq!(r.pool_size, 0);
            assert_eq!(r.deleted, 0);
            assert_eq!(r.failed_deletions, 16);
        }
    }

    #[test]
    fn unit_capacity_bins_start_every_round_empty() {
        // For c = 1, a bin accepts one ball and deletes it the same round,
        // so after the deletion stage every bin must be empty.
        let mut p = process(64, 1, 0.75);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..100 {
            let r = p.step(&mut rng);
            assert_eq!(r.buffered, 0);
            assert_eq!(r.max_load, 0);
            assert_eq!(p.buffered(), 0);
        }
    }

    #[test]
    fn infinite_capacity_accepts_everything() {
        let mut p = CappedProcess::new(CappedConfig::unbounded(32, 0.75).unwrap());
        assert_eq!(p.config().capacity(), Capacity::Infinite);
        let mut rng = SimRng::seed_from(8);
        for _ in 0..100 {
            let r = p.step(&mut rng);
            assert_eq!(r.pool_size, 0, "unbounded bins reject nothing");
            assert_eq!(r.accepted, r.thrown);
        }
    }

    #[test]
    fn step_with_choices_is_deterministic() {
        let mut p = process(4, 1, 0.5);
        // 2 balls; both request bin 3.
        let r = p.step_with_choices(&[3, 3]);
        assert_eq!(r.thrown, 2);
        assert_eq!(r.accepted, 1);
        assert_eq!(r.pool_size, 1);
        assert_eq!(r.deleted, 1);
        // Next round: leftover + 2 new = 3 balls, spread over distinct bins.
        let r = p.step_with_choices(&[0, 1, 2]);
        assert_eq!(r.accepted, 3);
        assert_eq!(r.pool_size, 0);
    }

    #[test]
    fn step_with_choices_prefers_oldest() {
        let mut p = process(4, 1, 0.25);
        // Round 1: 1 ball -> bin 0 accepted and immediately deleted? It is
        // accepted, then served the same round (waiting time 0).
        let r = p.step_with_choices(&[0]);
        assert_eq!(r.accepted, 1);
        assert_eq!(r.waiting_times, vec![0]);
        // Round 2: throw new ball to bin 1; accepted.
        let r = p.step_with_choices(&[1]);
        assert_eq!(r.accepted, 1);

        // Construct contention: round 3's ball and round 4's ball both to
        // bin 2; the round-3 leftover (older) must win in round 4.
        let r = p.step_with_choices(&[2]);
        assert_eq!(r.pool_size, 0);
        // Fill bin 2 by sending two balls in one round (c = 1): one is
        // rejected.
        let mut p2 = process(4, 1, 0.5);
        let r = p2.step_with_choices(&[2, 2]);
        assert_eq!(r.pool_size, 1);
        // The leftover is older than next round's newcomers; if all three
        // target bin 3, the oldest (leftover) is accepted.
        let r = p2.step_with_choices(&[3, 3, 3]);
        assert_eq!(r.accepted, 1);
        // The accepted ball is served; it was generated in round 1, so its
        // waiting time is 2 - 1 = 1.
        assert_eq!(r.waiting_times, vec![1]);
    }

    #[test]
    #[should_panic(expected = "one choice per thrown ball")]
    fn step_with_choices_wrong_len_panics() {
        let mut p = process(4, 1, 0.5);
        p.step_with_choices(&[0]);
    }

    #[test]
    fn warm_start_fills_pool_to_prediction() {
        let mut p = process(128, 2, 0.75);
        p.warm_start();
        assert_eq!(p.pool_size(), p.config().predicted_stationary_pool());
        assert!(p.conserves_balls());
        // Warm starting twice is idempotent.
        let size = p.pool_size();
        p.warm_start();
        assert_eq!(p.pool_size(), size);
    }

    #[test]
    fn inject_pool_supports_adversarial_overload() {
        let mut p = process(16, 1, 0.5);
        p.inject_pool(1000);
        assert_eq!(p.pool_size(), 1000);
        let mut rng = SimRng::seed_from(9);
        let r = p.step(&mut rng);
        assert_eq!(r.thrown, 1008);
        assert!(p.conserves_balls());
    }

    #[test]
    fn two_choice_ablation_reduces_rejections() {
        // With d = 2 the process should reject at most as much as d = 1 on
        // average (power of two choices); compare stationary pools.
        let mut one = CappedProcess::new(
            CappedConfig::new(256, 1, 0.75)
                .unwrap()
                .with_choices(1)
                .unwrap(),
        );
        let mut two = CappedProcess::new(
            CappedConfig::new(256, 1, 0.75)
                .unwrap()
                .with_choices(2)
                .unwrap(),
        );
        let mut rng1 = SimRng::seed_from(10);
        let mut rng2 = SimRng::seed_from(11);
        let mut pool1 = 0u64;
        let mut pool2 = 0u64;
        for i in 0..400 {
            let r1 = one.step(&mut rng1);
            let r2 = two.step(&mut rng2);
            if i >= 200 {
                pool1 += r1.pool_size;
                pool2 += r2.pool_size;
            }
        }
        assert!(
            pool2 < pool1,
            "2-choice stationary pool {pool2} should undercut 1-choice {pool1}"
        );
    }

    #[test]
    fn label_mentions_parameters() {
        let p = process(8, 2, 0.75);
        let l = iba_sim::AllocationProcess::label(&p);
        assert!(l.contains("n=8") && l.contains("c=2") && l.contains("0.75"));
    }

    #[test]
    fn heterogeneous_capacities_are_respected() {
        let config = CappedConfig::new(4, 2, 0.5)
            .unwrap()
            .with_capacity_profile(vec![1, 3, 1, 3])
            .unwrap();
        let mut p = CappedProcess::new(config);
        // Saturate every bin: 12 balls, 3 to each bin.
        p.inject_pool(10);
        let choices = [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3];
        let r = p.step_with_choices(&choices);
        // Bins 0 and 2 accept 1 each; bins 1 and 3 accept 3 each.
        assert_eq!(r.accepted, 8);
        assert_eq!(p.bin(0).len(), 0); // accepted 1, served 1
        assert_eq!(p.bin(1).len(), 2); // accepted 3, served 1
        assert_eq!(p.bin(2).len(), 0);
        assert_eq!(p.bin(3).len(), 2);
        assert!(p.conserves_balls());
    }

    #[test]
    fn heterogeneous_system_is_stable_at_matching_rate() {
        // Mixed capacities {1, 3} with mean 2 must sustain λ = 0.75 like a
        // uniform c = 2 system does.
        let n = 128;
        let profile: Vec<u32> = (0..n).map(|i| if i % 2 == 0 { 1 } else { 3 }).collect();
        let config = CappedConfig::new(n, 2, 0.75)
            .unwrap()
            .with_capacity_profile(profile)
            .unwrap();
        let mut p = CappedProcess::new(config);
        let mut rng = SimRng::seed_from(21);
        for _ in 0..1_000 {
            p.step(&mut rng);
        }
        let mid = p.pool_size();
        for _ in 0..1_000 {
            p.step(&mut rng);
        }
        let end = p.pool_size();
        assert!(p.conserves_balls());
        assert!(
            (end as i64 - mid as i64).unsigned_abs() < 3 * n as u64,
            "pool drifting: {mid} -> {end}"
        );
    }

    #[test]
    fn acceptance_policies_conserve_and_differ_in_tails() {
        use crate::config::AcceptancePolicy;
        let n = 256;
        let lambda = 1.0 - 1.0 / 64.0;
        let mut max_wait = std::collections::HashMap::new();
        for policy in [
            AcceptancePolicy::OldestFirst,
            AcceptancePolicy::YoungestFirst,
            AcceptancePolicy::Random,
        ] {
            let config = CappedConfig::new(n, 2, lambda).unwrap().with_policy(policy);
            let mut p = CappedProcess::new(config);
            let mut rng = SimRng::seed_from(77);
            let mut worst = 0u64;
            for i in 0..2_000 {
                let r = p.step(&mut rng);
                assert!(r.conserves_balls(), "{policy}");
                assert!(p.conserves_balls(), "{policy}");
                assert!(p.pool().is_age_sorted(), "{policy}");
                if i >= 1_000 {
                    worst = worst.max(r.max_waiting_time().unwrap_or(0));
                }
            }
            max_wait.insert(format!("{policy}"), worst);
        }
        // Oldest-first must have the (weakly) best tail; youngest-first
        // starves old balls and must be strictly worse.
        let oldest = max_wait["oldest-first"];
        let youngest = max_wait["youngest-first"];
        let random = max_wait["random"];
        assert!(
            youngest > 2 * oldest,
            "youngest-first tail {youngest} should dwarf oldest-first {oldest}"
        );
        assert!(random >= oldest, "random {random} vs oldest {oldest}");
    }

    #[test]
    #[should_panic(expected = "oldest-first policy")]
    fn step_with_choices_rejects_ablation_policies() {
        use crate::config::AcceptancePolicy;
        let config = CappedConfig::new(4, 1, 0.5)
            .unwrap()
            .with_policy(AcceptancePolicy::Random);
        let mut p = CappedProcess::new(config);
        p.step_with_choices(&[0, 1]);
    }

    #[test]
    fn offline_bin_rejects_and_freezes() {
        let mut p = process(4, 2, 0.5);
        // Round 1: fill bin 0 with both balls.
        p.step_with_choices(&[0, 0]);
        assert_eq!(p.bin(0).len(), 1); // accepted 2, served 1

        p.set_bin_offline(0, true);
        assert_eq!(p.offline_count(), 1);
        // Round 2: both new balls target bin 0 -> rejected; nothing served
        // from bin 0; its ball stays frozen.
        let r = p.step_with_choices(&[0, 0]);
        assert_eq!(r.accepted, 0);
        assert_eq!(r.pool_size, 2);
        assert_eq!(p.bin(0).len(), 1);
        assert!(p.conserves_balls());

        // Recovery: bin 0 serves its frozen ball (generated round 1,
        // served round 3 => waiting time 2) and accepts again.
        p.set_bin_offline(0, false);
        let r = p.step_with_choices(&[0, 0, 0, 0]); // 2 leftovers + 2 new
        assert_eq!(r.accepted, 1);
        assert!(r.waiting_times.contains(&2));
        assert!(p.conserves_balls());
    }

    #[test]
    fn system_stays_stable_under_partial_outage() {
        // 10 % of bins crash permanently; effective service capacity drops
        // to 0.9n per round, still above λn = 0.75n, so the pool must not
        // diverge.
        let n = 200;
        let mut p = process(n, 2, 0.75);
        for i in 0..n / 10 {
            p.set_bin_offline(i * 10, true);
        }
        let mut rng = SimRng::seed_from(33);
        for _ in 0..1_500 {
            p.step(&mut rng);
        }
        let mid = p.pool_size();
        for _ in 0..1_500 {
            p.step(&mut rng);
        }
        let end = p.pool_size();
        assert!(p.conserves_balls());
        // No linear growth: the pool stays within a stochastic band.
        assert!(
            (end as i64 - mid as i64).unsigned_abs() < (n * 4) as u64,
            "pool drifting: {mid} -> {end}"
        );
    }

    #[test]
    #[should_panic(expected = "bin index 4 out of range for a process with n = 4 bins")]
    fn set_bin_offline_rejects_out_of_range_index() {
        let mut p = process(4, 1, 0.5);
        p.set_bin_offline(4, true);
    }

    #[test]
    fn try_set_bin_offline_reports_out_of_domain() {
        use iba_sim::error::ConfigError;
        let mut p = process(4, 1, 0.5);
        assert!(matches!(
            p.try_set_bin_offline(4, true),
            Err(ConfigError::OutOfDomain { .. })
        ));
        assert_eq!(p.offline_count(), 0, "failed call must not mutate");
        assert!(p.try_set_bin_offline(3, true).is_ok());
        assert!(p.is_bin_offline(3));
        assert_eq!(p.offline_count(), 1);
    }

    #[test]
    fn degraded_capacity_rejects_new_but_keeps_overflow() {
        let mut p = process(4, 3, 0.5);
        // Fill bin 0 to its configured capacity 3; one ball is served.
        p.inject_pool(1);
        p.step_with_choices(&[0, 0, 0]);
        assert_eq!(p.bin(0).len(), 2);

        p.set_bin_capacity(0, Capacity::finite(1).unwrap());
        assert_eq!(p.bin(0).capacity(), Capacity::finite(1).unwrap());
        // Over the degraded bound: rejects until drained below it.
        let r = p.step_with_choices(&[0, 0]);
        assert_eq!(r.accepted, 0);
        assert_eq!(p.bin(0).len(), 1); // one served, none accepted
        assert!(p.conserves_balls());
    }

    #[test]
    fn fault_tolerant_surface_maps_to_process_operations() {
        use iba_sim::faults::FaultTolerant;
        let mut p = process(8, 2, 0.5);
        FaultTolerant::crash_bin(&mut p, 2);
        assert!(p.is_bin_offline(2));
        assert_eq!(FaultTolerant::offline_bins(&p), 1);
        FaultTolerant::recover_bin(&mut p, 2);
        assert_eq!(p.offline_count(), 0);
        FaultTolerant::set_bin_capacity(&mut p, 1, Some(5));
        assert_eq!(p.bin(1).capacity(), Capacity::finite(5).unwrap());
        FaultTolerant::set_bin_capacity(&mut p, 1, Some(0)); // malformed: ignored
        assert_eq!(p.bin(1).capacity(), Capacity::finite(5).unwrap());
        FaultTolerant::set_bin_capacity(&mut p, 1, None);
        assert_eq!(p.bin(1).capacity(), Capacity::Infinite);
        FaultTolerant::surge_pool(&mut p, 42);
        assert_eq!(p.pool_size(), 42);
        assert!(p.conserves_balls());
    }

    #[test]
    fn load_histogram_counts_bins() {
        let mut p = process(8, 2, 0.75);
        let mut rng = SimRng::seed_from(12);
        for _ in 0..20 {
            p.step(&mut rng);
        }
        let h = p.load_histogram();
        assert_eq!(h.count(), 8); // one entry per bin
        assert!(h.max().unwrap_or(0) <= 2);
    }
}
