//! The shared-randomness coupling of CAPPED and MODCAPPED
//! (Lemmas 1 and 6 of the paper).
//!
//! The paper's pool-size analysis hinges on stochastic dominance: at every
//! round, the pool of CAPPED(c, λ) is dominated by the pool of
//! MODCAPPED(c, λ). The proof couples the two processes by letting the
//! first `ν^C(t)` balls of MODCAPPED reuse the bin choices of CAPPED's
//! `ν^C(t)` balls, with MODCAPPED's extra balls choosing independently.
//! Under this coupling the dominance is *pathwise*:
//! `m^C(t) ≤ m^M(t)` and `ℓᵢ^C(t) ≤ ℓᵢ^M(t)` hold deterministically on
//! every sample path (Lemma 6's induction).
//!
//! [`CoupledRun`] executes exactly this coupling and checks both invariants
//! after every round, turning the lemma into an executable property that
//! the test suite verifies on real trajectories (experiment id `DOM` in
//! DESIGN.md).

use iba_sim::process::RoundReport;
use iba_sim::rng::SimRng;

use crate::config::CappedConfig;
use crate::modcapped::ModCappedProcess;
use crate::process::CappedProcess;

/// Outcome of one coupled round.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledReport {
    /// CAPPED's round report.
    pub capped: RoundReport,
    /// MODCAPPED's round report.
    pub modcapped: RoundReport,
    /// Whether `m^C(t) ≤ m^M(t)` held after this round.
    pub pool_dominated: bool,
    /// Whether `ℓᵢ^C(t) ≤ ℓᵢ^M(t)` held for every bin after this round.
    pub loads_dominated: bool,
}

impl CoupledReport {
    /// Whether both dominance invariants held.
    pub fn dominance_holds(&self) -> bool {
        self.pool_dominated && self.loads_dominated
    }
}

/// A coupled execution of CAPPED(c, λ) and MODCAPPED(c, λ).
///
/// # Examples
///
/// ```
/// use iba_core::{CappedConfig, CoupledRun};
/// use iba_sim::SimRng;
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let mut run = CoupledRun::new(CappedConfig::new(64, 2, 0.75)?)?;
/// let mut rng = SimRng::seed_from(11);
/// for _ in 0..50 {
///     let report = run.step(&mut rng);
///     assert!(report.dominance_holds());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoupledRun {
    capped: CappedProcess,
    modcapped: ModCappedProcess,
    choices: Vec<usize>,
}

impl CoupledRun {
    /// Creates a coupled pair from a CAPPED configuration. The MODCAPPED
    /// side uses the paper's `m*` for the same `(n, c, λ)`.
    ///
    /// # Errors
    ///
    /// Returns a [`iba_sim::error::ConfigError`] if the configuration's
    /// parameters are invalid for MODCAPPED.
    ///
    /// # Panics
    ///
    /// Panics if the configuration uses an infinite capacity, a
    /// non-deterministic arrival model, or `d ≠ 1` choices — the coupling
    /// is defined only for the paper's base process.
    pub fn new(config: CappedConfig) -> Result<Self, iba_sim::error::ConfigError> {
        let capacity = config
            .capacity()
            .as_finite()
            .expect("coupling requires a finite capacity");
        assert_eq!(
            config.choices(),
            1,
            "coupling requires the 1-choice process"
        );
        let modcapped = ModCappedProcess::new(config.bins(), capacity, config.lambda())?;
        Ok(CoupledRun {
            capped: CappedProcess::new(config),
            modcapped,
            choices: Vec::new(),
        })
    }

    /// The CAPPED side.
    pub fn capped(&self) -> &CappedProcess {
        &self.capped
    }

    /// The MODCAPPED side.
    pub fn modcapped(&self) -> &ModCappedProcess {
        &self.modcapped
    }

    /// Executes one coupled round: draws `ν^M` bin choices, feeds the first
    /// `ν^C` of them to CAPPED and all of them to MODCAPPED, then evaluates
    /// the dominance invariants.
    pub fn step(&mut self, rng: &mut SimRng) -> CoupledReport {
        let nu_c = self.capped.next_throw_count();
        let nu_m = self.modcapped.next_throw_count();
        debug_assert!(
            nu_m >= nu_c,
            "MODCAPPED must throw at least as many balls (Eq. 6): {nu_m} < {nu_c}"
        );
        let n = self.capped.config().bins();
        self.choices.clear();
        self.choices
            .extend((0..nu_m.max(nu_c)).map(|_| rng.uniform_bin(n)));

        let capped_report = self.capped.step_with_choices(&self.choices[..nu_c]);
        let modcapped_report = self.modcapped.step_with_choices(&self.choices[..nu_m]);

        let pool_dominated = capped_report.pool_size <= modcapped_report.pool_size;
        let loads_dominated = (0..n).all(|i| self.capped.bin(i).len() <= self.modcapped.load(i));

        CoupledReport {
            capped: capped_report,
            modcapped: modcapped_report,
            pool_dominated,
            loads_dominated,
        }
    }

    /// Runs `rounds` coupled rounds; returns the number of rounds in which
    /// a dominance invariant was violated (0 if Lemma 6 holds on this path,
    /// as it must).
    pub fn run_checked(&mut self, rounds: u64, rng: &mut SimRng) -> u64 {
        (0..rounds)
            .filter(|_| !self.step(rng).dominance_holds())
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coupled(n: usize, c: u32, lambda: f64) -> CoupledRun {
        CoupledRun::new(CappedConfig::new(n, c, lambda).unwrap()).unwrap()
    }

    #[test]
    fn dominance_holds_unit_capacity() {
        let mut run = coupled(64, 1, 0.75);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(run.run_checked(300, &mut rng), 0);
    }

    #[test]
    fn dominance_holds_general_capacity() {
        for c in [2u32, 3, 4] {
            let mut run = coupled(48, c, 0.75);
            let mut rng = SimRng::seed_from(c as u64 + 10);
            assert_eq!(run.run_checked(200, &mut rng), 0, "c = {c}");
        }
    }

    #[test]
    fn dominance_holds_at_extreme_rates() {
        // λ = 0: CAPPED idles while MODCAPPED churns m* balls per round.
        let mut idle = coupled(32, 2, 0.0);
        let mut rng = SimRng::seed_from(20);
        assert_eq!(idle.run_checked(100, &mut rng), 0);

        // λ = 1 − 1/n: the heavy-traffic boundary of Theorem 2.
        let n = 32;
        let mut heavy = coupled(n, 2, 1.0 - 1.0 / n as f64);
        assert_eq!(heavy.run_checked(200, &mut rng), 0);
    }

    #[test]
    fn both_sides_advance_in_lockstep() {
        let mut run = coupled(16, 2, 0.75);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10 {
            run.step(&mut rng);
        }
        assert_eq!(
            iba_sim::AllocationProcess::round(run.capped()),
            iba_sim::AllocationProcess::round(run.modcapped())
        );
    }

    #[test]
    fn coupled_runs_are_deterministic_per_seed() {
        let mut a = coupled(16, 2, 0.75);
        let mut b = coupled(16, 2, 0.75);
        let mut rng_a = SimRng::seed_from(4);
        let mut rng_b = SimRng::seed_from(4);
        for _ in 0..20 {
            assert_eq!(a.step(&mut rng_a), b.step(&mut rng_b));
        }
    }

    #[test]
    #[should_panic(expected = "finite capacity")]
    fn rejects_infinite_capacity() {
        let _ = CoupledRun::new(CappedConfig::unbounded(16, 0.5).unwrap());
    }
}
