//! Telemetry probes for the core process and kernel.
//!
//! All handles are registered once (lazily) in the global
//! [`iba_obs`] registry and cached in a `OnceLock`, so the hot path
//! never takes the registry lock. [`probes`] is the single gate: it
//! costs one relaxed load and returns `None` while telemetry is
//! disabled, making every probe site free to leave inline in the round
//! kernel. Probes are per-*round* (or per-sweep), never per-ball, and
//! consume no randomness — the `telemetry_differential` test pins that
//! enabling them changes no trajectory.

use std::sync::{Arc, OnceLock};

use iba_obs::{global, Counter, Histogram};

/// The core crate's registered metrics.
#[derive(Debug)]
pub(crate) struct CoreProbes {
    /// Rounds accepted through the single-pass scatter fast path.
    pub fast_accept_rounds: Arc<Counter>,
    /// Fast-path bail-outs (fell back to the exact-histogram pass).
    pub fast_accept_bailouts: Arc<Counter>,
    /// Rounds accepted through the exact-histogram fallback.
    pub fallback_rounds: Arc<Counter>,
    /// Arena re-layouts (stride growth; only fault-raised capacities).
    pub arena_grows: Arc<Counter>,
    /// Balls accepted into buffers, lifetime.
    pub accepted_balls: Arc<Counter>,
    /// Allocation requests rejected back into the pool, lifetime.
    pub rejected_balls: Arc<Counter>,
    /// Ball-generation phase duration per round.
    pub phase_generate_nanos: Arc<Histogram>,
    /// Choice-drawing + acceptance (scatter) phase duration per round.
    pub phase_accept_nanos: Arc<Histogram>,
    /// FIFO-deletion (serve) phase duration per round.
    pub phase_serve_nanos: Arc<Histogram>,
    /// Register-prime init sweep duration (cold SIMD rounds only; primed
    /// rounds skip the sweep entirely, so absence of samples is the
    /// steady-state signal).
    pub phase_prime_nanos: Arc<Histogram>,
    /// Scatter sub-phase duration: the single random-access pass over the
    /// request stream (sequential SIMD rounds), or the whole partitioned
    /// worker section — scatter + fused serve across all workers,
    /// wall-clock — on parallel rounds.
    pub phase_scatter_nanos: Arc<Histogram>,
    /// Parallel-round merge sub-phase duration: summing worker stats,
    /// concatenating waits, and the canonical-order k-way reject merge.
    pub phase_merge_nanos: Arc<Histogram>,
    /// Rounds that ran the partitioned multi-worker kernel.
    pub parallel_rounds: Arc<Counter>,
    /// Balls accepted by `BinShard::accept` calls, lifetime.
    pub shard_accepted_balls: Arc<Counter>,
    /// Balls rejected by `BinShard::accept` calls, lifetime.
    pub shard_rejected_balls: Arc<Counter>,
    /// Balls served by `BinShard::serve` calls, lifetime.
    pub shard_served_balls: Arc<Counter>,
}

impl CoreProbes {
    fn register() -> Self {
        let r = global();
        CoreProbes {
            fast_accept_rounds: r.counter("iba_core_arena_fast_accept_rounds_total"),
            fast_accept_bailouts: r.counter("iba_core_arena_fast_accept_bailouts_total"),
            fallback_rounds: r.counter("iba_core_arena_fallback_rounds_total"),
            arena_grows: r.counter("iba_core_arena_grow_total"),
            accepted_balls: r.counter("iba_core_accepted_balls_total"),
            rejected_balls: r.counter("iba_core_rejected_balls_total"),
            phase_generate_nanos: r.histogram("iba_core_phase_generate_nanos"),
            phase_accept_nanos: r.histogram("iba_core_phase_accept_nanos"),
            phase_serve_nanos: r.histogram("iba_core_phase_serve_nanos"),
            phase_prime_nanos: r.histogram("iba_core_phase_prime_nanos"),
            phase_scatter_nanos: r.histogram("iba_core_phase_scatter_nanos"),
            phase_merge_nanos: r.histogram("iba_core_phase_merge_nanos"),
            parallel_rounds: r.counter("iba_core_arena_parallel_rounds_total"),
            shard_accepted_balls: r.counter("iba_core_shard_accepted_balls_total"),
            shard_rejected_balls: r.counter("iba_core_shard_rejected_balls_total"),
            shard_served_balls: r.counter("iba_core_shard_served_balls_total"),
        }
    }
}

/// The probe gate: `None` (after one relaxed load) while telemetry is
/// disabled, the cached handles otherwise.
#[inline]
pub(crate) fn probes() -> Option<&'static CoreProbes> {
    if !iba_obs::enabled() {
        return None;
    }
    static PROBES: OnceLock<CoreProbes> = OnceLock::new();
    Some(PROBES.get_or_init(CoreProbes::register))
}
