//! The CAPPED(c, λ) infinite balanced allocation process.
//!
//! This crate implements the primary contribution of *"Infinite Balanced
//! Allocation via Finite Capacities"* (Berenbrink, Friedetzky, Hahn, Hintze,
//! Kaaser, Kling, Nagel — ICDCS 2021):
//!
//! - [`process::CappedProcess`] — the CAPPED(c, λ) process of Algorithm 1:
//!   `n` bins with FIFO buffers of capacity `c`; each round `λn` new balls
//!   join the pool, every pooled ball requests one uniformly random bin,
//!   bins accept their oldest requests up to remaining capacity, and every
//!   non-empty bin then serves (deletes) the head of its queue.
//! - [`modcapped::ModCappedProcess`] — the MODCAPPED(c, λ) companion process
//!   used in the paper's analysis (Sections III-A and IV-A): inflated ball
//!   generation `max{λn, m* − m(t−1)}` and phase-structured red/blue buffers.
//! - [`coupling::CoupledRun`] — the shared-randomness coupling of Lemmas 1
//!   and 6, which lets tests verify the stochastic-dominance invariants
//!   `m^C(t) ≤ m^M(t)` and `ℓᵢ^C(t) ≤ ℓᵢ^M(t)` on every round of a real run.
//!
//! Setting the capacity to [`Capacity::Infinite`](config::Capacity) turns
//! CAPPED(∞, λ) into the classical parallel GREEDY\[1\] process (see the
//! paper's Section II), which is verified against the independent baseline
//! implementation in `iba-baselines` by the workspace integration tests.
//!
//! # Example
//!
//! ```
//! use iba_core::config::CappedConfig;
//! use iba_core::process::CappedProcess;
//! use iba_sim::{AllocationProcess, Simulation, SimRng};
//!
//! # fn main() -> Result<(), iba_sim::error::ConfigError> {
//! // 1024 bins, buffer capacity 2, injection rate 0.75.
//! let config = CappedConfig::new(1024, 2, 0.75)?;
//! let process = CappedProcess::new(config);
//! let mut sim = Simulation::new(process, SimRng::seed_from(7));
//! sim.run_rounds(200);
//! // In the stationary regime the pool hovers near n·ln(1/(1-λ))/c.
//! println!("pool size after 200 rounds: {}", sim.process().pool_size());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod ball;
pub mod buffer;
pub mod checkpoint;
pub mod config;
pub mod continuous;
pub mod coupling;
pub mod metrics;
pub mod modcapped;
mod obs;
pub mod pool;
pub mod process;
pub mod shard;
mod simd;
pub mod spec;

pub use arena::{BinArena, BinView};
pub use ball::Ball;
pub use buffer::BinBuffer;
pub use config::{AcceptancePolicy, Capacity, CappedConfig};
pub use coupling::CoupledRun;
pub use metrics::WaitQuantiles;
pub use modcapped::ModCappedProcess;
pub use pool::Pool;
pub use process::CappedProcess;
pub use process::KernelMode;
pub use shard::{shard_of, shard_range, BinShard};
