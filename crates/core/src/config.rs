//! Configuration for the CAPPED(c, λ) process.

use std::fmt;
use std::num::NonZeroU32;

use iba_sim::arrivals::ArrivalModel;
use iba_sim::error::ConfigError;

/// A bin's buffer capacity: the `c` in CAPPED(c, λ).
///
/// The paper requires `c ∈ ℕ` (at least 1); `Capacity::Infinite` models
/// `c = ∞`, for which CAPPED(∞, λ) coincides with the parallel GREEDY\[1\]
/// process (Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capacity {
    /// A finite buffer of the given size.
    Finite(NonZeroU32),
    /// No capacity limit (CAPPED(∞, λ) ≡ GREEDY\[1\]).
    Infinite,
}

impl Capacity {
    /// Creates a finite capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroCapacity`] if `c == 0`.
    pub fn finite(c: u32) -> Result<Self, ConfigError> {
        NonZeroU32::new(c)
            .map(Capacity::Finite)
            .ok_or(ConfigError::ZeroCapacity)
    }

    /// Whether a buffer currently holding `load` balls can accept another.
    #[inline]
    pub fn has_room(&self, load: usize) -> bool {
        match self {
            Capacity::Finite(c) => load < c.get() as usize,
            Capacity::Infinite => true,
        }
    }

    /// The finite value, if any.
    pub fn as_finite(&self) -> Option<u32> {
        match self {
            Capacity::Finite(c) => Some(c.get()),
            Capacity::Infinite => None,
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capacity::Finite(c) => write!(f, "{c}"),
            Capacity::Infinite => write!(f, "∞"),
        }
    }
}

impl TryFrom<u32> for Capacity {
    type Error = ConfigError;
    fn try_from(c: u32) -> Result<Self, Self::Error> {
        Capacity::finite(c)
    }
}

/// Which balls a bin prefers when more request it than it has room for.
///
/// The paper's process accepts the **oldest** requests — the ingredient
/// behind the `log log n + O(1)` waiting-time tail (old balls can never be
/// starved by younger ones; see Lemmas 3–5). The alternatives exist for
/// the `POLICY` ablation, which quantifies exactly how much that design
/// choice buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AcceptancePolicy {
    /// Accept the oldest requests first (Algorithm 1).
    #[default]
    OldestFirst,
    /// Accept the youngest requests first (adversarial inversion: old
    /// balls starve, waiting-time tails blow up).
    YoungestFirst,
    /// Accept requests in uniformly random priority order (age-blind).
    Random,
}

impl fmt::Display for AcceptancePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AcceptancePolicy::OldestFirst => "oldest-first",
            AcceptancePolicy::YoungestFirst => "youngest-first",
            AcceptancePolicy::Random => "random",
        };
        write!(f, "{name}")
    }
}

/// Full configuration of a CAPPED(c, λ) run.
///
/// Construct with [`CappedConfig::new`] (the paper's deterministic-arrival
/// model) and refine with the builder methods. All constructors validate the
/// Section-II model constraints.
///
/// # Examples
///
/// ```
/// use iba_core::config::{CappedConfig, Capacity};
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let config = CappedConfig::new(1 << 10, 3, 0.75)?
///     .with_choices(2)?; // d-choice ablation variant
/// assert_eq!(config.bins(), 1024);
/// assert_eq!(config.capacity().as_finite(), Some(3));
/// assert_eq!(config.arrivals().mean(), 768.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CappedConfig {
    bins: usize,
    capacity: Capacity,
    lambda: f64,
    arrivals: ArrivalModel,
    choices: u32,
    /// Optional per-bin capacity override (heterogeneous-server
    /// extension); when set, `capacity` holds the maximum entry.
    capacity_profile: Option<Vec<u32>>,
    policy: AcceptancePolicy,
}

impl CappedConfig {
    /// Creates the paper's standard configuration: `n` bins, finite capacity
    /// `c`, deterministic arrivals of `λn` balls per round, one random
    /// choice per ball.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `n == 0`, `c == 0`, `λ ∉ [0, 1 − 1/n]`,
    /// or `λn` is not an integer.
    pub fn new(bins: usize, capacity: u32, lambda: f64) -> Result<Self, ConfigError> {
        let arrivals = ArrivalModel::deterministic_rate(bins, lambda)?;
        Ok(CappedConfig {
            bins,
            capacity: Capacity::finite(capacity)?,
            lambda,
            arrivals,
            choices: 1,
            capacity_profile: None,
            policy: AcceptancePolicy::OldestFirst,
        })
    }

    /// Creates a CAPPED(∞, λ) configuration (equivalent to GREEDY\[1\]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the arrival parameters are invalid.
    pub fn unbounded(bins: usize, lambda: f64) -> Result<Self, ConfigError> {
        let arrivals = ArrivalModel::deterministic_rate(bins, lambda)?;
        Ok(CappedConfig {
            bins,
            capacity: Capacity::Infinite,
            lambda,
            arrivals,
            choices: 1,
            capacity_profile: None,
            policy: AcceptancePolicy::OldestFirst,
        })
    }

    /// Replaces the arrival model (e.g. with the footnote-2 Bernoulli model
    /// or a Poisson stream) while keeping `λ` for labeling and burn-in
    /// scaling.
    pub fn with_arrivals(mut self, arrivals: ArrivalModel) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the number of random bin choices per ball (the `d`-choice
    /// ablation; the paper's process uses `d = 1`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfDomain`] if `d == 0`.
    pub fn with_choices(mut self, d: u32) -> Result<Self, ConfigError> {
        if d == 0 {
            return Err(ConfigError::OutOfDomain {
                name: "choices",
                domain: "d >= 1",
            });
        }
        self.choices = d;
        Ok(self)
    }

    /// The same configuration with a different bin count — the elastic
    /// membership view of a resized system. Everything else is kept
    /// verbatim, **including the arrival model**: membership changes scale
    /// the service's capacity while the external load stays what it was,
    /// so λn is *not* re-derived from the new `bins` (and λ's usual
    /// `1 − 1/n` domain bound is deliberately not re-checked — the rate
    /// was validated against the original n).
    ///
    /// Mid-resize checkpoints embed the resized view so the core restore
    /// path validates ball conservation against the live bin count.
    ///
    /// # Errors
    ///
    /// `ConfigError::OutOfDomain` if `bins == 0`, or if the configuration
    /// carries a heterogeneous capacity profile (a profile pins one
    /// capacity per original bin; elastic membership requires the uniform
    /// capacity class).
    pub fn resized(mut self, bins: usize) -> Result<Self, ConfigError> {
        if bins == 0 {
            return Err(ConfigError::OutOfDomain {
                name: "bins",
                domain: "n >= 1",
            });
        }
        if self.capacity_profile.is_some() {
            return Err(ConfigError::OutOfDomain {
                name: "capacity_profile",
                domain: "uniform capacities (elastic membership)",
            });
        }
        self.bins = bins;
        Ok(self)
    }

    /// Sets the acceptance policy (the `POLICY` ablation; the paper's
    /// process uses [`AcceptancePolicy::OldestFirst`]).
    pub fn with_policy(mut self, policy: AcceptancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The acceptance policy.
    pub fn policy(&self) -> AcceptancePolicy {
        self.policy
    }

    /// Sets a heterogeneous per-bin capacity profile (the non-uniform-bins
    /// extension): `profile[i]` is bin `i`'s buffer capacity. Overrides
    /// the uniform capacity; [`capacity`](Self::capacity) then reports the
    /// profile's maximum.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfDomain`] if the profile length differs
    /// from the number of bins, or [`ConfigError::ZeroCapacity`] if any
    /// entry is zero.
    pub fn with_capacity_profile(mut self, profile: Vec<u32>) -> Result<Self, ConfigError> {
        if profile.len() != self.bins {
            return Err(ConfigError::OutOfDomain {
                name: "capacity_profile",
                domain: "one entry per bin",
            });
        }
        let max = profile.iter().copied().max().ok_or(ConfigError::ZeroBins)?;
        if profile.contains(&0) {
            return Err(ConfigError::ZeroCapacity);
        }
        self.capacity = Capacity::finite(max)?;
        self.capacity_profile = Some(profile);
        Ok(self)
    }

    /// The per-bin capacity profile, if heterogeneous capacities are
    /// configured.
    pub fn capacity_profile(&self) -> Option<&[u32]> {
        self.capacity_profile.as_deref()
    }

    /// Capacity of bin `i` (the profile entry, or the uniform capacity).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn capacity_of(&self, i: usize) -> Capacity {
        assert!(i < self.bins, "bin index out of range");
        match &self.capacity_profile {
            Some(profile) => {
                Capacity::finite(profile[i]).expect("profile validated at construction")
            }
            None => self.capacity,
        }
    }

    /// Mean capacity across bins (used by the warm-start predictor).
    pub fn mean_capacity(&self) -> f64 {
        match &self.capacity_profile {
            Some(profile) => {
                profile.iter().map(|&c| f64::from(c)).sum::<f64>() / profile.len() as f64
            }
            None => self
                .capacity
                .as_finite()
                .map(f64::from)
                .unwrap_or(f64::INFINITY),
        }
    }

    /// Number of bins `n`.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Buffer capacity `c`.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Injection rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Arrival model.
    pub fn arrivals(&self) -> &ArrivalModel {
        &self.arrivals
    }

    /// Random choices per ball (1 for the paper's process).
    pub fn choices(&self) -> u32 {
        self.choices
    }

    /// Serializes the configuration into a checkpoint encoder.
    pub fn encode_into(&self, enc: &mut iba_sim::codec::Encoder) {
        enc.usize(self.bins);
        match self.capacity {
            Capacity::Finite(c) => enc.u32(c.get()),
            Capacity::Infinite => enc.u32(0),
        }
        enc.f64(self.lambda);
        self.arrivals.encode_into(enc);
        enc.u32(self.choices);
        match &self.capacity_profile {
            Some(profile) => {
                enc.bool(true);
                enc.u64_seq(profile.iter().map(|&c| u64::from(c)));
            }
            None => enc.bool(false),
        }
        enc.u32(match self.policy {
            AcceptancePolicy::OldestFirst => 0,
            AcceptancePolicy::YoungestFirst => 1,
            AcceptancePolicy::Random => 2,
        });
    }

    /// Deserializes a configuration from a checkpoint decoder.
    ///
    /// # Errors
    ///
    /// Returns a [`iba_sim::codec::CodecError`] on truncated or malformed
    /// input (including profiles that fail validation).
    pub fn decode_from(
        dec: &mut iba_sim::codec::Decoder<'_>,
    ) -> Result<Self, iba_sim::codec::CodecError> {
        use iba_sim::codec::CodecError;
        let bins = dec.usize("config bins")?;
        let raw_capacity = dec.u32("config capacity")?;
        let capacity = if raw_capacity == 0 {
            Capacity::Infinite
        } else {
            Capacity::finite(raw_capacity).expect("non-zero checked")
        };
        let lambda = dec.f64("config lambda")?;
        let arrivals = ArrivalModel::decode_from(dec)?;
        let choices = dec.u32("config choices")?;
        let capacity_profile = if dec.bool("config profile flag")? {
            let raw = dec.u64_seq("config profile")?;
            let profile: Vec<u32> = raw.iter().map(|&c| c as u32).collect();
            if profile.len() != bins || profile.contains(&0) {
                return Err(CodecError::Invalid {
                    what: "capacity profile",
                });
            }
            Some(profile)
        } else {
            None
        };
        let policy = match dec.u32("config policy")? {
            0 => AcceptancePolicy::OldestFirst,
            1 => AcceptancePolicy::YoungestFirst,
            2 => AcceptancePolicy::Random,
            _ => {
                return Err(CodecError::Invalid {
                    what: "acceptance policy",
                })
            }
        };
        if bins == 0 || choices == 0 || !(0.0..=1.0).contains(&lambda) {
            return Err(CodecError::Invalid {
                what: "configuration fields",
            });
        }
        Ok(CappedConfig {
            bins,
            capacity,
            lambda,
            arrivals,
            choices,
            capacity_profile,
            policy,
        })
    }

    /// The pool size the theory predicts for the stationary regime,
    /// `n·ln(1/(1−λ))/c + n` for finite `c` (the Section-V empirical fit).
    /// Used by [`CappedProcess::warm_start`](crate::process::CappedProcess::warm_start)
    /// to skip most of the transient.
    pub fn predicted_stationary_pool(&self) -> usize {
        let n = self.bins as f64;
        let c = self.mean_capacity().min(u32::MAX as f64);
        let log_term = if self.lambda < 1.0 {
            (1.0 / (1.0 - self.lambda)).ln()
        } else {
            0.0
        };
        ((n * log_term) / c + n).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_everything() {
        assert!(CappedConfig::new(0, 1, 0.5).is_err());
        assert!(CappedConfig::new(10, 0, 0.5).is_err());
        assert!(CappedConfig::new(10, 1, 0.33).is_err()); // 3.3 balls per round
        assert!(CappedConfig::new(10, 1, 0.95).is_err()); // > 1 - 1/n
        assert!(CappedConfig::new(10, 1, 0.5).is_ok());
    }

    #[test]
    fn capacity_room_checks() {
        let c2 = Capacity::finite(2).unwrap();
        assert!(c2.has_room(0));
        assert!(c2.has_room(1));
        assert!(!c2.has_room(2));
        assert!(Capacity::Infinite.has_room(usize::MAX - 1));
        assert_eq!(c2.as_finite(), Some(2));
        assert_eq!(Capacity::Infinite.as_finite(), None);
    }

    #[test]
    fn capacity_conversions_and_display() {
        assert!(Capacity::try_from(0u32).is_err());
        let c = Capacity::try_from(5u32).unwrap();
        assert_eq!(c.to_string(), "5");
        assert_eq!(Capacity::Infinite.to_string(), "∞");
    }

    #[test]
    fn unbounded_is_infinite() {
        let cfg = CappedConfig::unbounded(8, 0.5).unwrap();
        assert_eq!(cfg.capacity(), Capacity::Infinite);
    }

    #[test]
    fn choices_validation() {
        let cfg = CappedConfig::new(8, 1, 0.5).unwrap();
        assert!(cfg.clone().with_choices(0).is_err());
        assert_eq!(cfg.with_choices(2).unwrap().choices(), 2);
    }

    #[test]
    fn predicted_pool_matches_fit() {
        // n = 1024, c = 1, λ = 0.75: n·ln(4) + n ≈ 1024·1.386 + 1024 ≈ 2444.
        let cfg = CappedConfig::new(1024, 1, 0.75).unwrap();
        let p = cfg.predicted_stationary_pool();
        assert!((2400..2500).contains(&p), "{p}");
        // Larger capacity predicts a smaller pool.
        let cfg3 = CappedConfig::new(1024, 3, 0.75).unwrap();
        assert!(cfg3.predicted_stationary_pool() < p);
    }

    #[test]
    fn capacity_profile_validation_and_accessors() {
        let base = CappedConfig::new(4, 2, 0.5).unwrap();
        // Wrong length rejected.
        assert!(base.clone().with_capacity_profile(vec![1, 2]).is_err());
        // Zero entry rejected.
        assert!(base
            .clone()
            .with_capacity_profile(vec![1, 0, 2, 3])
            .is_err());
        // Valid profile: capacity() is the max, per-bin values preserved.
        let cfg = base.with_capacity_profile(vec![1, 3, 1, 3]).unwrap();
        assert_eq!(cfg.capacity().as_finite(), Some(3));
        assert_eq!(cfg.capacity_of(0).as_finite(), Some(1));
        assert_eq!(cfg.capacity_of(1).as_finite(), Some(3));
        assert_eq!(cfg.mean_capacity(), 2.0);
        assert_eq!(cfg.capacity_profile(), Some(&[1u32, 3, 1, 3][..]));
    }

    #[test]
    fn uniform_config_has_no_profile() {
        let cfg = CappedConfig::new(4, 2, 0.5).unwrap();
        assert_eq!(cfg.capacity_profile(), None);
        assert_eq!(cfg.capacity_of(3).as_finite(), Some(2));
        assert_eq!(cfg.mean_capacity(), 2.0);
        assert_eq!(
            CappedConfig::unbounded(4, 0.5).unwrap().mean_capacity(),
            f64::INFINITY
        );
    }

    #[test]
    fn with_arrivals_overrides_model() {
        use iba_sim::arrivals::ArrivalModel;
        let cfg = CappedConfig::new(100, 1, 0.5)
            .unwrap()
            .with_arrivals(ArrivalModel::poisson_rate(100, 0.5).unwrap());
        assert!(matches!(cfg.arrivals(), ArrivalModel::Poisson { .. }));
        assert_eq!(cfg.lambda(), 0.5);
    }
}
